#!/usr/bin/env python
"""Building and elastically scheduling a custom application topology.

The downstream-user tour: construct your own dataflow graph with the
GraphBuilder DSL (broadcast vs data-parallel fan-out, selectivities,
locking operators, a rate-capped source), inspect it, run the
multi-level elasticity and compare what the controllers chose against a
few hand-picked configurations.

The example app is a fraud-detection pipeline:

    transactions (rate-capped source)
      -> parse -> enrich
      -> [broadcast] rules engine | ML scorer (data-parallel x6)
      -> combine -> alert sink

Run:  python examples/custom_topology.py
"""

from repro.graph import FanoutPolicy, GraphBuilder, ascii_summary
from repro.perfmodel import xeon_176
from repro.runtime import (
    ProcessingElement,
    QueuePlacement,
    RuntimeConfig,
    inspect_pe,
    run_elastic,
)

def build_fraud_detection():
    b = GraphBuilder("fraud-detection", payload_bytes=512)
    src = b.add_source(
        "Transactions", cost_flops=50.0, max_rate=500_000.0
    )
    parse = b.add_operator("Parse", cost_flops=800.0)
    enrich = b.add_operator("Enrich", cost_flops=1_500.0)
    b.chain(src, parse, enrich)

    # Every transaction goes to BOTH analysis paths (broadcast).
    rules = b.add_operator("RulesEngine", cost_flops=4_000.0)
    ml_head = b.add_operator(
        "MlDispatch", cost_flops=100.0, fanout=FanoutPolicy.SPLIT
    )
    b.fan_out(enrich, [rules, ml_head])

    scorers = []
    for i in range(6):
        s = b.add_operator(f"MlScorer{i}", cost_flops=12_000.0)
        b.connect(ml_head, s)
        scorers.append(s)

    combine = b.add_operator("Combine", cost_flops=600.0)
    b.connect(rules, combine)
    b.fan_in(scorers, combine)

    alert = b.add_sink("AlertSink", cost_flops=100.0)
    b.connect(combine, alert)
    return b.build()

def main() -> None:
    graph = build_fraud_detection()
    print(ascii_summary(graph))
    print()

    machine = xeon_176().with_cores(16)
    pe = ProcessingElement(graph, machine, RuntimeConfig(cores=16, seed=1))

    # A few configurations a human might try.
    manual = pe.model.sink_throughput(QueuePlacement.empty(), 0)
    scorer_queues = QueuePlacement.of(
        op.index for op in graph if op.name.startswith("MlScorer")
    )
    hand = pe.model.sink_throughput(scorer_queues, 6)
    full = pe.model.sink_throughput(QueuePlacement.full(graph), 15)

    print(f"manual (no queues)        : {manual:12,.0f} tuples/s")
    print(f"hand: queue the 6 scorers : {hand:12,.0f} tuples/s")
    print(f"fully dynamic, 15 threads : {full:12,.0f} tuples/s")

    result = run_elastic(pe, duration_s=6000)
    print(f"multi-level elasticity    : "
          f"{result.converged_throughput:12,.0f} tuples/s "
          f"({result.final_threads} threads, "
          f"{result.final_n_queues} queues)")
    print()
    print(inspect_pe(pe).render())

if __name__ == "__main__":
    main()
