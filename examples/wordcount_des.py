#!/usr/bin/env python
"""WikiWordCount (Fig. 2) on both substrates: DES vs analytical model.

Builds the paper's introductory SPL example — HTTPGetStream feeding
5-way data-parallel tokenizers into a 10-way partitioned aggregation —
and executes the same configurations on:

1. the tuple-level discrete-event simulator (repro.des), and
2. the analytical steady-state model (repro.perfmodel),

showing that the two substrates agree on which configurations win.

Run:  python examples/wordcount_des.py
"""

from repro.apps.wordcount import build_wordcount
from repro.bench.reporting import format_table
from repro.des import measure_throughput
from repro.perfmodel import PerformanceModel, laptop
from repro.runtime import QueuePlacement

def main() -> None:
    graph = build_wordcount()
    machine = laptop(8)
    model = PerformanceModel(graph, machine)

    tokenizers = [
        op.index for op in graph if op.name.startswith("Tokenize")
    ]
    aggregates = [
        op.index for op in graph if op.name.startswith("Aggregate")
    ]
    configs = [
        ("manual", QueuePlacement.empty(), 0),
        ("tokenizers queued", QueuePlacement.of(tokenizers), 5),
        (
            "tokenizers+aggregates",
            QueuePlacement.of(tokenizers + aggregates),
            7,
        ),
        ("fully dynamic", QueuePlacement.full(graph), 7),
    ]

    rows = []
    for name, placement, threads in configs:
        des = measure_throughput(
            graph, machine, placement, threads,
            warmup_s=0.002, measure_s=0.008,
        )
        analytical = model.sink_throughput(placement, threads)
        rows.append(
            [
                name,
                des.sink_tuples_per_s,
                analytical,
                des.sink_tuples_per_s / analytical,
            ]
        )

    print(
        format_table(
            ["configuration", "DES words/s", "model words/s", "ratio"],
            rows,
            title="WikiWordCount: discrete-event simulation vs model",
        )
    )
    best = max(rows, key=lambda r: r[1])
    print(f"\nbest configuration under the DES: {best[0]}")

if __name__ == "__main__":
    main()
