#!/usr/bin/env python
"""VWAP trading application under four execution strategies (§4.2).

Reproduces the paper's Fig. 15(a) comparison on the 52-operator VWAP
graph: manual threading, the developers' hand-optimized threaded ports,
pure thread count elasticity (Streams 4.2) and the multi-level
elasticity of the paper — across 4, 16 and 88 cores.

The headline result to look for: the elastic schemes beat both manual
and hand-optimized threading while using far fewer threads than the 9
hand-inserted ones, and the threading-model dimension matters most when
cores are scarce.

Run:  python examples/vwap_trading.py
"""

from repro.apps.vwap import build_vwap, hand_optimized
from repro.bench.harness import compare
from repro.bench.reporting import app_table
from repro.perfmodel import xeon_176
from repro.runtime import RuntimeConfig

def main() -> None:
    comparisons = []
    for cores in (4, 16, 88):
        machine = xeon_176().with_cores(cores)
        graph = build_vwap()
        comparisons.append(
            compare(
                graph,
                machine,
                RuntimeConfig(cores=cores, seed=0),
                hand=hand_optimized(graph),
                workload=f"VWAP {cores}c",
            )
        )

    print(app_table(comparisons, title="VWAP (Fig. 15a)"))
    print()
    for c in comparisons:
        print(
            f"{c.workload}: multi-level used "
            f"{c.multi_level.threads} threads / "
            f"{c.multi_level.n_queues} queues "
            f"(hand-optimized: {c.hand_optimized.threads} threads); "
            f"multi-level vs dynamic-only: {c.multi_over_dynamic:.2f}x"
        )

if __name__ == "__main__":
    main()
