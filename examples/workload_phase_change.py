#!/usr/bin/env python
"""Adaptation to a workload phase change (Fig. 13), with ASCII timeline.

A 100-operator pipeline starts with 10 % heavy-weight operators; twenty
minutes into the run the heavy ratio jumps to 90 %.  The multi-level
elasticity detects the throughput shift, re-profiles, and re-adapts
both the thread count and the queue placement.

Run:  python examples/workload_phase_change.py
"""

from repro.apps.workloads import phase_change
from repro.perfmodel import xeon_176
from repro.runtime import ProcessingElement, RuntimeConfig
from repro.runtime.executor import AdaptationExecutor

CHANGE_TIME_S = 1200.0

def sparkline(values, width=72):
    """Downsample values into a unicode sparkline."""
    blocks = " .:-=+*#%@"
    if not values:
        return ""
    bucket = max(1, len(values) // width)
    sampled = [
        max(values[i : i + bucket])
        for i in range(0, len(values), bucket)
    ]
    top = max(sampled) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))]
        for v in sampled
    )

def main() -> None:
    workload = phase_change(
        n_operators=100, change_time_s=CHANGE_TIME_S, seed=0
    )
    machine = xeon_176().with_cores(88)
    pe = ProcessingElement(
        workload.initial, machine, RuntimeConfig(cores=88, seed=0)
    )
    executor = AdaptationExecutor(pe, workload_events=workload.events())
    result = executor.run(3600)
    trace = result.trace

    throughputs = [o.true_throughput for o in trace.observations]
    threads = [float(o.threads) for o in trace.observations]
    queues = [float(o.n_queues) for o in trace.observations]
    print("throughput:", sparkline(throughputs))
    print("threads   :", sparkline(threads))
    print("queues    :", sparkline(queues))
    marker_pos = int(
        CHANGE_TIME_S / trace.duration_s * 72
    )
    print(" " * (12 + marker_pos) + "^ workload change (heavy 10% -> 90%)")

    before = [o for o in trace.observations if o.time_s < CHANGE_TIME_S]
    after = [o for o in trace.observations if o.time_s >= CHANGE_TIME_S]
    changes_after = [
        c.time_s
        for c in trace.thread_changes + trace.placement_changes
        if c.time_s >= CHANGE_TIME_S
    ]
    print()
    print(f"before change: {before[-1].threads} threads, "
          f"{before[-1].n_queues} queues")
    print(f"after change : {after[-1].threads} threads, "
          f"{after[-1].n_queues} queues")
    if changes_after:
        print(f"re-adaptation finished {max(changes_after) - CHANGE_TIME_S:.0f} s "
              "after the workload shift")

if __name__ == "__main__":
    main()
