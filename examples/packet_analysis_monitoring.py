#!/usr/bin/env python
"""PacketAnalysis: elastic scheduling of a 387/2305-operator graph (§4.3).

The paper's stress test: a hand-optimized telecom network-monitoring
application (DGA detection, tunneling detection, volumetric analysis
over DPDK packet sources).  The findings to reproduce:

- the elastic schemes approach the hand-optimized throughput while
  using a fraction of its 17/129 hand-placed threads, and
- multi-level elasticity adds only *marginal* gains over thread count
  elasticity here, because tuples are small (~256 B) relative to the
  expensive analytics.

Run:  python examples/packet_analysis_monitoring.py          (1 source)
      python examples/packet_analysis_monitoring.py --full   (1 + 8 sources)
"""

import sys

from repro.apps.packet_analysis import build_packet_analysis, hand_optimized
from repro.bench.harness import compare
from repro.bench.reporting import app_table
from repro.perfmodel import xeon_176
from repro.runtime import RuntimeConfig

def main() -> None:
    source_counts = [1, 8] if "--full" in sys.argv else [1]
    machine = xeon_176()
    comparisons = []
    for n_sources in source_counts:
        graph = build_packet_analysis(n_sources)
        print(
            f"building PacketAnalysis with {n_sources} source(s): "
            f"{len(graph)} operators"
        )
        comparisons.append(
            compare(
                graph,
                machine,
                RuntimeConfig(cores=176, seed=0),
                hand=hand_optimized(graph),
                workload=f"PacketAnalysis {n_sources}src",
            )
        )

    print()
    print(app_table(comparisons, title="PacketAnalysis (Fig. 15b)"))
    print()
    for c in comparisons:
        marginal = c.multi_over_dynamic
        print(
            f"{c.workload}: multi-level vs dynamic-only = "
            f"{marginal:.2f}x (the paper found this marginal: small "
            f"tuples, heavy analytics); elastic threads = "
            f"{c.multi_level.threads} vs {c.hand_optimized.threads} "
            "hand-inserted"
        )

if __name__ == "__main__":
    main()
