#!/usr/bin/env python
"""The complete elastic loop on the tuple-level discrete-event simulator.

Most experiments use the fast analytical substrate; this example runs
the *same controllers* against the DES engine, where tuples really move
through bounded queues, threads contend for core tokens and
backpressure propagates — demonstrating that the elasticity stack is
substrate-agnostic end to end.

Expect ~30-60 s of wall time (tuple-level simulation is expensive).

Run:  python examples/elasticity_on_des.py
"""

import time

from repro.des import DesAdaptationRunner
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import ElasticityConfig, RuntimeConfig

def main() -> None:
    graph = pipeline(12, cost_flops=3000.0, payload_bytes=128)
    machine = laptop(8)
    config = RuntimeConfig(
        cores=8,
        seed=3,
        elasticity=ElasticityConfig(profiling_samples=400),
    )
    runner = DesAdaptationRunner(graph, machine, config)
    manual = runner.measure()
    print(f"manual execution (DES): {manual:12,.0f} tuples/s")
    print("running the elastic adaptation loop on the DES engine ...")
    start = time.time()
    result = runner.run(max_periods=80)
    elapsed = time.time() - start

    print(f"converged (DES)       : {result.converged_throughput:12,.0f} "
          f"tuples/s ({result.converged_throughput / manual:.2f}x manual)")
    print(f"final configuration   : {result.final_threads} scheduler "
          f"threads, {result.final_placement.n_queues} queues")
    print(f"adaptation periods    : {len(result.trace.observations)} "
          f"({elapsed:.0f}s wall time)")

    print("\nthroughput trajectory (every 4th period):")
    for obs in result.trace.observations[::4]:
        bar = "#" * int(40 * obs.true_throughput
                        / max(o.true_throughput
                              for o in result.trace.observations))
        print(f"  t={obs.time_s:5.0f}s thr={obs.threads} "
              f"q={obs.n_queues:2d} {bar}")

if __name__ == "__main__":
    main()
