#!/usr/bin/env python
"""Quickstart: multi-level elasticity on a pipeline, in ~30 lines.

Builds a 100-operator pipeline, runs the coordinated elasticity against
the simulated Xeon substrate, and prints what the controllers decided —
the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro.graph import pipeline
from repro.perfmodel import xeon_176
from repro.runtime import ProcessingElement, RuntimeConfig, run_elastic

def main() -> None:
    # A 100-operator chain, 100 FLOPs per tuple, 1 KiB payloads -- the
    # paper's motivating workload (Fig. 1).
    graph = pipeline(100, cost_flops=100.0, payload_bytes=1024)

    # The paper's Xeon host, restricted to 16 cores.
    machine = xeon_176().with_cores(16)

    pe = ProcessingElement(graph, machine, RuntimeConfig(cores=16, seed=42))
    manual_throughput = pe.true_throughput()
    print(f"manual threading (no queues, 1 thread): "
          f"{manual_throughput:12,.0f} tuples/s")

    # Run the adaptation loop for an hour of virtual time (finishes in
    # well under a second of real time).
    result = run_elastic(pe, duration_s=3600)

    print(f"multi-level elasticity converged:       "
          f"{result.converged_throughput:12,.0f} tuples/s "
          f"({result.converged_throughput / manual_throughput:.1f}x)")
    print(f"  scheduler threads : {result.final_threads}")
    print(f"  scheduler queues  : {result.final_n_queues} "
          f"({result.final_dynamic_ratio:.0%} of operators dynamic)")
    print(f"  settling time     : {result.trace.last_change_time():.0f} s "
          f"({len(result.trace.thread_changes)} thread changes, "
          f"{len(result.trace.placement_changes)} placement changes)")

if __name__ == "__main__":
    main()
