#!/usr/bin/env python
"""A multi-PE job: independent elasticity per host, coupled by dataflow.

The paper scopes its mechanism to one PE and notes that "all PEs in a
job independently use the proposed work to maximize their performance".
This example builds a three-stage job — ingest on a small edge box,
analytics on a big server, reporting on a medium one — and lets each
PE's own multi-level coordinator adapt, with network backpressure
coupling the stages.

Run:  python examples/multi_pe_job.py
"""

from repro.graph import assign_costs, pipeline, skewed
from repro.perfmodel import laptop, xeon_176
from repro.runtime import RuntimeConfig
from repro.runtime.job import Job

import numpy as np

def main() -> None:
    ingest = pipeline(
        20, cost_flops=500.0, payload_bytes=512, name="pe-ingest"
    )
    analytics = assign_costs(
        pipeline(200, payload_bytes=512, name="pe-analytics"),
        skewed(),
        rng=np.random.default_rng(0),
    )
    reporting = pipeline(
        30, cost_flops=1000.0, payload_bytes=256, name="pe-reporting"
    )

    job = Job(
        [
            (ingest, laptop(4)),          # small edge host
            (analytics, xeon_176().with_cores(64)),  # big server
            (reporting, laptop(8)),       # medium host
        ],
        config=RuntimeConfig(seed=7),
    )
    result = job.run(duration_s_per_stage=10_000.0)

    print(f"job converged in {result.rounds} adaptation round(s)")
    print(f"job throughput: {result.job_throughput:,.0f} tuples/s "
          f"(bottleneck: {result.bottleneck_stage})\n")
    header = f"{'stage':<14s} {'throughput':>14s} {'input cap':>14s} " \
             f"{'threads':>8s} {'queues':>7s}"
    print(header)
    print("-" * len(header))
    for s in result.stages:
        cap = f"{s.input_cap:,.0f}" if s.input_cap else "-"
        print(f"{s.name:<14s} {s.throughput:>14,.0f} {cap:>14s} "
              f"{s.threads:>8d} {s.n_queues:>7d}")

if __name__ == "__main__":
    main()
