"""Tests for graph structural analysis helpers."""

from __future__ import annotations

import pytest

from repro.graph import data_parallel, pipeline
from repro.graph.analysis import (
    critical_path_cost,
    functional_indices,
    levelize,
    queueable_indices,
    stats,
    width_profile,
)


class TestLevelize:
    def test_chain_levels_increase(self, chain10):
        levels = levelize(chain10)
        order = chain10.topological_order()
        for idx in order:
            for succ in chain10.successors(idx):
                assert levels[succ] == levels[idx] + 1

    def test_diamond_longest_path(self, diamond):
        levels = levelize(diamond)
        assert levels[diamond.by_name("d").index] == 3
        assert levels[diamond.by_name("snk").index] == 4


class TestWidthProfile:
    def test_chain_width_is_one(self, chain10):
        assert max(width_profile(chain10)) == 1

    def test_dp_width(self):
        assert max(width_profile(data_parallel(16))) == 16

    def test_profile_sums_to_operator_count(self, diamond):
        assert sum(width_profile(diamond)) == len(diamond)


class TestCriticalPath:
    def test_chain_critical_path_is_total(self, chain10):
        assert critical_path_cost(chain10) == pytest.approx(
            chain10.total_cost_flops()
        )

    def test_diamond_takes_heavier_branch(self, diamond):
        # src(10) + a(100) + c(300) + d(100) + snk(10)
        assert critical_path_cost(diamond) == pytest.approx(520.0)


class TestIndexHelpers:
    def test_queueable_excludes_sources(self, diamond):
        q = queueable_indices(diamond)
        assert diamond.by_name("src").index not in q
        assert diamond.by_name("snk").index in q

    def test_functional_matches_queueable(self, diamond):
        assert functional_indices(diamond) == queueable_indices(diamond)


class TestStats:
    def test_pipeline_stats(self):
        s = stats(pipeline(10, cost_flops=100.0))
        assert s.n_operators == 12
        assert s.n_edges == 11
        assert s.depth == 11
        assert s.max_width == 1
        assert s.total_cost_flops == pytest.approx(1020.0)

    def test_dp_stats(self):
        s = stats(data_parallel(5))
        assert s.max_fan_out == 5
        assert s.max_fan_in == 5
        assert s.depth == 2
