"""Tests for DOT export and ASCII rendering."""

from __future__ import annotations

from repro.graph import data_parallel, pipeline
from repro.graph.dot import ascii_summary, to_dot
from repro.runtime import QueuePlacement


class TestToDot:
    def test_valid_digraph_structure(self, chain10):
        dot = to_dot(chain10)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # One node line per operator, one edge line per stream.
        assert dot.count(" -> ") == len(chain10.edges)
        for op in chain10:
            assert f"n{op.index} [" in dot

    def test_queued_operators_highlighted(self, chain10):
        mid = chain10.by_name("op5").index
        dot = to_dot(chain10, QueuePlacement.of([mid]))
        assert "peripheries=2" in dot
        assert dot.count("peripheries=2") == 1

    def test_queue_edges_bold(self, chain10):
        mid = chain10.by_name("op5").index
        dot = to_dot(chain10, QueuePlacement.of([mid]))
        assert "style=bold" in dot

    def test_shapes_by_kind(self, chain10):
        dot = to_dot(chain10)
        assert "shape=invhouse" in dot  # source
        assert "shape=house" in dot  # sink
        assert "shape=box" in dot  # functional

    def test_lock_operators_filled(self, dp8):
        dot = to_dot(dp8)
        assert "fillcolor" in dot  # the locking sink

    def test_costs_optional(self, chain10):
        with_costs = to_dot(chain10, include_costs=True)
        without = to_dot(chain10, include_costs=False)
        assert "1000F" in with_costs
        assert "1000F" not in without

    def test_label_escaping(self):
        from repro.graph import GraphBuilder

        b = GraphBuilder("g")
        src = b.add_source('weird"name')
        snk = b.add_sink("snk")
        b.connect(src, snk)
        dot = to_dot(b.build())
        assert '\\"' in dot


class TestAsciiSummary:
    def test_levels_rendered(self, chain10):
        text = ascii_summary(chain10)
        assert "L0" in text
        assert "src" in text
        assert "snk" in text

    def test_queue_markers(self, chain10):
        mid = chain10.by_name("op5").index
        text = ascii_summary(chain10, QueuePlacement.of([mid]))
        assert "op5[Q]" in text

    def test_wide_levels_truncated(self):
        g = data_parallel(50)
        text = ascii_summary(g, max_names_per_level=3)
        assert "+47 more" in text

    def test_header_has_stats(self, chain10):
        text = ascii_summary(chain10)
        assert "12 operators" in text
        assert "256B" in text
