"""Tests for the benchmark topology generators (Fig. 8)."""

from __future__ import annotations

import pytest

from repro.graph import (
    FanoutPolicy,
    bushy,
    bushy_82,
    data_parallel,
    mixed,
    pipeline,
)
from repro.graph.analysis import stats, width_profile


class TestPipeline:
    def test_counts(self):
        g = pipeline(100)
        s = stats(g)
        assert s.n_functional == 100
        assert s.n_operators == 102
        assert s.n_sources == 1
        assert s.n_sinks == 1

    def test_is_a_chain(self):
        g = pipeline(10)
        assert all(g.fan_out(op.index) <= 1 for op in g)
        assert all(g.fan_in(op.index) <= 1 for op in g)

    def test_cost_applied(self):
        g = pipeline(5, cost_flops=777.0)
        assert g.by_name("op2").cost_flops == 777.0

    def test_rejects_zero_operators(self):
        with pytest.raises(ValueError):
            pipeline(0)

    def test_payload(self):
        assert pipeline(3, payload_bytes=9).tuple_spec.payload_bytes == 9


class TestDataParallel:
    def test_counts(self):
        g = data_parallel(50)
        s = stats(g)
        assert s.n_functional == 50
        assert s.max_fan_out == 50
        assert s.max_fan_in == 50

    def test_source_splits(self):
        g = data_parallel(10)
        assert g.by_name("src").fanout is FanoutPolicy.SPLIT

    def test_sink_locks(self):
        g = data_parallel(10)
        assert g.by_name("snk").uses_lock

    def test_each_worker_rate_is_fraction(self):
        g = data_parallel(4)
        rates = g.arrival_rates()
        w = g.by_name("worker0").index
        assert rates[w] == pytest.approx(0.25)

    def test_sink_rate_conserved(self):
        g = data_parallel(7)
        rates = g.arrival_rates()
        assert rates[g.by_name("snk").index] == pytest.approx(1.0)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            data_parallel(0)


class TestMixed:
    def test_counts(self):
        g = mixed(10, 50)
        assert stats(g).n_functional == 500

    def test_paths_are_parallel(self):
        g = mixed(4, 3)
        profile = width_profile(g)
        assert max(profile) == 4

    def test_split_distribution(self):
        g = mixed(4, 3)
        rates = g.arrival_rates()
        assert rates[g.by_name("p0_op0").index] == pytest.approx(0.25)
        assert rates[g.by_name("snk").index] == pytest.approx(1.0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            mixed(0, 5)
        with pytest.raises(ValueError):
            mixed(5, 0)


class TestBushy:
    def test_split_merge_symmetry(self):
        g = bushy(levels=3)
        # split rows: 1+2+4 = 7; merge rows: 2+1 = 3
        assert stats(g).n_functional == 10

    def test_rate_conservation_through_tree(self):
        g = bushy(levels=4)
        rates = g.arrival_rates()
        assert rates[g.by_name("snk").index] == pytest.approx(1.0)

    def test_bushy82_operator_count(self):
        g = bushy_82()
        n_functional = sum(
            1 for op in g if not op.is_source and not op.is_sink
        )
        assert n_functional == 82

    def test_bushy82_cost_applied(self):
        g = bushy_82(cost_flops=10_000.0)
        assert g.by_name("split_l2_1").cost_flops == 10_000.0
        assert g.by_name("tail5").cost_flops == 10_000.0

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            bushy(levels=0)
