"""Tests for graph JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.apps import build_packet_analysis, build_vwap
from repro.graph import data_parallel, pipeline
from repro.graph.serialize import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def _assert_equal_graphs(a, b):
    assert a.name == b.name
    assert a.tuple_spec == b.tuple_spec
    assert a.operators == b.operators
    assert a.edges == b.edges


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: pipeline(10, payload_bytes=777),
            lambda: data_parallel(6, cost_flops=123.0),
            build_vwap,
            lambda: build_packet_analysis(1),
        ],
        ids=["pipeline", "data_parallel", "vwap", "packet_analysis"],
    )
    def test_dict_round_trip(self, factory):
        g = factory()
        _assert_equal_graphs(g, graph_from_dict(graph_to_dict(g)))

    def test_file_round_trip(self, tmp_path, chain10):
        path = tmp_path / "graph.json"
        save_graph(chain10, path)
        _assert_equal_graphs(chain10, load_graph(path))

    def test_json_is_plain(self, tmp_path, chain10):
        path = tmp_path / "graph.json"
        save_graph(chain10, path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert len(data["operators"]) == len(chain10)

    def test_rate_caps_preserved(self):
        g = build_packet_analysis(1)
        rebuilt = graph_from_dict(graph_to_dict(g))
        assert rebuilt.sources[0].max_rate == g.sources[0].max_rate

    def test_rates_preserved(self, diamond):
        rebuilt = graph_from_dict(graph_to_dict(diamond))
        assert rebuilt.arrival_rates() == diamond.arrival_rates()


class TestValidation:
    def test_unknown_version_rejected(self, chain10):
        data = graph_to_dict(chain10)
        data["version"] = 7
        with pytest.raises(ValueError, match="version"):
            graph_from_dict(data)

    def test_tampered_structure_rejected(self, chain10):
        from repro.graph import GraphValidationError

        data = graph_to_dict(chain10)
        data["edges"].append([5, 2])  # creates a cycle
        with pytest.raises(GraphValidationError):
            graph_from_dict(data)
