"""Tests for cost distributions (§4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    assign_costs,
    balanced,
    cost_classes,
    pipeline,
    skewed,
)
from repro.graph.cost import (
    HEAVY_FLOPS,
    LIGHT_FLOPS,
    MEDIUM_FLOPS,
    CostDistribution,
)


class TestDistributionSpecs:
    def test_balanced_is_balanced(self):
        d = balanced(250.0)
        assert d.is_balanced
        assert d.uniform_flops == 250.0

    def test_skewed_defaults_match_paper(self):
        d = skewed()
        assert d.heavy_fraction == pytest.approx(0.10)
        assert d.medium_fraction == pytest.approx(0.30)
        assert d.heavy_flops == 10_000.0
        assert d.medium_flops == 100.0
        assert d.light_flops == 1.0

    def test_fractions_must_sum_within_one(self):
        with pytest.raises(ValueError):
            CostDistribution(
                name="bad", heavy_fraction=0.7, medium_fraction=0.5
            )


class TestAssignCosts:
    def test_balanced_assigns_uniform(self):
        g = assign_costs(pipeline(20), balanced(555.0))
        for op in g:
            if not op.is_source and not op.is_sink:
                assert op.cost_flops == 555.0

    def test_balanced_spares_source_and_sink(self):
        base = pipeline(20)
        g = assign_costs(base, balanced(555.0))
        assert g.by_name("src").cost_flops == base.by_name("src").cost_flops
        assert g.by_name("snk").cost_flops == base.by_name("snk").cost_flops

    def test_skewed_class_sizes(self, rng):
        g = assign_costs(pipeline(100), skewed(), rng=rng)
        heavy, medium, light = cost_classes(g)
        assert len(heavy) == 10
        assert len(medium) == 30
        assert len(light) == 60

    def test_skewed_is_seeded(self):
        a = assign_costs(
            pipeline(50), skewed(), rng=np.random.default_rng(3)
        )
        b = assign_costs(
            pipeline(50), skewed(), rng=np.random.default_rng(3)
        )
        assert [op.cost_flops for op in a] == [op.cost_flops for op in b]

    def test_different_seeds_differ(self):
        a = assign_costs(
            pipeline(50), skewed(), rng=np.random.default_rng(1)
        )
        b = assign_costs(
            pipeline(50), skewed(), rng=np.random.default_rng(2)
        )
        assert [op.cost_flops for op in a] != [op.cost_flops for op in b]

    def test_skewed_values_are_class_costs(self, rng):
        g = assign_costs(pipeline(40), skewed(), rng=rng)
        allowed = {HEAVY_FLOPS, MEDIUM_FLOPS, LIGHT_FLOPS}
        for op in g:
            if not op.is_source and not op.is_sink:
                assert op.cost_flops in allowed

    def test_extreme_heavy_fraction(self, rng):
        g = assign_costs(
            pipeline(10),
            skewed(heavy_fraction=1.0, medium_fraction=0.0),
            rng=rng,
        )
        heavy, medium, light = cost_classes(g)
        assert len(heavy) == 10 and not medium and not light

    def test_default_rng_when_none(self):
        g = assign_costs(pipeline(30), skewed())
        heavy, _m, _l = cost_classes(g)
        assert len(heavy) == 3


class TestCostClasses:
    def test_classification_thresholds(self, rng):
        g = assign_costs(pipeline(10), balanced(MEDIUM_FLOPS), rng=rng)
        heavy, medium, light = cost_classes(g)
        assert not heavy
        assert len(medium) == 10
        assert not light
