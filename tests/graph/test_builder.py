"""Tests for the GraphBuilder DSL."""

from __future__ import annotations

import pytest

from repro.graph import (
    FanoutPolicy,
    GraphBuilder,
    GraphValidationError,
    TupleSpec,
)


class TestNodeConstruction:
    def test_indices_assigned_in_order(self):
        b = GraphBuilder()
        s = b.add_source("s")
        o = b.add_operator("o")
        k = b.add_sink("k")
        assert (s.index, o.index, k.index) == (0, 1, 2)

    def test_duplicate_name_rejected_eagerly(self):
        b = GraphBuilder()
        b.add_source("x")
        with pytest.raises(GraphValidationError, match="duplicate"):
            b.add_operator("x")

    def test_sink_locks_by_default(self):
        b = GraphBuilder()
        assert b.add_sink("k").uses_lock is True

    def test_sink_lock_can_be_disabled(self):
        b = GraphBuilder()
        assert b.add_sink("k", uses_lock=False).uses_lock is False

    def test_fanout_policy_propagates(self):
        b = GraphBuilder()
        op = b.add_operator("o", fanout=FanoutPolicy.SPLIT)
        assert op.fanout is FanoutPolicy.SPLIT

    def test_operator_count(self):
        b = GraphBuilder()
        b.add_source("s")
        b.add_operator("o")
        assert b.operator_count == 2


class TestWiring:
    def _base(self):
        b = GraphBuilder()
        s = b.add_source("s")
        o = b.add_operator("o")
        k = b.add_sink("k")
        return b, s, o, k

    def test_connect_by_object_name_and_index(self):
        b, s, o, k = self._base()
        b.connect(s, "o")
        b.connect(1, k)
        g = b.build()
        assert g.successors(s.index) == (o.index,)
        assert g.successors(o.index) == (k.index,)

    def test_connect_unknown_name_rejected(self):
        b, s, o, k = self._base()
        with pytest.raises(GraphValidationError, match="unknown"):
            b.connect(s, "ghost")

    def test_connect_unknown_index_rejected(self):
        b, s, o, k = self._base()
        with pytest.raises(GraphValidationError, match="unknown"):
            b.connect(s, 17)

    def test_connect_bad_type_rejected(self):
        b, s, o, k = self._base()
        with pytest.raises(TypeError):
            b.connect(s, 3.14)  # type: ignore[arg-type]

    def test_chain_needs_two(self):
        b, s, o, k = self._base()
        with pytest.raises(GraphValidationError, match="two"):
            b.chain(s)

    def test_chain_wires_sequence(self):
        b, s, o, k = self._base()
        b.chain(s, o, k)
        g = b.build()
        assert g.fan_out(s.index) == 1
        assert g.fan_in(k.index) == 1

    def test_fan_out_and_fan_in(self):
        b = GraphBuilder()
        s = b.add_source("s")
        ops = [b.add_operator(f"o{i}") for i in range(3)]
        k = b.add_sink("k")
        b.fan_out(s, ops)
        b.fan_in(ops, k)
        g = b.build()
        assert g.fan_out(s.index) == 3
        assert g.fan_in(k.index) == 3


class TestBuild:
    def test_build_uses_payload_bytes(self):
        b = GraphBuilder(payload_bytes=4096)
        s = b.add_source("s")
        k = b.add_sink("k")
        b.connect(s, k)
        assert b.build().tuple_spec.payload_bytes == 4096

    def test_build_tuple_spec_override(self):
        b = GraphBuilder(payload_bytes=4096)
        s = b.add_source("s")
        k = b.add_sink("k")
        b.connect(s, k)
        g = b.build(TupleSpec(payload_bytes=1))
        assert g.tuple_spec.payload_bytes == 1

    def test_build_validates_structure(self):
        b = GraphBuilder()
        b.add_source("s")
        b.add_operator("orphan")
        b.add_sink("k")
        with pytest.raises(GraphValidationError):
            b.build()

    def test_connect_returns_self_for_chaining(self):
        b = GraphBuilder()
        s = b.add_source("s")
        k = b.add_sink("k")
        assert b.connect(s, k) is b
