"""Tests for the core stream graph model."""

from __future__ import annotations

import pytest

from repro.graph import (
    FanoutPolicy,
    GraphBuilder,
    GraphValidationError,
    Operator,
    OperatorKind,
    StreamEdge,
    StreamGraph,
    TupleSpec,
)


def _op(i, name, kind=OperatorKind.FUNCTIONAL, **kw):
    return Operator(index=i, name=name, kind=kind, **kw)


def _simple_ops():
    return [
        _op(0, "src", OperatorKind.SOURCE),
        _op(1, "mid"),
        _op(2, "snk", OperatorKind.SINK, selectivity=0.0),
    ]


def _simple_edges():
    return [StreamEdge(0, 1), StreamEdge(1, 2)]


class TestOperator:
    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            Operator(index=-1, name="x")

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="cost_flops"):
            Operator(index=0, name="x", cost_flops=-1.0)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(ValueError, match="selectivity"):
            Operator(index=0, name="x", selectivity=-0.5)

    def test_with_cost_preserves_everything_else(self):
        op = Operator(
            index=3,
            name="x",
            cost_flops=5.0,
            selectivity=2.0,
            uses_lock=True,
            fanout=FanoutPolicy.SPLIT,
        )
        new = op.with_cost(42.0)
        assert new.cost_flops == 42.0
        assert new.index == 3
        assert new.name == "x"
        assert new.selectivity == 2.0
        assert new.uses_lock is True
        assert new.fanout is FanoutPolicy.SPLIT

    def test_kind_predicates(self):
        assert _op(0, "s", OperatorKind.SOURCE).is_source
        assert _op(0, "k", OperatorKind.SINK).is_sink
        f = _op(0, "f")
        assert not f.is_source and not f.is_sink


class TestStreamEdge:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            StreamEdge(1, 1)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError):
            StreamEdge(-1, 0)


class TestTupleSpec:
    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            TupleSpec(payload_bytes=-1)

    def test_default_payload(self):
        assert TupleSpec().payload_bytes == 128


class TestGraphValidation:
    def test_valid_graph_builds(self):
        g = StreamGraph(_simple_ops(), _simple_edges())
        assert len(g) == 3

    def test_non_dense_indices_rejected(self):
        ops = [
            _op(0, "src", OperatorKind.SOURCE),
            _op(2, "snk", OperatorKind.SINK),
        ]
        with pytest.raises(GraphValidationError, match="dense"):
            StreamGraph(ops, [])

    def test_duplicate_names_rejected(self):
        ops = [
            _op(0, "x", OperatorKind.SOURCE),
            _op(1, "x", OperatorKind.SINK),
        ]
        with pytest.raises(GraphValidationError, match="duplicate"):
            StreamGraph(ops, [StreamEdge(0, 1)])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(GraphValidationError, match="unknown"):
            StreamGraph(_simple_ops(), [StreamEdge(0, 9)])

    def test_cycle_rejected(self):
        ops = _simple_ops() + [_op(3, "loop")]
        edges = [
            StreamEdge(0, 1),
            StreamEdge(1, 3),
            StreamEdge(3, 1),
            StreamEdge(1, 2),
        ]
        with pytest.raises(GraphValidationError, match="cycle"):
            StreamGraph(ops, edges)

    def test_source_with_inputs_rejected(self):
        ops = _simple_ops()
        edges = _simple_edges() + [StreamEdge(1, 0)]
        with pytest.raises(GraphValidationError):
            StreamGraph(ops, edges)

    def test_sink_with_outputs_rejected(self):
        ops = _simple_ops() + [_op(3, "after")]
        edges = _simple_edges() + [StreamEdge(2, 3)]
        with pytest.raises(GraphValidationError):
            StreamGraph(ops, edges)

    def test_orphan_functional_operator_rejected(self):
        ops = _simple_ops() + [_op(3, "orphan")]
        edges = _simple_edges() + [StreamEdge(3, 2)]
        with pytest.raises(GraphValidationError, match="no incoming"):
            StreamGraph(ops, edges)

    def test_graph_without_source_rejected(self):
        ops = [_op(0, "a"), _op(1, "snk", OperatorKind.SINK)]
        with pytest.raises(GraphValidationError):
            StreamGraph(ops, [StreamEdge(0, 1)])

    def test_graph_without_sink_rejected(self):
        ops = [_op(0, "src", OperatorKind.SOURCE), _op(1, "a")]
        with pytest.raises(GraphValidationError, match="sink"):
            StreamGraph(ops, [StreamEdge(0, 1)])


class TestGraphAccessors:
    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        pos = {idx: i for i, idx in enumerate(order)}
        for edge in diamond.edges:
            assert pos[edge.src] < pos[edge.dst]

    def test_by_name(self, diamond):
        assert diamond.by_name("b").name == "b"
        with pytest.raises(KeyError):
            diamond.by_name("nope")

    def test_successors_predecessors(self, diamond):
        a = diamond.by_name("a").index
        d = diamond.by_name("d").index
        assert set(diamond.successors(a)) == {
            diamond.by_name("b").index,
            diamond.by_name("c").index,
        }
        assert diamond.fan_in(d) == 2

    def test_sources_and_sinks(self, diamond):
        assert [op.name for op in diamond.sources] == ["src"]
        assert [op.name for op in diamond.sinks] == ["snk"]

    def test_repr_mentions_size(self, diamond):
        assert "operators=6" in repr(diamond)


class TestArrivalRates:
    def test_linear_chain_rates_all_one(self, chain10):
        rates = chain10.arrival_rates()
        assert all(abs(r - 1.0) < 1e-12 for r in rates.values())

    def test_broadcast_fanout_replicates(self, diamond):
        rates = diamond.arrival_rates()
        d = diamond.by_name("d").index
        # b and c each see rate 1 and both feed d.
        assert rates[d] == pytest.approx(2.0)

    def test_split_fanout_divides(self):
        b = GraphBuilder("split")
        src = b.add_source("src", fanout=FanoutPolicy.SPLIT)
        w1 = b.add_operator("w1")
        w2 = b.add_operator("w2")
        snk = b.add_sink("snk")
        b.fan_out(src, [w1, w2])
        b.fan_in([w1, w2], snk)
        g = b.build()
        rates = g.arrival_rates()
        assert rates[w1.index] == pytest.approx(0.5)
        assert rates[snk.index] == pytest.approx(1.0)

    def test_selectivity_scales_rates(self):
        b = GraphBuilder("sel")
        src = b.add_source("src")
        tok = b.add_operator("tok", selectivity=7.0)
        snk = b.add_sink("snk")
        b.chain(src, tok, snk)
        g = b.build()
        rates = g.arrival_rates()
        assert rates[snk.index] == pytest.approx(7.0)

    def test_weighted_cost_combines_rate_and_cost(self):
        b = GraphBuilder("wc")
        src = b.add_source("src", selectivity=3.0)
        op = b.add_operator("op", cost_flops=100.0)
        snk = b.add_sink("snk")
        b.chain(src, op, snk)
        g = b.build()
        weighted = g.weighted_cost_flops()
        assert weighted[op.index] == pytest.approx(300.0)


class TestGraphMutation:
    def test_replace_costs_returns_new_graph(self, chain10):
        target = chain10.by_name("op3").index
        new = chain10.replace_costs({target: 9999.0})
        assert new is not chain10
        assert new.operator(target).cost_flops == 9999.0
        assert chain10.operator(target).cost_flops == 1000.0

    def test_replace_costs_keeps_unmentioned(self, chain10):
        new = chain10.replace_costs({})
        for op, old in zip(new, chain10):
            assert op.cost_flops == old.cost_flops

    def test_with_tuple_spec(self, chain10):
        new = chain10.with_tuple_spec(TupleSpec(payload_bytes=4096))
        assert new.tuple_spec.payload_bytes == 4096
        assert chain10.tuple_spec.payload_bytes == 256

    def test_total_cost(self, chain10):
        # 10 ops x 1000 + source 10 + sink 10
        assert chain10.total_cost_flops() == pytest.approx(10020.0)
