"""Failure-injection tests: the controllers under hostile conditions.

The paper's SENS threshold and persistence logic exist to keep the
elastic components stable under measurement noise and transient
glitches.  These tests inject exactly those conditions and assert the
stability-side behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Mode, MultiLevelCoordinator
from repro.core.binning import ProfilingGroup
from repro.graph import pipeline
from repro.perfmodel import PerformanceModel, xeon_176
from repro.runtime import ElasticityConfig, QueuePlacement


def _groups(*member_lists):
    return [
        ProfilingGroup(
            members=tuple(m), representative_metric=1000.0 / (gi + 1)
        )
        for gi, m in enumerate(member_lists)
    ]


class InjectingDriver:
    """Drives a coordinator with a controllable disturbance channel."""

    def __init__(self, coordinator, base_fn):
        self.c = coordinator
        self.base_fn = base_fn
        self.placement = QueuePlacement.empty()
        self.threads = coordinator.current_threads
        self.disturbance = 1.0

    def run(self, periods):
        for _ in range(periods):
            observed = (
                self.base_fn(self.placement, self.threads)
                * self.disturbance
            )
            action = self.c.step(observed)
            if action.set_placement is not None:
                self.placement = action.set_placement
            if action.set_threads is not None:
                self.threads = action.set_threads
        return self


@pytest.fixture
def stable_coordinator():
    c = MultiLevelCoordinator(
        config=ElasticityConfig(),
        max_threads=8,
        profile_provider=lambda: _groups([1, 2, 3, 4]),
        seed=0,
    )
    driver = InjectingDriver(
        c, lambda p, t: 100.0 * (1 + min(len(p), 2))
    )
    driver.run(80)
    assert c.is_stable
    return c, driver


class TestTransientGlitches:
    def test_single_period_spike_does_not_restart(
        self, stable_coordinator
    ):
        c, driver = stable_coordinator
        driver.disturbance = 0.3  # 70% throughput collapse ...
        driver.run(1)
        driver.disturbance = 1.0  # ... for exactly one period
        driver.run(20)
        # Persistence = 2: one bad period must not trigger re-adaptation.
        assert all(m is Mode.STABLE for m in c.mode_history()[-20:])

    def test_sustained_drop_restarts(self, stable_coordinator):
        c, driver = stable_coordinator
        driver.disturbance = 0.3
        driver.run(6)
        assert any(
            m is not Mode.STABLE for m in c.mode_history()[-6:]
        )

    def test_alternating_glitches_do_not_restart(
        self, stable_coordinator
    ):
        """Spikes separated by good periods never accumulate."""
        c, driver = stable_coordinator
        for _ in range(10):
            driver.disturbance = 0.3
            driver.run(1)
            driver.disturbance = 1.0
            driver.run(3)
        history = c.mode_history()
        assert all(m is Mode.STABLE for m in history[-40:])


class TestHeavyNoise:
    @pytest.mark.parametrize("noise_std", [0.03, 0.08])
    def test_convergence_under_noise(self, noise_std):
        """The full loop still converges with noisy observations."""
        graph = pipeline(50, payload_bytes=1024)
        machine = xeon_176().with_cores(16)
        model = PerformanceModel(graph, machine)
        rng = np.random.default_rng(5)

        c = MultiLevelCoordinator(
            config=ElasticityConfig(),
            max_threads=16,
            profile_provider=lambda: _profile_groups(graph, machine),
            seed=5,
        )
        placement = QueuePlacement.empty()
        threads = 1
        for _ in range(600):
            true = model.sink_throughput(placement, threads)
            observed = true * float(
                rng.lognormal(mean=0.0, sigma=noise_std)
            )
            action = c.step(observed)
            if action.set_placement is not None:
                placement = action.set_placement
            if action.set_threads is not None:
                threads = action.set_threads
        manual = model.sink_throughput(QueuePlacement.empty(), 0)
        final = model.sink_throughput(placement, threads)
        assert final > 1.5 * manual

    def test_extreme_noise_does_not_crash(self):
        graph = pipeline(20, payload_bytes=256)
        machine = xeon_176().with_cores(8)
        model = PerformanceModel(graph, machine)
        rng = np.random.default_rng(9)
        c = MultiLevelCoordinator(
            config=ElasticityConfig(),
            max_threads=8,
            profile_provider=lambda: _profile_groups(graph, machine),
            seed=9,
        )
        placement = QueuePlacement.empty()
        threads = 1
        for _ in range(300):
            true = model.sink_throughput(placement, threads)
            observed = max(0.0, true * float(rng.lognormal(0.0, 0.5)))
            action = c.step(observed)
            if action.set_placement is not None:
                placement = action.set_placement
            if action.set_threads is not None:
                threads = action.set_threads
        # Sanity: configuration is valid, run completed.
        placement.validate(graph)
        assert 1 <= threads <= 8


def _profile_groups(graph, machine):
    from repro.core import SamplingProfiler, build_groups

    profiler = SamplingProfiler(machine, n_samples=400, seed=3)
    return build_groups(graph, profiler.profile(graph))


class TestZeroThroughputEdge:
    def test_zero_observations_handled(self):
        """A dead stream (0 tuples/s) must not crash the controllers."""
        c = MultiLevelCoordinator(
            config=ElasticityConfig(),
            max_threads=4,
            profile_provider=lambda: _groups([1, 2]),
            seed=0,
        )
        driver = InjectingDriver(c, lambda p, t: 0.0)
        driver.run(60)  # must not raise
        assert driver.threads >= 1
