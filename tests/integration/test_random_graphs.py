"""Property tests over randomly generated dataflow graphs.

A hypothesis strategy builds arbitrary layered DAGs (random fan-in/out,
selectivities, fanout policies, costs, locks) and checks that every
layer of the stack upholds its invariants on them — not just on the
hand-built benchmark topologies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import FanoutPolicy, GraphBuilder
from repro.graph.analysis import queueable_indices
from repro.perfmodel import PerformanceModel, laptop
from repro.runtime import QueuePlacement, decompose


@st.composite
def random_graph(draw):
    """A random layered DAG with 1 source and 1 sink."""
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    n_layers = draw(st.integers(1, 5))
    layer_sizes = [
        draw(st.integers(1, 5)) for _ in range(n_layers)
    ]
    b = GraphBuilder(f"rand-{rng_seed}", payload_bytes=int(rng.integers(1, 4096)))
    src = b.add_source(
        "src",
        fanout=(
            FanoutPolicy.SPLIT
            if rng.random() < 0.5
            else FanoutPolicy.BROADCAST
        ),
    )
    prev_layer = [src]
    op_id = 0
    for size in layer_sizes:
        layer = []
        for _ in range(size):
            op = b.add_operator(
                f"op{op_id}",
                cost_flops=float(rng.choice([1.0, 100.0, 10_000.0])),
                selectivity=float(rng.choice([0.5, 1.0, 1.0, 3.0])),
                uses_lock=bool(rng.random() < 0.15),
                fanout=(
                    FanoutPolicy.SPLIT
                    if rng.random() < 0.5
                    else FanoutPolicy.BROADCAST
                ),
            )
            op_id += 1
            # Every new operator gets at least one upstream edge.
            n_parents = int(rng.integers(1, len(prev_layer) + 1))
            parents = rng.choice(
                len(prev_layer), size=n_parents, replace=False
            )
            for p in parents:
                b.connect(prev_layer[int(p)], op)
            layer.append(op)
        prev_layer = layer
    snk = b.add_sink("snk")
    for op in prev_layer:
        b.connect(op, snk)
    graph = b.build()

    eligible = list(queueable_indices(graph))
    k = int(rng.integers(0, len(eligible) + 1))
    chosen = rng.choice(eligible, size=k, replace=False) if k else []
    placement = QueuePlacement.of(int(i) for i in chosen)
    return graph, placement


class TestRandomGraphInvariants:
    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_topological_order_valid(self, graph_and_placement):
        graph, _ = graph_and_placement
        pos = {
            idx: i for i, idx in enumerate(graph.topological_order())
        }
        for edge in graph.edges:
            assert pos[edge.src] < pos[edge.dst]

    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_region_rates_conserved(self, graph_and_placement):
        graph, placement = graph_and_placement
        decomp = decompose(graph, placement)
        global_rates = graph.arrival_rates()
        summed = {op.index: 0.0 for op in graph}
        for region in decomp.regions:
            for idx, rate in region.op_rates:
                summed[idx] += rate
        for idx, expected in global_rates.items():
            assert summed[idx] == pytest.approx(expected, abs=1e-9)

    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_each_edge_accounted_once(self, graph_and_placement):
        """Push rates into each queue equal the queue's entry rate."""
        graph, placement = graph_and_placement
        decomp = decompose(graph, placement)
        pushes: dict = {}
        for region in decomp.regions:
            for queue_op, rate in region.push_rates:
                pushes[queue_op] = pushes.get(queue_op, 0.0) + rate
        for region in decomp.dynamic_regions:
            assert pushes.get(region.entry, 0.0) == pytest.approx(
                region.entry_rate, abs=1e-9
            )

    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_model_produces_finite_positive_throughput(
        self, graph_and_placement
    ):
        graph, placement = graph_and_placement
        model = PerformanceModel(graph, laptop(4))
        for threads in (0, 1, 4):
            est = model.estimate(placement, threads)
            assert est.throughput >= 0.0
            if placement.n_queues == 0 or threads > 0:
                assert est.throughput > 0.0
            assert est.throughput != float("inf")

    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_more_threads_never_reduce_class_capacity(
        self, graph_and_placement
    ):
        """Scheduler-class bound is monotone while under the core count."""
        graph, placement = graph_and_placement
        machine = laptop(8)
        model = PerformanceModel(graph, machine)
        if placement.n_queues == 0:
            return
        bounds = [
            model.estimate(placement, t).scheduler_class_bound
            for t in (1, 2, 3)
        ]
        assert bounds[0] <= bounds[1] * 1.0001
        assert bounds[1] <= bounds[2] * 1.0001

    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_profiler_groups_partition(self, graph_and_placement):
        from repro.core import SamplingProfiler, build_groups, validate_groups

        graph, _ = graph_and_placement
        profiler = SamplingProfiler(laptop(4), n_samples=200, seed=1)
        groups = build_groups(graph, profiler.profile(graph))
        validate_groups(graph, groups)
