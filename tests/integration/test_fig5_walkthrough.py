"""A walkthrough of the paper's Figure 5 multi-level elasticity story.

Fig. 5 narrates six snapshots of a PE: (a) no queues, idle scheduler
threads; (b) threading model elasticity adds queues and the scheduler
threads become useful; (c) thread count elasticity adds threads; (d)
another round of threading model elasticity adds a queue; (e) further
adjustment stops paying; (f) the algorithm reverts the last adjustment
and stabilizes.  Each test pins one of those mechanics on the simulated
substrate.
"""

from __future__ import annotations

import pytest

from repro.graph import pipeline
from repro.perfmodel import PerformanceModel, laptop
from repro.runtime import (
    ProcessingElement,
    QueuePlacement,
    RuntimeConfig,
)
from repro.runtime.executor import AdaptationExecutor


@pytest.fixture
def graph():
    return pipeline(12, cost_flops=4000.0, payload_bytes=128)


@pytest.fixture
def machine():
    return laptop(8)


class TestSnapshotA:
    def test_idle_scheduler_threads_are_free(self, graph, machine):
        """(a): scheduler threads without queues change nothing."""
        pm = PerformanceModel(graph, machine)
        none = pm.estimate(QueuePlacement.empty(), 0)
        idle2 = pm.estimate(QueuePlacement.empty(), 2)
        assert idle2.throughput == pytest.approx(none.throughput)
        assert idle2.scheduler_threads_used == 0


class TestSnapshotB:
    def test_first_queues_activate_scheduler_threads(
        self, graph, machine
    ):
        """(b): queues give the idle threads work; throughput rises."""
        pm = PerformanceModel(graph, machine)
        idle = pm.estimate(QueuePlacement.empty(), 2)
        mid = graph.by_name("op5").index
        tail = graph.by_name("op9").index
        busy = pm.estimate(QueuePlacement.of([mid, tail]), 2)
        assert busy.scheduler_threads_used == 2
        assert busy.throughput > 1.5 * idle.throughput


class TestSnapshotCD:
    def test_threads_then_queues_interleave(self, graph, machine):
        """(c)+(d): more threads help once more queues exist, and vice
        versa — the interleaved gains the coordinator exploits."""
        pm = PerformanceModel(graph, machine)
        eligible = [op.index for op in graph if not op.is_source]
        three_q = QueuePlacement.of(eligible[:9:3])
        four_q = three_q.add([eligible[10]])
        t3q3 = pm.estimate(three_q, 3).throughput
        t3q4 = pm.estimate(four_q, 3).throughput
        t4q4 = pm.estimate(four_q, 4).throughput
        assert t4q4 > t3q3  # the joint move wins
        assert t3q4 >= t3q3 * 0.95  # the intermediate step is safe


class TestSnapshotEF:
    def test_executor_reverts_unhelpful_trials(self, graph, machine):
        """(e)+(f): trials that do not pay are reverted; the final
        configuration is the best one seen, and the system stabilizes."""
        config = RuntimeConfig(cores=8, seed=11)
        pe = ProcessingElement(graph, machine, config)
        executor = AdaptationExecutor(pe)
        result = executor.run(8000, stop_after_stable_periods=12)
        trace = result.trace
        assert executor.coordinator.is_stable
        # The converged throughput equals the best sustained level of
        # the run (temporary trial peaks aside, the system did not end
        # below what it already had).
        sustained = sorted(
            o.true_throughput for o in trace.observations
        )
        assert result.converged_throughput >= 0.9 * sustained[
            int(0.9 * (len(sustained) - 1))
        ]
        # And it ends strictly better than where it started.
        assert (
            result.converged_throughput
            > trace.observations[0].true_throughput
        )
