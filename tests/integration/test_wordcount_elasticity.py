"""End-to-end elasticity on the paper's WikiWordCount example (Fig. 2).

The tokenizers have selectivity 40 (a page yields many words), so this
exercise covers the rate-amplifying paths of the profiler, the region
decomposition and the performance model inside a full adaptation run.
"""

from __future__ import annotations

import pytest

from repro.apps.wordcount import build_wordcount
from repro.perfmodel import PerformanceModel, xeon_176
from repro.runtime import (
    ProcessingElement,
    QueuePlacement,
    RuntimeConfig,
)
from repro.runtime.executor import AdaptationExecutor


@pytest.fixture(scope="module")
def converged():
    graph = build_wordcount()
    machine = xeon_176().with_cores(16)
    pe = ProcessingElement(
        graph, machine, RuntimeConfig(cores=16, seed=5)
    )
    manual = pe.true_throughput()
    executor = AdaptationExecutor(pe)
    result = executor.run(10_000, stop_after_stable_periods=16)
    return graph, pe, manual, result


class TestWordCountElasticity:
    def test_elasticity_beats_manual(self, converged):
        _g, _pe, manual, result = converged
        # Word tuples are tiny and per-word queue crossings are paid on
        # the source thread, so the achievable gain is modest (~1.4x)
        # -- the paper's core lesson about queue costs, in miniature.
        assert result.converged_throughput > 1.3 * manual

    def test_profiler_weights_follow_amplified_rates(self, converged):
        graph, pe, _m, _r = converged
        from repro.core import SamplingProfiler

        weights = SamplingProfiler(pe.machine).expected_weights(graph)
        # Aggregates run at word rate (4/page each), tokenizers at page
        # rate (1/5 each) but 15x the per-tuple cost.
        tok = graph.by_name("Tokenize0").index
        agg = graph.by_name("Aggregate0").index
        assert weights[tok] > 0
        assert weights[agg] > 0

    def test_final_configuration_is_valid(self, converged):
        graph, pe, _m, _r = converged
        pe.placement.validate(graph)
        assert 1 <= pe.scheduler_threads <= 16

    def test_elastic_choice_close_to_best_known(self, converged):
        graph, pe, _m, result = converged
        model = PerformanceModel(graph, pe.machine)
        # Best known hand config: queue the tokenizers and aggregates.
        tokenizers = [
            op.index for op in graph if op.name.startswith("Tokenize")
        ]
        aggregates = [
            op.index for op in graph if op.name.startswith("Aggregate")
        ]
        hand = model.sink_throughput(
            QueuePlacement.of(tokenizers + aggregates), 15
        )
        assert result.converged_throughput > 0.5 * hand
