"""Integration tests asserting the paper's headline claims end-to-end.

These are scaled-down versions of the benchmark experiments (smaller
graphs, fewer grid points) so they run in seconds under pytest; the full
grids live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.workloads import phase_change
from repro.bench.harness import (
    compare,
    oracle_sweep,
    run_dynamic_only,
    run_manual,
    run_multi_level,
)
from repro.core.saso import analyze
from repro.graph import assign_costs, data_parallel, pipeline, skewed
from repro.perfmodel import xeon_176
from repro.runtime import ProcessingElement, RuntimeConfig
from repro.runtime.executor import AdaptationExecutor


class TestFig1Motivation:
    """The best configuration is neither all-manual nor all-dynamic,
    and the framework finds a competitive one automatically."""

    def test_interior_optimum_and_auto_competitiveness(self):
        graph = pipeline(100, cost_flops=100.0, payload_bytes=1024)
        machine = xeon_176().with_cores(16)
        rows = oracle_sweep(
            graph, machine, fractions=(0.0, 0.1, 0.2, 0.5, 1.0)
        )
        by_frac = {f: t for f, _n, t in rows}
        best = max(by_frac.values())
        assert best > 1.2 * by_frac[0.0]
        assert best > 1.2 * by_frac[1.0]

        auto = run_multi_level(
            graph, machine, RuntimeConfig(cores=16, seed=0)
        )
        # "reaches good performance with automatic adjustment"
        assert auto.throughput > 0.6 * best


class TestFig9Pipeline:
    def test_payload_trend(self):
        """Multi-level's edge over dynamic grows with tuple payload."""
        machine = xeon_176()
        gains = {}
        for payload in (128, 16384):
            graph = pipeline(100, payload_bytes=payload)
            c = compare(
                graph, machine, RuntimeConfig(cores=176, seed=0)
            )
            gains[payload] = c.multi_over_dynamic
        assert gains[16384] > gains[128]
        assert gains[16384] > 2.0

    def test_dynamic_ratio_decreases_with_payload(self):
        machine = xeon_176()
        ratios = {}
        for payload in (128, 16384):
            graph = pipeline(100, payload_bytes=payload)
            r = run_multi_level(
                graph, machine, RuntimeConfig(cores=176, seed=0)
            )
            ratios[payload] = r.dynamic_ratio
        assert ratios[16384] < ratios[128]

    def test_dynamic_only_loses_at_16k_payload(self):
        machine = xeon_176()
        graph = pipeline(100, payload_bytes=16384)
        manual = run_manual(graph, machine)
        dynamic = run_dynamic_only(
            graph, machine, RuntimeConfig(cores=176, seed=0)
        )
        assert dynamic.throughput < manual.throughput

    def test_multi_level_never_much_worse_than_manual(self):
        machine = xeon_176()
        graph = pipeline(100, payload_bytes=16384)
        multi = run_multi_level(
            graph, machine, RuntimeConfig(cores=176, seed=0)
        )
        manual = run_manual(graph, machine)
        assert multi.throughput > 0.9 * manual.throughput

    def test_skewed_distribution_also_gains(self):
        machine = xeon_176()
        graph = assign_costs(
            pipeline(100, payload_bytes=1024),
            skewed(),
            rng=np.random.default_rng(0),
        )
        c = compare(graph, machine, RuntimeConfig(cores=176, seed=0))
        assert c.multi_level_speedup > 1.5


class TestFig10DataParallel:
    def test_dynamic_can_lose_multi_does_not(self):
        machine = xeon_176()
        graph = data_parallel(50, cost_flops=100.0, payload_bytes=1024)
        c = compare(graph, machine, RuntimeConfig(cores=176, seed=0))
        # "sometimes thread count elasticity performs worse than manual"
        assert c.dynamic_speedup < 1.0
        # "multi-level is consistently equal or better than manual"
        assert c.multi_level_speedup >= 0.95


class TestFig13PhaseChange:
    def test_readapts_after_heavy_shift(self):
        workload = phase_change(
            n_operators=60, change_time_s=600.0, seed=0
        )
        machine = xeon_176().with_cores(88)
        pe = ProcessingElement(
            workload.initial, machine, RuntimeConfig(cores=88, seed=0)
        )
        executor = AdaptationExecutor(
            pe, workload_events=workload.events()
        )
        result = executor.run(3000)
        trace = result.trace
        before = [o for o in trace.observations if o.time_s < 600]
        after = [o for o in trace.observations if o.time_s >= 900]
        # More work per tuple -> more threads after the change.
        assert after[-1].threads >= before[-1].threads
        # The system made configuration changes after the shift.
        changes_after = [
            c
            for c in trace.thread_changes + trace.placement_changes
            if c.time_s > 600
        ]
        assert changes_after


class TestSasoProperties:
    def test_multi_level_run_is_saso(self):
        graph = assign_costs(
            pipeline(100, payload_bytes=1024),
            skewed(),
            rng=np.random.default_rng(0),
        )
        machine = xeon_176().with_cores(88)
        result = run_multi_level(
            graph, machine, RuntimeConfig(cores=88, seed=0)
        )
        assert result.trace is not None
        reference = max(
            t
            for _f, _n, t in oracle_sweep(
                graph,
                machine,
                fractions=(0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0),
            )
        )
        report = analyze(result.trace, reference_throughput=reference)
        # Stability: no post-settling oscillation.
        assert report.stability_ok
        # Accuracy: within 2x of the static oracle.
        assert report.accuracy_ratio is not None
        assert report.accuracy_ratio > 0.5

    def test_run_to_run_variance_is_low(self):
        """§3.1.1: arbitrary group selection incurs little variance."""
        graph = pipeline(60, payload_bytes=1024)
        machine = xeon_176().with_cores(88)
        outcomes = [
            run_multi_level(
                graph, machine, RuntimeConfig(cores=88, seed=seed)
            ).throughput
            for seed in (1, 2, 3)
        ]
        assert max(outcomes) / min(outcomes) < 1.4


class TestPeriodInsensitivity:
    def test_5s_to_30s_periods_equivalent(self):
        """§3.1.1: periods of 5-30s show no significant impact."""
        from repro.runtime import ElasticityConfig

        graph = pipeline(60, payload_bytes=1024)
        machine = xeon_176().with_cores(88)
        outcomes = {}
        for period in (5.0, 30.0):
            config = RuntimeConfig(
                cores=88,
                seed=0,
                elasticity=ElasticityConfig(adaptation_period_s=period),
            )
            outcomes[period] = run_multi_level(
                graph, machine, config
            ).throughput
        assert outcomes[30.0] == pytest.approx(
            outcomes[5.0], rel=0.35
        )
