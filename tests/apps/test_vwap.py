"""Tests for the VWAP mini-application (§4.2)."""

from __future__ import annotations

import pytest

from repro.apps.vwap import (
    HAND_OPTIMIZED_THREADS,
    VWAP_OPERATOR_COUNT,
    build_vwap,
    hand_optimized,
)
from repro.graph.analysis import stats


class TestTopology:
    def test_operator_count_matches_paper(self):
        assert len(build_vwap()) == VWAP_OPERATOR_COUNT == 52

    def test_single_source_single_sink(self):
        s = stats(build_vwap())
        assert s.n_sources == 1
        assert s.n_sinks == 1

    def test_rate_conservation_at_sink(self):
        g = build_vwap()
        rates = g.arrival_rates()
        # The bargain join sees the 8 bargain workers (broadcast into
        # join), each carrying 1/4 rate -> join and exports at rate 2.
        assert rates[g.by_name("Sink").index] == pytest.approx(2.0)

    def test_vwap_paths_split_rate(self):
        g = build_vwap()
        rates = g.arrival_rates()
        assert rates[g.by_name("VwapAgg3").index] == pytest.approx(1 / 8)

    def test_payload_configurable(self):
        assert build_vwap(payload_bytes=512).tuple_spec.payload_bytes == 512


class TestHandOptimized:
    def test_nine_threaded_ports(self):
        g = build_vwap()
        placement, threads = hand_optimized(g)
        assert placement.n_queues == 9
        assert threads == HAND_OPTIMIZED_THREADS == 9

    def test_placement_is_valid(self):
        g = build_vwap()
        placement, _ = hand_optimized(g)
        placement.validate(g)  # must not raise
