"""Tests for workload generators (Fig. 13) and WikiWordCount."""

from __future__ import annotations

import pytest

from repro.apps.wordcount import build_wordcount
from repro.apps.workloads import phase_change, scaled_workload
from repro.graph import cost_classes, pipeline
from repro.graph.analysis import stats


class TestPhaseChange:
    def test_heavy_ratio_shifts(self):
        w = phase_change(n_operators=100, seed=1)
        heavy_before, _, _ = cost_classes(w.initial)
        heavy_after, _, _ = cost_classes(w.changed)
        assert len(heavy_before) == 10
        assert len(heavy_after) == 90

    def test_same_topology_both_phases(self):
        w = phase_change(n_operators=50)
        assert len(w.initial) == len(w.changed)
        assert w.initial.edges == w.changed.edges

    def test_events_format(self):
        w = phase_change(change_time_s=600.0)
        events = w.events()
        assert len(events) == 1
        assert events[0][0] == 600.0
        assert events[0][1] is w.changed

    def test_total_cost_increases(self):
        w = phase_change(n_operators=100, seed=2)
        assert (
            w.changed.total_cost_flops() > w.initial.total_cost_flops()
        )

    def test_seeded(self):
        a = phase_change(seed=5)
        b = phase_change(seed=5)
        assert [op.cost_flops for op in a.initial] == [
            op.cost_flops for op in b.initial
        ]


class TestScaledWorkload:
    def test_scale_multiplies_functional_costs(self, chain10):
        scaled = scaled_workload(chain10, 3.0)
        assert scaled.by_name("op0").cost_flops == pytest.approx(3000.0)

    def test_source_sink_untouched(self, chain10):
        scaled = scaled_workload(chain10, 3.0)
        assert scaled.by_name("src").cost_flops == chain10.by_name(
            "src"
        ).cost_flops

    def test_rejects_nonpositive_factor(self, chain10):
        with pytest.raises(ValueError):
            scaled_workload(chain10, 0.0)


class TestWordCount:
    def test_structure(self):
        g = build_wordcount()
        s = stats(g)
        assert s.n_sources == 1
        assert s.n_sinks == 1
        assert len(g) == 20

    def test_tokenizer_selectivity_amplifies(self):
        g = build_wordcount(words_per_page=40.0)
        rates = g.arrival_rates()
        # 5 tokenizers each at rate 1/5 with selectivity 40 -> the
        # partitioner sees 40 words per page.
        assert rates[g.by_name("PartitionBy").index] == pytest.approx(40.0)

    def test_aggregates_split_words(self):
        g = build_wordcount(words_per_page=40.0)
        rates = g.arrival_rates()
        assert rates[g.by_name("Aggregate0").index] == pytest.approx(4.0)
