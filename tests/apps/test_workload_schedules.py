"""Tests for the diurnal and spike workload schedules."""

from __future__ import annotations

import pytest

from repro.apps import diurnal_cycle, spike
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import ProcessingElement, RuntimeConfig
from repro.runtime.executor import AdaptationExecutor


@pytest.fixture
def base():
    return pipeline(12, cost_flops=2000.0, payload_bytes=256)


class TestDiurnalCycle:
    def test_event_count(self, base):
        events = diurnal_cycle(
            base, period_s=1000.0, n_cycles=3, steps_per_cycle=4
        )
        assert len(events) == 12

    def test_times_monotone(self, base):
        events = diurnal_cycle(base, period_s=500.0, n_cycles=2)
        times = [t for t, _g in events]
        assert times == sorted(times)

    def test_load_oscillates(self, base):
        events = diurnal_cycle(
            base,
            period_s=1000.0,
            n_cycles=1,
            low_factor=0.2,
            high_factor=2.0,
            steps_per_cycle=4,
        )
        costs = [g.total_cost_flops() for _t, g in events]
        # Trough at phase 0, crest mid-cycle.
        assert costs[0] < costs[2]
        assert costs[2] > costs[3]

    def test_rejects_bad_params(self, base):
        with pytest.raises(ValueError):
            diurnal_cycle(base, period_s=0)
        with pytest.raises(ValueError):
            diurnal_cycle(base, steps_per_cycle=1)

    def test_system_follows_the_cycle(self, base, small_machine):
        """The elastic runtime re-adapts across load phases."""
        config = RuntimeConfig(cores=8, seed=4)
        pe = ProcessingElement(base, small_machine, config)
        events = diurnal_cycle(
            base,
            period_s=2000.0,
            n_cycles=1,
            low_factor=1.0,
            high_factor=30.0,
            steps_per_cycle=4,
        )
        executor = AdaptationExecutor(pe, workload_events=events)
        result = executor.run(4000)
        changes = (
            result.trace.thread_changes
            + result.trace.placement_changes
        )
        # Adaptation activity continues after the first load change.
        assert any(c.time_s > 600 for c in changes)


class TestSpike:
    def test_two_events(self, base):
        events = spike(base, spike_time_s=100.0, spike_duration_s=50.0)
        assert len(events) == 2
        assert events[0][0] == 100.0
        assert events[1][0] == 150.0

    def test_returns_to_base_graph(self, base):
        events = spike(base, 100.0, 50.0, factor=5.0)
        assert events[1][1] is base
        assert events[0][1].total_cost_flops() > base.total_cost_flops()

    def test_rejects_bad_duration(self, base):
        with pytest.raises(ValueError):
            spike(base, 100.0, 0.0)
