"""Tests for the PacketAnalysis application topology (§4.3)."""

from __future__ import annotations

import pytest

from repro.apps.packet_analysis import (
    EIGHT_SOURCE_OPERATORS,
    ONE_SOURCE_OPERATORS,
    build_packet_analysis,
    hand_optimized,
)
from repro.graph.analysis import stats


class TestTopology:
    def test_one_source_count_matches_paper(self):
        assert len(build_packet_analysis(1)) == ONE_SOURCE_OPERATORS == 387

    def test_eight_source_count_matches_paper(self):
        assert (
            len(build_packet_analysis(8)) == EIGHT_SOURCE_OPERATORS == 2305
        )

    def test_source_count(self):
        assert stats(build_packet_analysis(8)).n_sources == 8

    def test_rejects_zero_sources(self):
        with pytest.raises(ValueError):
            build_packet_analysis(0)

    def test_payload_default_is_small(self):
        # ~256B tuples: "relatively small compared to the
        # computationally expensive analytics".
        assert build_packet_analysis(1).tuple_spec.payload_bytes == 256

    def test_dga_branch_is_heavy(self):
        g = build_packet_analysis(1)
        dga = g.by_name("S0DgaW0D0")
        tunnel = g.by_name("S0TunnelW0D0")
        assert dga.cost_flops > tunnel.cost_flops

    def test_branches_broadcast_from_ingest(self):
        """Each analysis branch sees every packet (broadcast)."""
        g = build_packet_analysis(1)
        rates = g.arrival_rates()
        assert rates[g.by_name("S0DgaHead").index] == pytest.approx(1.0)
        assert rates[g.by_name("S0TunnelHead").index] == pytest.approx(1.0)

    def test_workers_split_within_branch(self):
        g = build_packet_analysis(1)
        rates = g.arrival_rates()
        assert rates[g.by_name("S0DgaW0D0").index] == pytest.approx(1 / 5)

    def test_collector_aggregates_all_sources(self):
        g = build_packet_analysis(4)
        assert g.fan_in(g.by_name("Collector").index) == 4


class TestHandOptimized:
    def test_one_source_17_threads(self):
        g = build_packet_analysis(1)
        placement, threads = hand_optimized(g)
        assert threads == 17
        assert placement.n_queues == 17

    def test_eight_source_129_threads(self):
        g = build_packet_analysis(8)
        placement, threads = hand_optimized(g)
        assert threads == 129
        assert placement.n_queues == 129

    def test_placement_valid(self):
        g = build_packet_analysis(2)
        placement, _ = hand_optimized(g)
        placement.validate(g)
