"""Batched-vs-unbatched equivalence: decisions, memo cells, fast-forward.

Batching changes the *event granularity* of the simulation — how many
tuples one kernel event carries — not the per-tuple costs, which the
burst tables accumulate exactly.  Granularity still perturbs the
microstructure (who waits on whom at batch boundaries), so raw sink
counts can drift by a few percent between batch sizes.  What the
coordinator *decides* is the regression surface the zoo pins, and this
suite asserts it is byte-identical across batch granularities on a
sample of the scenario zoo, including open-loop arrival processes,
drop/block overflow edges, profiled runs (``profile_from_execution``
defaults on for every zoo scenario) and memoized measurement periods.

The analytic fast-forwarder is held to a stricter standard: it is a
pure simulator optimization, so FF-on vs FF-off must agree on the
full R1-R5 decision sequence and the final configuration, and a
window too short for the probes must fall back to byte-identical
event-by-event execution.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench import cache
from repro.des.adaptation import DesAdaptationRunner
from repro.des.channels import ChannelConfig
from repro.des.engine import DesEngine
from repro.graph.topologies import pipeline
from repro.obs.hub import ObservabilityHub
from repro.perfmodel.machine import laptop
from repro.runtime.config import RuntimeConfig
from repro.runtime.queues import QueuePlacement
from repro.scenarios.compile import compile_scenario
from repro.scenarios.run import run_on_des
from repro.scenarios.zoo import load_named

# Zoo sample: open-loop underload, an arrival spike, ON/OFF bursts
# against full ingress queues, and a closed-loop profiled DAG.  All
# four run with sampled profiling and measurement memoization — the
# zoo runner's defaults.
ZOO_SAMPLE = (
    "poisson-underload",
    "flash-crowd-spike",
    "onoff-burst-overflow",
    "diamond-branches",
)


def _signature(result):
    """The regression signature a batch size must not perturb."""
    return (
        result.decisions,
        result.final_threads,
        result.final_n_queues,
        result.periods,
    )


def _run_with_channel(name, channel=None):
    compiled = compile_scenario(load_named(name))
    if channel is not None:
        compiled = dataclasses.replace(compiled, channel=channel)
    return run_on_des(compiled)


class TestZooDecisionInvariance:
    @pytest.mark.parametrize("name", ZOO_SAMPLE)
    def test_batch_size_does_not_change_decisions(self, name):
        declared = _run_with_channel(name)
        unbatched = _run_with_channel(name, ChannelConfig(batch_size=1))
        wide = _run_with_channel(name, ChannelConfig(batch_size=32))
        assert _signature(unbatched) == _signature(declared)
        assert _signature(wide) == _signature(declared)


def _adaptation_run(channel, measure_s=0.004, profile=True):
    hub = ObservabilityHub()
    runner = DesAdaptationRunner(
        pipeline(8, cost_flops=4000.0, payload_bytes=128),
        laptop(4),
        RuntimeConfig(cores=4, seed=2),
        warmup_s=0.001,
        measure_s=measure_s,
        profile_from_execution=profile,
        sampled_profiling=profile,
        obs=hub,
        channel=channel,
    )
    result = runner.run(max_periods=40)
    decisions = tuple(
        (d.rule, d.set_threads, d.set_n_queues) for d in hub.decisions()
    )
    return result, decisions, hub


def _counter(hub, name):
    metric = hub.registry.get(name)
    return float(metric.value) if metric is not None else 0.0


class TestMemoization:
    def test_memoized_repeat_is_identical(self):
        cache.clear()
        first, dec_first, _ = _adaptation_run(ChannelConfig())
        again, dec_again, hub = _adaptation_run(ChannelConfig())
        # The repeat run replays memoized periods rather than
        # re-simulating them, and reproduces the run exactly.
        assert _counter(hub, "bench.cache_hits") > 0
        assert dec_again == dec_first
        assert again.converged_throughput == first.converged_throughput
        assert again.final_threads == first.final_threads

    def test_channel_key_partitions_memo_cells(self):
        # Differently-batched runs must never share measurement cells:
        # the channel fingerprint is part of the memo key, so an
        # unbatched run after a batched one grows the cell count
        # instead of replaying the batched run's measurements.
        cache.clear()
        _adaptation_run(ChannelConfig())
        batched_cells = cache.stats()["entries"]
        _adaptation_run(ChannelConfig(batch_size=1))
        assert cache.stats()["entries"] > batched_cells


class TestFlushTimeout:
    def test_nonbinding_flush_horizon_is_byte_identical(self):
        # A flush timeout wider than any batch's fill time never caps
        # a burst, so the run is the same simulation event for event.
        results = []
        for channel in (
            ChannelConfig(batch_size=8),
            ChannelConfig(batch_size=8, flush_timeout_s=1.0),
        ):
            graph = pipeline(4, cost_flops=2000.0, payload_bytes=128)
            engine = DesEngine(
                graph,
                laptop(cores=4),
                QueuePlacement.full(graph),
                scheduler_threads=2,
                channel=channel,
            )
            result = engine.run(warmup_s=0.002, measure_s=0.01)
            results.append(
                (result.sink_tuples, engine.sim.events_processed)
            )
        assert results[0] == results[1]


class TestFastForward:
    def test_fastforward_decision_identity(self):
        # Long unprofiled closed-loop windows: the extrapolator must
        # engage (events saved) yet leave the R1-R5 decision sequence
        # and the converged configuration untouched.
        cache.clear()
        ff, dec_ff, hub_ff = _adaptation_run(
            ChannelConfig(fastforward=True),
            measure_s=0.05,
            profile=False,
        )
        cache.clear()
        plain, dec_plain, _ = _adaptation_run(
            ChannelConfig(),
            measure_s=0.05,
            profile=False,
        )
        saved = _counter(
            hub_ff, "des.analytic_fastforward_events_saved"
        )
        assert saved > 0, "fast-forward never engaged on a 50 ms window"
        assert dec_ff == dec_plain
        assert ff.final_threads == plain.final_threads
        assert (
            ff.final_placement.n_queues == plain.final_placement.n_queues
        )
        assert ff.converged_throughput == pytest.approx(
            plain.converged_throughput, rel=0.02
        )

    def test_short_window_falls_back_to_events(self):
        # Windows too short for two steady probes run event-by-event:
        # no jumps, and results byte-identical to fastforward=False.
        cache.clear()
        ff, dec_ff, hub_ff = _adaptation_run(
            ChannelConfig(fastforward=True),
            measure_s=0.004,
            profile=False,
        )
        cache.clear()
        plain, dec_plain, _ = _adaptation_run(
            ChannelConfig(),
            measure_s=0.004,
            profile=False,
        )
        assert (
            _counter(hub_ff, "des.analytic_fastforward_events_saved")
            == 0.0
        )
        assert dec_ff == dec_plain
        assert ff.converged_throughput == plain.converged_throughput
