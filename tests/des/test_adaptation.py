"""Tests for the DES-driven adaptation loop."""

from __future__ import annotations

import pytest

from repro.des import DesAdaptationRunner
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import ElasticityConfig, RuntimeConfig


@pytest.fixture(scope="module")
def result_and_manual():
    graph = pipeline(8, cost_flops=4000.0, payload_bytes=128)
    machine = laptop(4)
    config = RuntimeConfig(
        cores=4,
        seed=2,
        elasticity=ElasticityConfig(profiling_samples=400),
    )
    runner = DesAdaptationRunner(
        graph,
        machine,
        config,
        warmup_s=0.001,
        measure_s=0.004,
    )
    manual = runner.measure()
    result = runner.run(max_periods=60)
    return result, manual


class TestDesAdaptation:
    def test_improves_over_manual(self, result_and_manual):
        result, manual = result_and_manual
        assert result.converged_throughput > 1.5 * manual

    def test_places_queues(self, result_and_manual):
        result, _ = result_and_manual
        assert result.final_placement.n_queues >= 1

    def test_threads_within_budget(self, result_and_manual):
        result, _ = result_and_manual
        assert 1 <= result.final_threads <= 4

    def test_trace_is_consistent(self, result_and_manual):
        result, _ = result_and_manual
        obs = result.trace.observations
        assert obs
        times = [o.time_s for o in obs]
        assert times == sorted(times)
        # Recorded configuration matches the change events.
        assert obs[-1].threads == result.final_threads
        assert obs[-1].n_queues == result.final_placement.n_queues


class TestDesWorkloadEvents:
    def test_graph_swap_applies_and_system_reacts(self):
        from repro.apps.workloads import scaled_workload
        from repro.des import DesAdaptationRunner
        from repro.graph import pipeline
        from repro.perfmodel import laptop
        from repro.runtime import RuntimeConfig

        graph = pipeline(6, cost_flops=3000.0, payload_bytes=128)
        heavier = scaled_workload(graph, 20.0)
        runner = DesAdaptationRunner(
            pipeline(6, cost_flops=3000.0, payload_bytes=128),
            laptop(4),
            RuntimeConfig(cores=4, seed=6),
            warmup_s=0.001,
            measure_s=0.003,
            workload_events=[(100.0, heavier)],
        )
        result = runner.run(max_periods=40, stop_after_stable_periods=None)
        assert runner.graph is heavier
        before = [
            o.true_throughput
            for o in result.trace.observations
            if o.time_s < 100
        ]
        after = [
            o.true_throughput
            for o in result.trace.observations
            if o.time_s > 105
        ]
        # 20x heavier operators -> clearly lower measured throughput.
        assert min(before) > max(after)


class TestExecutionProfiling:
    def test_adaptation_with_snapshot_profiler(self):
        """The full loop converges with metrics gathered by the paper's
        snapshot mechanism from actual execution (no cost-model oracle)."""
        from repro.des import DesAdaptationRunner
        from repro.graph import pipeline
        from repro.perfmodel import laptop
        from repro.runtime import RuntimeConfig

        graph = pipeline(8, cost_flops=4000.0, payload_bytes=128)
        runner = DesAdaptationRunner(
            graph,
            laptop(4),
            RuntimeConfig(cores=4, seed=8),
            warmup_s=0.001,
            measure_s=0.004,
            profile_from_execution=True,
        )
        manual = runner.measure()
        result = runner.run(max_periods=50)
        assert result.converged_throughput > 1.4 * manual
