"""Determinism and conservation properties of the DES substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import DesEngine, Simulator, SimQueue, measure_throughput
from repro.des.kernel import Get, Put, Timeout
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import QueuePlacement


def _even(graph, k):
    eligible = [op.index for op in graph if not op.is_source]
    step = len(eligible) / k
    return QueuePlacement.of(eligible[int(i * step)] for i in range(k))


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        """The DES contains no randomness: bit-identical replays."""
        g = pipeline(8, cost_flops=2000.0, payload_bytes=128)
        m = laptop(4)
        placement = _even(g, 3)
        a = measure_throughput(
            g, m, placement, 3, warmup_s=0.004, measure_s=0.02
        )
        b = measure_throughput(
            g, m, placement, 3, warmup_s=0.004, measure_s=0.02
        )
        assert a.sink_tuples == b.sink_tuples
        assert a.queue_occupancy == b.queue_occupancy
        assert a.thread_busy_fraction == b.thread_busy_fraction

    def test_longer_window_scales_counts(self):
        g = pipeline(6, cost_flops=2000.0, payload_bytes=128)
        m = laptop(4)
        placement = _even(g, 2)
        short = measure_throughput(
            g, m, placement, 2, warmup_s=0.005, measure_s=0.01
        )
        long = measure_throughput(
            g, m, placement, 2, warmup_s=0.005, measure_s=0.04
        )
        assert long.sink_tuples_per_s == pytest.approx(
            short.sink_tuples_per_s, rel=0.1
        )


class TestKernelConservation:
    """Random producer/consumer schedules preserve queue accounting."""

    @given(
        seed=st.integers(0, 100_000),
        n_producers=st.integers(1, 4),
        n_consumers=st.integers(1, 4),
        capacity=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_put_get_accounting(
        self, seed, n_producers, n_consumers, capacity
    ):
        rng = np.random.default_rng(seed)
        sim = Simulator()
        q = SimQueue(capacity=capacity)
        produced = {"n": 0}
        consumed = {"n": 0}

        def producer(delays):
            for d in delays:
                yield Timeout(d)
                yield Put(q, object())
                produced["n"] += 1

        def consumer(delays):
            for d in delays:
                yield Timeout(d)
                yield Get(q)
                consumed["n"] += 1

        for _ in range(n_producers):
            delays = rng.uniform(0, 1e-3, size=20).tolist()
            sim.spawn(producer(delays))
        for _ in range(n_consumers):
            delays = rng.uniform(0, 1e-3, size=20).tolist()
            sim.spawn(consumer(delays))
        sim.run_until(10.0)

        # Conservation: everything put was either got or still queued.
        assert q.total_put == produced["n"]
        assert q.total_got == consumed["n"]
        assert q.total_put - q.total_got == len(q)
        assert 0 <= len(q) <= capacity

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_time_never_regresses(self, seed):
        rng = np.random.default_rng(seed)
        sim = Simulator()
        stamps = []

        def proc(delays):
            for d in delays:
                yield Timeout(d)
                stamps.append(sim.now)

        for _ in range(3):
            sim.spawn(proc(rng.uniform(0, 1e-2, size=15).tolist()))
        sim.run_until(1.0)
        assert stamps == sorted(stamps)


class TestEngineConservation:
    def test_tuples_conserved_through_queues(self):
        """Everything pushed into every queue is eventually popped or
        still resident at measurement end."""
        g = pipeline(8, cost_flops=500.0, payload_bytes=64)
        m = laptop(4)
        engine = DesEngine(g, m, _even(g, 3), 3, queue_capacity=8)
        engine.run(warmup_s=0.002, measure_s=0.01)
        for q in engine._queues.values():
            assert q.total_put - q.total_got == len(q)
            assert 0 <= len(q) <= q.capacity
