"""The vectorized locked-region path is an optimization, not a model.

A region whose locks can only ever be taken by one thread
(``threads_reaching <= 1``) joins the burst fast path: the per-tuple
``lock_s`` charges and the per-lock ``acquisitions`` tallies are
batched arithmetically instead of trampolining through the
acquire/release kernel.  The gate must be *exactly* semantics
preserving — same sink counts, same lock tallies, same adaptation
decisions — and must never engage where a lock is genuinely
contendable.
"""

from __future__ import annotations

import pytest

from repro.bench import cache
from repro.des import engine as engine_mod
from repro.des.adaptation import DesAdaptationRunner
from repro.des.engine import DesEngine
from repro.graph import GraphBuilder
from repro.graph.topologies import pipeline
from repro.obs.hub import ObservabilityHub
from repro.perfmodel import laptop
from repro.runtime import QueuePlacement, RuntimeConfig


@pytest.fixture
def machine():
    return laptop(4)


def _locked_chain():
    """src -> work -> snk where the sink guards a counter with a lock
    (the paper's contention source)."""
    b = GraphBuilder("locked-chain", payload_bytes=128)
    src = b.add_source("src", cost_flops=50.0)
    work = b.add_operator("work", cost_flops=2000.0)
    snk = b.add_sink("snk", cost_flops=100.0)  # uses_lock defaults on
    b.chain(src, work, snk)
    return b.build()


def _measure(graph, placement, threads, locked_fast, machine):
    engine = DesEngine(
        graph,
        machine,
        placement,
        threads,
        locked_fast=locked_fast,
    )
    result = engine.run(warmup_s=0.001, measure_s=0.01)
    acquisitions = {
        idx: lk.acquisitions
        for idx, lk in sorted(engine._op_locks.items())
    }
    return result, acquisitions


def _assert_equivalent(fast, fast_acq, slow, slow_acq, rel=5e-3):
    """Aggregate equivalence: per-tuple costs are batched *exactly*,
    but vectorizing changes event granularity — a burst completes as
    one event — so counts drift by the same few percent the batched
    channels are allowed (who waits on whom at burst boundaries), and
    by well under a burst in single-thread runs.  Decision identity,
    the pinned regression surface, is asserted separately below."""
    assert fast.sink_tuples == pytest.approx(slow.sink_tuples, rel=rel)
    assert fast.sink_tuples_per_s == pytest.approx(
        slow.sink_tuples_per_s, rel=rel
    )
    assert fast.source_tuples_per_s == pytest.approx(
        slow.source_tuples_per_s, rel=rel
    )
    assert fast_acq.keys() == slow_acq.keys()
    for idx in fast_acq:
        assert fast_acq[idx] == pytest.approx(slow_acq[idx], rel=rel)
    # Locks were actually exercised, or this test pins nothing.
    assert sum(fast_acq.values()) > 0


class TestEngineEquivalence:
    def test_uncontendable_region_matches_slow_path(self, machine):
        # One thread total: every lock is uncontendable, the whole
        # locked region takes the vectorized path.
        graph = _locked_chain()
        fast, fast_acq = _measure(
            graph, QueuePlacement.empty(), 0, True, machine
        )
        slow, slow_acq = _measure(
            graph, QueuePlacement.empty(), 0, False, machine
        )
        _assert_equivalent(fast, fast_acq, slow, slow_acq)

    def test_queue_serialized_region_still_vectorizes(self, machine):
        # A queue port serializes its region, so a lock behind a queue
        # stays uncontendable (threads_reaching counts *regions*, not
        # scheduler threads) and the fast path may engage there too.
        graph = _locked_chain()
        placement = QueuePlacement.of([graph.by_name("work").index])
        fast, fast_acq = _measure(graph, placement, 2, True, machine)
        slow, slow_acq = _measure(graph, placement, 2, False, machine)
        _assert_equivalent(fast, fast_acq, slow, slow_acq, rel=0.05)

    def test_contended_fanin_keeps_kernel_path(self, machine):
        # Two source regions both execute the shared locked sink
        # inline: the lock genuinely contends, the fast path must stay
        # out of the way — byte-identical with the flag off.
        b = GraphBuilder("locked-fanin", payload_bytes=128)
        snk = b.add_sink("snk", cost_flops=100.0)
        for i in range(2):
            src = b.add_source(f"src{i}", cost_flops=50.0)
            op = b.add_operator(f"op{i}", cost_flops=2000.0)
            b.chain(src, op, snk)
        graph = b.build()
        engine = DesEngine(
            graph, machine, QueuePlacement.empty(), 0, locked_fast=True
        )
        snk_idx = graph.by_name("snk").index
        assert engine.decomposition.threads_reaching(snk_idx) == 2
        fast, fast_acq = _measure(
            graph, QueuePlacement.empty(), 0, True, machine
        )
        slow, slow_acq = _measure(
            graph, QueuePlacement.empty(), 0, False, machine
        )
        assert fast.sink_tuples == slow.sink_tuples
        assert fast.queue_occupancy == slow.queue_occupancy
        assert fast.thread_busy_fraction == slow.thread_busy_fraction
        assert fast_acq == slow_acq
        assert sum(fast_acq.values()) > 0

    def test_module_flag_is_constructor_default(self, machine):
        graph = _locked_chain()
        engine = DesEngine(graph, machine, QueuePlacement.empty(), 0)
        assert engine.locked_fast is engine_mod.LOCKED_FAST
        off = DesEngine(
            graph, machine, QueuePlacement.empty(), 0, locked_fast=False
        )
        assert off.locked_fast is False


class TestAdaptationEquivalence:
    def test_decisions_identical_with_flag_off(self, monkeypatch, machine):
        """The full R1-R5 loop over a locked pipeline must not notice
        the flag: same rule sequence, same converged configuration.
        (Raw observed throughputs drift within the granularity band,
        so they are deliberately not part of this signature.)"""

        def run(flag):
            monkeypatch.setattr(engine_mod, "LOCKED_FAST", flag)
            cache.clear()
            hub = ObservabilityHub()
            runner = DesAdaptationRunner(
                pipeline(6, cost_flops=3000.0, payload_bytes=128),
                machine,
                RuntimeConfig(cores=4, seed=5),
                warmup_s=0.001,
                measure_s=0.004,
                obs=hub,
            )
            result = runner.run(
                max_periods=14, stop_after_stable_periods=None
            )
            return (
                tuple(
                    (d.rule, d.set_threads, d.set_n_queues)
                    for d in hub.decisions()
                ),
                result.final_threads,
                result.final_n_queues,
            )

        assert run(True) == run(False)
