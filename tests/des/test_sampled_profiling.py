"""Sampled-accounting profiling: fast-path profiles match fine-grained.

The engine's coalesced fast path publishes merged time advances as
interval cycles (:meth:`ThreadRegistry.set_interval`); the profiler
resolves snapshots positionally inside them.  These tests pin the two
properties the design stands on:

- **statistical equivalence** — the profile gathered on the fast path
  bins operators into the same :class:`ProfilingGroup`s as fine-grained
  per-operator publication, across the paper's graph architectures;
- **non-intrusiveness** — attaching the sampled profiler changes
  *nothing* about what the simulation measures (identical sink
  throughput to an unprofiled run), which is what makes continuous
  profiling of measurement runs sound.

Cost layout: test graphs put operators in two tiers of *rate-weighted*
cost (the quantity snapshot counts estimate) separated by ~30x, well
clear of the logarithmic bin boundaries, so membership is stable
against sampling noise between two independently-scheduled runs.
"""

from __future__ import annotations

import pytest

from repro.core.binning import build_groups
from repro.des.engine import DesEngine
from repro.graph.builder import GraphBuilder
from repro.graph.topologies import bushy, data_parallel, pipeline
from repro.obs.hub import ObservabilityHub
from repro.perfmodel.machine import laptop
from repro.runtime.queues import QueuePlacement

WARMUP_S = 0.001
MEASURE_S = 0.006
PERIOD_S = MEASURE_S / 400.0

HEAVY_W = 9000.0
LIGHT_W = 300.0


def _two_tier(graph, heavy_names):
    """Set costs so rate-weighted cost is HEAVY_W or LIGHT_W per op."""
    rates = graph.arrival_rates()
    costs = {}
    for op in graph:
        if op.is_source:
            continue
        target = HEAVY_W if op.name in heavy_names else LIGHT_W
        costs[op.index] = target / rates[op.index]
    return graph.replace_costs(costs)


def _lockfree_pipeline():
    """8-stage pipeline whose sink takes no lock: with no queues the
    whole graph is one coalesced fast region — the pure fast path."""
    b = GraphBuilder("sampled-pipe", payload_bytes=128)
    prev = b.add_source("src", cost_flops=10.0)
    for i in range(8):
        op = b.add_operator(f"op{i}", cost_flops=300.0)
        b.connect(prev, op)
        prev = op
    snk = b.add_sink("snk", cost_flops=300.0, uses_lock=False)
    b.connect(prev, snk)
    return _two_tier(b.build(), {"op0", "op2", "op6"})


def _tiered_data_parallel():
    graph = data_parallel(6, cost_flops=400.0, payload_bytes=128)
    return _two_tier(graph, {"worker0", "worker3"})


def _tiered_bushy():
    graph = bushy(levels=3, cost_flops=500.0, payload_bytes=128)
    return _two_tier(graph, {"split_l0_0"})


def _profile(graph, placement, threads, sampled):
    engine = DesEngine(
        graph, laptop(4), placement, threads, queue_capacity=16
    )
    profiler = engine.attach_profiler(period_s=PERIOD_S, sampled=sampled)
    engine.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
    return profiler.profile(len(graph))


def _memberships(graph, profile):
    return [g.members for g in build_groups(graph, profile)]


class TestStatisticalEquivalence:
    """Fine vs sampled profiles produce the same profiling groups."""

    @pytest.mark.parametrize(
        "graph_fn,placement_fn,threads",
        [
            # No queues, lock-free sink: source threads execute whole
            # coalesced regions — the pure fast path the sampled
            # accounting exists for.
            (_lockfree_pipeline, lambda g: QueuePlacement.empty(), 0),
            # Partial placement: multi-operator regions behind queues,
            # claimed in batches by scheduler threads.
            (_lockfree_pipeline, lambda g: QueuePlacement.of([3, 6]), 2),
            # Full placement: every region single-operator.
            (_lockfree_pipeline, QueuePlacement.full, 4),
            # Fan-out/fan-in with a sink lock: non-fast regions mix
            # fine-grained publication with sampled intervals.
            (_tiered_data_parallel, lambda g: QueuePlacement.empty(), 0),
            (_tiered_bushy, QueuePlacement.full, 3),
        ],
    )
    def test_same_profiling_groups(self, graph_fn, placement_fn, threads):
        graph = graph_fn()
        placement = placement_fn(graph)
        fine = _profile(graph, placement, threads, sampled=False)
        samp = _profile(graph, placement, threads, sampled=True)
        assert _memberships(graph, samp) == _memberships(graph, fine)

    def test_heavy_operators_dominate_sampled_counts(self):
        graph = _lockfree_pipeline()
        profile = _profile(graph, QueuePlacement.empty(), 0, sampled=True)
        counts = profile.as_dict()
        heavy = [
            op.index for op in graph if op.name in ("op0", "op2", "op6")
        ]
        light = [
            op.index
            for op in graph
            if not op.is_source and op.index not in heavy
        ]
        # 30x weight separation: every heavy op is caught far more
        # often than any light one.
        assert min(counts[i] for i in heavy) > 5 * max(
            counts[i] for i in light
        )

    def test_pure_fast_path_resolves_through_intervals(self):
        """With a lock-free single region, *every* non-idle attribution
        comes from interval resolution — the fast path never fell back
        to fine-grained publication."""
        graph = _lockfree_pipeline()
        engine = DesEngine(graph, laptop(4), QueuePlacement.empty(), 0)
        profiler = engine.attach_profiler(period_s=PERIOD_S, sampled=True)
        engine.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
        attributed = sum(
            c for _i, c in profiler.profile(len(graph)).counts
        )
        assert attributed > 0
        assert engine.registry.interval_attributions >= attributed


class TestNonIntrusiveness:
    """Sampled profiling must not change what the DES measures."""

    @pytest.mark.parametrize(
        "placement_fn,threads",
        [
            (lambda g: QueuePlacement.empty(), 0),
            (lambda g: QueuePlacement.of([2, 5]), 2),
            (QueuePlacement.full, 4),
        ],
    )
    def test_throughput_identical_to_unprofiled(self, placement_fn, threads):
        graph = _lockfree_pipeline()
        placement = placement_fn(graph)
        plain = DesEngine(graph, laptop(4), placement, threads)
        bare = plain.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)

        profiled = DesEngine(graph, laptop(4), placement, threads)
        profiled.attach_profiler(period_s=PERIOD_S, sampled=True)
        prof = profiled.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)

        assert prof.sink_tuples_per_s == bare.sink_tuples_per_s
        assert prof.sink_tuples == bare.sink_tuples

    def test_fine_grained_profiling_is_intrusive(self):
        """The counterpart: fine-grained advancement multiplies the
        kernel event count, which is exactly why it cannot ride inside
        measurement runs (and why sampled accounting exists)."""
        graph = _lockfree_pipeline()
        plain = DesEngine(graph, laptop(4), QueuePlacement.empty(), 0)
        plain.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
        bare_events = plain.sim.events_processed

        fine = DesEngine(graph, laptop(4), QueuePlacement.empty(), 0)
        fine.attach_profiler(period_s=PERIOD_S, sampled=False)
        fine.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
        assert fine.sim.events_processed > 2 * bare_events


class TestAttachProfiler:
    def test_reattach_same_params_returns_same_profiler(self):
        graph = pipeline(4)
        engine = DesEngine(graph, laptop(2), QueuePlacement.empty(), 0)
        p1 = engine.attach_profiler(period_s=1e-4, sampled=True)
        p2 = engine.attach_profiler(period_s=1e-4, sampled=True)
        assert p1 is p2

    def test_period_mismatch_raises(self):
        graph = pipeline(4)
        engine = DesEngine(graph, laptop(2), QueuePlacement.empty(), 0)
        engine.attach_profiler(period_s=1e-4)
        with pytest.raises(ValueError, match="period_s"):
            engine.attach_profiler(period_s=2e-4)

    def test_sampled_mismatch_raises(self):
        graph = pipeline(4)
        engine = DesEngine(graph, laptop(2), QueuePlacement.empty(), 0)
        engine.attach_profiler(period_s=1e-4, sampled=True)
        with pytest.raises(ValueError, match="sampled"):
            engine.attach_profiler(period_s=1e-4, sampled=False)

    def test_attach_after_start_raises(self):
        graph = pipeline(4)
        engine = DesEngine(graph, laptop(2), QueuePlacement.empty(), 0)
        engine.start()
        with pytest.raises(RuntimeError):
            engine.attach_profiler()


class TestObservability:
    def test_sampled_intervals_metric_counts_attributions(self):
        hub = ObservabilityHub()
        graph = _lockfree_pipeline()
        engine = DesEngine(
            graph, laptop(4), QueuePlacement.empty(), 0, obs=hub
        )
        engine.attach_profiler(period_s=PERIOD_S, sampled=True)
        engine.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
        metric = hub.registry.counter("profiler.sampled_intervals")
        assert metric.value > 0
        assert metric.value == engine.registry.interval_attributions

    def test_fine_grained_resolves_no_intervals(self):
        hub = ObservabilityHub()
        graph = _lockfree_pipeline()
        engine = DesEngine(
            graph, laptop(4), QueuePlacement.empty(), 0, obs=hub
        )
        engine.attach_profiler(period_s=PERIOD_S, sampled=False)
        engine.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
        assert hub.registry.counter("profiler.sampled_intervals").value == 0
