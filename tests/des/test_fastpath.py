"""Fast-path kernel semantics: parking, sync helpers, deadlock guard.

Covers the event-driven rewrite of the DES kernel and engine:

- bare-float timeout yields (the allocation-free hot path),
- FIFO lock fairness under the trampoline dispatch,
- ``ParkUntilNonEmpty`` wake ordering (one parked task per put, FIFO),
- the synchronous helpers (``put_nowait``/``acquire_nowait``/
  ``release_nowait``),
- idle scheduler threads generating no polling events while queues are
  empty (via the ``des.idle_scans``/``des.wakeups`` metrics),
- the deadlock guard: a wedged run is *reported*, not measured as
  near-zero throughput,
- run-to-run determinism of ``DesResult``.
"""

from __future__ import annotations

import pytest

from repro.des import (
    Acquire,
    Get,
    ParkUntilNonEmpty,
    Release,
    SimLock,
    SimQueue,
    Simulator,
    measure_throughput,
)
from repro.des.engine import DesEngine
from repro.graph.builder import GraphBuilder
from repro.graph.topologies import pipeline
from repro.obs.hub import ObservabilityHub
from repro.perfmodel.machine import laptop
from repro.runtime.queues import QueuePlacement


def _metric(hub: ObservabilityHub, name: str) -> float:
    return hub.registry.snapshot()[name]["value"]


# ----------------------------------------------------------------------
# bare-float timeouts
# ----------------------------------------------------------------------
class TestBareFloatTimeouts:
    def test_float_yield_advances_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield 0.5
            log.append(sim.now)
            yield 1  # bare int works too
            log.append(sim.now)

        sim.spawn(proc())
        sim.run_until(10.0)
        assert log == [0.5, 1.5]

    def test_negative_float_rejected(self):
        sim = Simulator()

        def proc():
            yield -0.1

        sim.spawn(proc())
        with pytest.raises(ValueError):
            sim.run_until(1.0)


# ----------------------------------------------------------------------
# lock fairness under trampoline dispatch
# ----------------------------------------------------------------------
class TestLockFairness:
    def test_fifo_handoff_in_arrival_order(self):
        sim = Simulator()
        lock = SimLock()
        order = []

        def contender(name):
            yield Acquire(lock)
            order.append(name)
            yield 1.0
            yield Release(lock)

        for name in ("a", "b", "c", "d"):
            sim.spawn(contender(name), name=name)
        sim.run_until(10.0)
        assert order == ["a", "b", "c", "d"]

    def test_sync_release_hands_to_fifo_waiter(self):
        sim = Simulator()
        lock = SimLock()
        order = []

        def holder():
            assert sim.acquire_nowait(lock)
            order.append("holder")
            yield 1.0
            sim.release_nowait(lock)

        def waiter(name):
            yield Acquire(lock)
            order.append(name)
            yield Release(lock)

        sim.spawn(holder(), name="holder")
        sim.spawn(waiter("w1"), name="w1")
        sim.spawn(waiter("w2"), name="w2")
        sim.run_until(10.0)
        assert order == ["holder", "w1", "w2"]

    def test_release_nowait_requires_ownership(self):
        sim = Simulator()
        lock = SimLock()

        def holder():
            yield Acquire(lock)
            yield 5.0

        def thief():
            yield 1.0
            sim.release_nowait(lock)

        sim.spawn(holder(), name="holder")
        sim.spawn(thief(), name="thief")
        with pytest.raises(RuntimeError, match="does not hold"):
            sim.run_until(10.0)


# ----------------------------------------------------------------------
# parking
# ----------------------------------------------------------------------
class TestParking:
    def test_put_wakes_parked_in_fifo_order(self):
        sim = Simulator()
        q = SimQueue(capacity=8)
        woken = []

        def parker(name):
            yield ParkUntilNonEmpty((q,))
            woken.append(name)
            sim.pop_nowait(q)

        def producer():
            yield 1.0
            assert sim.put_nowait(q, "x")
            yield 1.0
            assert sim.put_nowait(q, "y")

        sim.spawn(parker("p1"), name="p1")
        sim.spawn(parker("p2"), name="p2")
        sim.spawn(parker("p3"), name="p3")
        sim.spawn(producer(), name="producer")
        sim.run_until(1.5)
        # One task per enqueued item, longest-parked first.
        assert woken == ["p1"]
        sim.run_until(10.0)
        assert woken == ["p1", "p2"]
        assert len(q.parked) == 1  # p3 still parked

    def test_park_on_nonempty_queue_resumes_immediately(self):
        sim = Simulator()
        q = SimQueue()
        q.items.append("x")
        log = []

        def parker():
            yield ParkUntilNonEmpty((q,))
            log.append(sim.now)

        sim.spawn(parker())
        sim.run_until(5.0)
        assert log == [0.0]

    def test_wake_removes_task_from_all_park_sets(self):
        sim = Simulator()
        q1, q2 = SimQueue(), SimQueue()

        def parker():
            yield ParkUntilNonEmpty((q1, q2))

        def producer():
            yield 1.0
            sim.put_nowait(q2, "x")

        sim.spawn(parker(), name="parker")
        sim.spawn(producer(), name="producer")
        sim.run_until(10.0)
        assert not q1.parked and not q2.parked

    def test_put_nowait_hands_off_to_blocked_getter(self):
        sim = Simulator()
        q = SimQueue()
        got = []

        def getter():
            item = yield Get(q)
            got.append((item, sim.now))

        def producer():
            yield 2.0
            assert sim.put_nowait(q, "direct")

        sim.spawn(getter(), name="getter")
        sim.spawn(producer(), name="producer")
        sim.run_until(10.0)
        assert got == [("direct", 2.0)]
        assert not q.items  # handed off, never queued

    def test_put_nowait_reports_full(self):
        sim = Simulator()
        q = SimQueue(capacity=1)

        def proc():
            assert sim.put_nowait(q, 1)
            assert not sim.put_nowait(q, 2)
            yield 0.0

        sim.spawn(proc())
        sim.run_until(1.0)
        assert list(q.items) == [1]


# ----------------------------------------------------------------------
# no polling while idle (engine-level, via metrics)
# ----------------------------------------------------------------------
class TestIdleParking:
    def _paced_graph(self, rate: float):
        b = GraphBuilder("paced", payload_bytes=64)
        src = b.add_source("src", cost_flops=100.0, max_rate=rate)
        op = b.add_operator("op0", cost_flops=100.0)
        snk = b.add_sink("snk", cost_flops=10.0)
        b.connect(src, op)
        b.connect(op, snk)
        return b.build()

    def test_idle_threads_do_not_poll_empty_queues(self):
        # A source paced to 2k tuples/s leaves the queues empty almost
        # the whole window.  The old 2 µs busy-poll would log on the
        # order of 10^5 idle scans over 50 ms of mostly-idle simulated
        # time; parked threads instead cost O(1) events per idle
        # episode, bounded by the number of pushes that end one.
        hub = ObservabilityHub()
        graph = self._paced_graph(rate=2000.0)
        engine = DesEngine(
            graph,
            laptop(cores=4),
            QueuePlacement.full(graph),
            scheduler_threads=4,
            obs=hub,
        )
        engine.run(warmup_s=0.0, measure_s=0.05)

        pushes = _metric(hub, "des.queue_pushes")
        idle_scans = _metric(hub, "des.idle_scans")
        wakeups = _metric(hub, "des.wakeups")
        parked = _metric(hub, "des.parked_threads")
        assert pushes > 0
        # Each wakeup ends one park episode, and an episode begins
        # with at most one failed scan: both are bounded by queue
        # activity, not by idle *time*.
        assert wakeups <= pushes + 4
        assert idle_scans <= 2 * pushes + 8
        assert idle_scans < 10_000  # the busy-poll bound would be ~1e5
        assert 0 <= parked <= 4

    def test_deadlocked_false_on_healthy_run(self):
        graph = self._paced_graph(rate=2000.0)
        result = measure_throughput(
            graph, laptop(cores=4), QueuePlacement.full(graph), 4,
            warmup_s=0.0, measure_s=0.01,
        )
        assert not result.deadlocked
        assert result.sink_tuples_per_s > 0


# ----------------------------------------------------------------------
# deadlock guard
# ----------------------------------------------------------------------
class TestDeadlockGuard:
    def test_kernel_detects_abba_deadlock(self):
        sim = Simulator()
        a, b = SimLock("a"), SimLock("b")

        def one():
            yield Acquire(a)
            yield 1.0
            yield Acquire(b)

        def two():
            yield Acquire(b)
            yield 1.0
            yield Acquire(a)

        sim.spawn(one(), name="one")
        sim.spawn(two(), name="two")
        sim.run_until(10.0)
        assert sim.deadlocked
        assert set(sim.deadlock_tasks) == {"one", "two"}
        assert sim.now == 10.0  # clock still reaches the horizon

    def test_kernel_not_deadlocked_when_all_tasks_finish(self):
        sim = Simulator()

        def proc():
            yield 1.0

        sim.spawn(proc())
        sim.run_until(10.0)
        assert not sim.deadlocked
        assert sim.deadlock_tasks == ()

    def test_wedged_engine_is_reported_not_measured(self, monkeypatch):
        # Sources that block forever on a queue nobody fills: every
        # scheduler thread parks, the heap drains, and the run must
        # say so instead of reporting ~0 throughput.
        def blocked_source(self, region):
            dead = SimQueue(capacity=1, name="never-filled")
            yield Get(dead)

        monkeypatch.setattr(DesEngine, "_source_thread", blocked_source)
        graph = pipeline(3, cost_flops=100.0, payload_bytes=64)
        engine = DesEngine(
            graph, laptop(cores=4), QueuePlacement.full(graph), 4
        )
        result = engine.run(warmup_s=0.001, measure_s=0.01)
        assert result.deadlocked
        assert engine.sim.deadlock_tasks  # names the stuck processes
        assert result.sink_tuples_per_s == 0.0

    def test_measure_throughput_warns_on_wedge(self, monkeypatch):
        def blocked_source(self, region):
            dead = SimQueue(capacity=1, name="never-filled")
            yield Get(dead)

        monkeypatch.setattr(DesEngine, "_source_thread", blocked_source)
        graph = pipeline(3, cost_flops=100.0, payload_bytes=64)
        with pytest.warns(RuntimeWarning, match="wedged"):
            result = measure_throughput(
                graph, laptop(cores=4), QueuePlacement.full(graph), 4
            )
        assert result.deadlocked


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def _run(self):
        graph = pipeline(4, cost_flops=500.0, payload_bytes=128)
        engine = DesEngine(
            graph,
            laptop(cores=4),
            QueuePlacement.full(graph),
            scheduler_threads=4,
        )
        result = engine.run(warmup_s=0.001, measure_s=0.005)
        return result, engine.sim.events_processed

    def test_identical_configs_produce_identical_results(self):
        first, events_first = self._run()
        second, events_second = self._run()
        assert first == second
        assert events_first == events_second
