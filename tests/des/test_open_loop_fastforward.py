"""Steady open-loop runs ride the analytic fast-forwarder.

PR-7's fast-forwarder only engaged for saturated (closed-loop) runs;
with ``ArrivalStream.skip_to`` the same extrapolation covers steady
open-loop arrivals: probe, verify the rate is steady, jump the window,
and re-anchor every arrival stream at the landing time.  Modulated or
non-skippable schedules must keep event-by-event fidelity.
"""

from __future__ import annotations

import math

import pytest

from repro.des.channels import ChannelConfig
from repro.des.engine import DesEngine
from repro.graph.topologies import pipeline
from repro.perfmodel.machine import laptop
from repro.runtime.queues import QueuePlacement
from repro.scenarios.arrivals import ArrivalProcess
from repro.scenarios.schema import (
    ArrivalKind,
    ArrivalSpec,
    ModulationKind,
    ModulationSpec,
)

FF = ChannelConfig(fastforward=True)


def _graph():
    return pipeline(4, cost_flops=1000.0, payload_bytes=128)


def _process(
    rate, *, seed=0, kind=ArrivalKind.DETERMINISTIC, modulation=None
):
    return ArrivalProcess(
        ArrivalSpec(
            kind=kind,
            rate=rate,
            modulation=modulation or ModulationSpec(),
        ),
        seed=seed,
    )


ONOFF = ModulationSpec(
    kind=ModulationKind.ONOFF, on_s=0.002, off_s=0.002
)


def _run(graph, arrivals, channel=None, measure_s=0.2):
    src = graph.sources[0].index
    engine = DesEngine(
        graph,
        laptop(4),
        QueuePlacement.of([1]),
        2,
        arrivals={src: arrivals},
        channel=channel,
    )
    result = engine.run(warmup_s=0.002, measure_s=measure_s)
    return engine, result


class TestSteadyOpenLoopFastForward:
    def test_fastforward_engages_and_matches_plain_run(self):
        graph = _graph()
        proc = _process(100_000.0)
        ff_engine, ff = _run(graph, proc.arrival_stream(0.0), channel=FF)
        assert ff_engine.sim.events_fastforwarded > 0
        _plain_engine, plain = _run(graph, proc.arrival_stream(0.0))
        assert ff.sink_tuples_per_s == pytest.approx(
            plain.sink_tuples_per_s, rel=0.05
        )
        assert ff.offered_tuples_per_s == pytest.approx(
            plain.offered_tuples_per_s, rel=0.05
        )
        assert ff.offered_utilization == pytest.approx(
            plain.offered_utilization, abs=0.05
        )

    def test_fastforward_saves_most_events(self):
        graph = _graph()
        proc = _process(100_000.0)
        engine, _result = _run(
            graph, proc.arrival_stream(0.0), channel=FF
        )
        saved = engine.sim.events_fastforwarded
        processed = engine.sim.events_processed
        assert saved > 4 * processed

    def test_modulated_schedule_stays_event_by_event(self):
        graph = _graph()
        proc = _process(100_000.0, modulation=ONOFF)
        engine, _result = _run(
            graph, proc.arrival_stream(0.0), channel=FF, measure_s=0.05
        )
        assert engine.sim.events_fastforwarded == 0

    def test_plain_iterator_stays_event_by_event(self):
        """A bare generator has no skip_to: FF must not engage."""
        graph = _graph()
        proc = _process(100_000.0)
        engine, _result = _run(
            graph, proc.stream(0.0), channel=FF, measure_s=0.05
        )
        assert engine.sim.events_fastforwarded == 0


class TestArrivalStreamSkipTo:
    def test_steady_stream_reanchors_on_grid(self):
        proc = _process(1_000.0)
        s = proc.arrival_stream(0.0)
        for _ in range(3):
            next(s)
        s.skip_to(0.5)
        t = next(s)
        assert t >= 0.5 - 1e-12
        # Landed on the arrival grid: an integer multiple of 1/rate.
        k = t * 1_000.0
        assert abs(k - round(k)) < 1e-6

    def test_skip_to_is_monotone(self):
        proc = _process(1_000.0)
        s = proc.arrival_stream(0.0)
        s.skip_to(0.25)
        first = next(s)
        s.skip_to(0.1)  # earlier target: no rewind
        assert next(s) > first

    def test_skip_exact_grid_point_not_overshot(self):
        """skip_to(k/rate) must not skip past the k-th arrival."""
        proc = _process(1_000.0)
        s = proc.arrival_stream(0.0)
        s.skip_to(7 / 1_000.0)
        assert next(s) == pytest.approx(0.007, abs=1e-9)

    def test_modulated_stream_is_not_steady(self):
        proc = _process(1_000.0, modulation=ONOFF)
        s = proc.arrival_stream(0.0)
        assert not s.steady

    def test_poisson_stream_drains_to_target(self):
        proc = _process(10_000.0, kind=ArrivalKind.POISSON, seed=4)
        s = proc.arrival_stream(0.0)
        s.skip_to(0.01)
        t = next(s)
        assert t >= 0.01
        assert math.isfinite(t)
