"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.des import (
    Acquire,
    Get,
    Put,
    Release,
    SimLock,
    SimQueue,
    Simulator,
    Timeout,
)


class TestTimeAdvance:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.run_until(5.0)
        assert sim.now == 5.0

    def test_timeout_sequences_process(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(("start", sim.now))
            yield Timeout(1.0)
            log.append(("mid", sim.now))
            yield Timeout(2.0)
            log.append(("end", sim.now))

        sim.spawn(proc())
        sim.run_until(10.0)
        assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_events_beyond_horizon_not_processed(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(100.0)
            log.append("late")

        sim.spawn(proc())
        sim.run_until(10.0)
        assert not log
        assert sim.pending_events == 1

    def test_equal_time_events_fifo(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield Timeout(1.0)
            log.append(tag)

        for tag in ("a", "b", "c"):
            sim.spawn(proc(tag))
        sim.run_until(2.0)
        assert log == ["a", "b", "c"]

    def test_unknown_request_raises(self):
        sim = Simulator()

        def proc():
            yield "bogus"  # type: ignore[misc]

        sim.spawn(proc())
        with pytest.raises(TypeError):
            sim.run_until(1.0)


class TestQueues:
    def test_put_get_roundtrip(self):
        sim = Simulator()
        q = SimQueue(capacity=4)
        received = []

        def producer():
            for i in range(3):
                yield Put(q, i)

        def consumer():
            for _ in range(3):
                item = yield Get(q)
                received.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run_until(1.0)
        assert received == [0, 1, 2]

    def test_capacity_blocks_producer(self):
        sim = Simulator()
        q = SimQueue(capacity=2)
        state = []

        def producer():
            for i in range(5):
                yield Put(q, i)
                state.append(i)

        sim.spawn(producer())
        sim.run_until(1.0)
        # Two enqueued, third blocked.
        assert state == [0, 1]
        assert len(q) == 2

    def test_get_blocks_until_item(self):
        sim = Simulator()
        q = SimQueue(capacity=2)
        got = []

        def consumer():
            item = yield Get(q)
            got.append((item, sim.now))

        def producer():
            yield Timeout(3.0)
            yield Put(q, "x")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run_until(10.0)
        assert got == [("x", 3.0)]

    def test_blocked_producer_resumes_after_pop(self):
        sim = Simulator()
        q = SimQueue(capacity=1)
        done = []

        def producer():
            yield Put(q, 1)
            yield Put(q, 2)
            done.append("producer")

        def consumer():
            yield Timeout(5.0)
            yield Get(q)
            yield Get(q)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run_until(10.0)
        assert done == ["producer"]
        assert q.total_got == 2

    def test_pop_nowait(self):
        sim = Simulator()
        q = SimQueue(capacity=2)

        def producer():
            yield Put(q, "a")

        sim.spawn(producer())
        sim.run_until(1.0)
        assert sim.pop_nowait(q) == "a"
        with pytest.raises(IndexError):
            sim.pop_nowait(q)

    def test_counters(self):
        sim = Simulator()
        q = SimQueue(capacity=8)

        def producer():
            for i in range(5):
                yield Put(q, i)

        sim.spawn(producer())
        sim.run_until(1.0)
        assert q.total_put == 5
        assert q.total_got == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SimQueue(capacity=0)


class TestLocks:
    def test_mutual_exclusion(self):
        sim = Simulator()
        lock = SimLock()
        sections = []

        def proc(tag):
            yield Acquire(lock)
            sections.append((tag, "in", sim.now))
            yield Timeout(1.0)
            sections.append((tag, "out", sim.now))
            yield Release(lock)

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run_until(10.0)
        # b enters only after a leaves.
        assert sections == [
            ("a", "in", 0.0),
            ("a", "out", 1.0),
            ("b", "in", 1.0),
            ("b", "out", 2.0),
        ]

    def test_fifo_order(self):
        sim = Simulator()
        lock = SimLock()
        order = []

        def proc(tag):
            yield Acquire(lock)
            order.append(tag)
            yield Timeout(0.1)
            yield Release(lock)

        for tag in ("a", "b", "c"):
            sim.spawn(proc(tag))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]
        assert lock.acquisitions == 3

    def test_release_without_hold_raises(self):
        sim = Simulator()
        lock = SimLock()

        def bad():
            yield Release(lock)

        sim.spawn(bad())
        with pytest.raises(RuntimeError, match="does not hold"):
            sim.run_until(1.0)
