"""Tests for DES thread-utilization accounting."""

from __future__ import annotations

import pytest

from repro.des import measure_throughput
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import QueuePlacement


def _even(graph, k):
    eligible = [op.index for op in graph if not op.is_source]
    step = len(eligible) / k
    return QueuePlacement.of(eligible[int(i * step)] for i in range(k))


class TestThreadUtilization:
    def test_fractions_bounded(self):
        g = pipeline(8, cost_flops=2000.0, payload_bytes=128)
        r = measure_throughput(
            g, laptop(4), _even(g, 3), 3, warmup_s=0.004, measure_s=0.02
        )
        assert r.thread_busy_fraction
        for _name, frac in r.thread_busy_fraction:
            assert 0.0 <= frac <= 1.0

    def test_saturated_scheduler_threads_are_busy(self):
        # Queues immediately after the source: nearly all work lives in
        # the 4 dynamic regions, so 3 scheduler threads saturate.
        g = pipeline(8, cost_flops=2000.0, payload_bytes=128)
        r = measure_throughput(
            g, laptop(4), _even(g, 4), 3, warmup_s=0.004, measure_s=0.02
        )
        sched = [
            frac
            for name, frac in r.thread_busy_fraction
            if name.startswith("sched:")
        ]
        assert sum(sched) / len(sched) > 0.7

    def test_bottleneck_starves_downstream_threads(self):
        """Port-protected regions: a serial upstream bottleneck keeps
        downstream scheduler threads partially idle — utilization
        reflects pipeline physics, not thread count."""
        g = pipeline(8, cost_flops=2000.0, payload_bytes=128)
        # Queues only in the tail: the fat source region throttles.
        eligible = [op.index for op in g if not op.is_source]
        placement = QueuePlacement.of(eligible[5:8])
        r = measure_throughput(
            g, laptop(4), placement, 3, warmup_s=0.004, measure_s=0.02
        )
        sched = [
            frac
            for name, frac in r.thread_busy_fraction
            if name.startswith("sched:")
        ]
        src = [
            frac
            for name, frac in r.thread_busy_fraction
            if name.startswith("src:")
        ]
        assert src[0] > max(sched)

    def test_excess_threads_are_mostly_idle(self):
        """More scheduler threads than queues: the extras starve."""
        g = pipeline(8, cost_flops=2000.0, payload_bytes=128)
        r = measure_throughput(
            g, laptop(8), _even(g, 2), 6, warmup_s=0.004, measure_s=0.02
        )
        sched = [
            frac
            for name, frac in r.thread_busy_fraction
            if name.startswith("sched:")
        ]
        # With 2 queues at most ~2 threads' worth of dynamic work
        # exists; the aggregate scheduler busy time cannot exceed it.
        assert sum(sched) < 3.0

    def test_manual_run_reports_source_thread_only(self):
        g = pipeline(4, cost_flops=1000.0)
        r = measure_throughput(
            g, laptop(4), QueuePlacement.empty(), 0,
            warmup_s=0.002, measure_s=0.01,
        )
        names = [name for name, _f in r.thread_busy_fraction]
        assert names == ["src:0"]

    def test_mean_utilization_empty_default(self):
        from repro.des.engine import DesResult

        r = DesResult(
            sink_tuples_per_s=0,
            source_tuples_per_s=0,
            measured_window_s=0,
            sink_tuples=0,
            queue_occupancy=(),
        )
        assert r.mean_utilization == 0.0
