"""Open-loop DES sources: offered-load accounting, bounded-queue
overflow, and equivalence with the saturated path when the schedule
saturates."""

from __future__ import annotations

import pytest

from repro.des.engine import DesEngine, measure_throughput
from repro.graph.topologies import pipeline
from repro.obs.hub import ObservabilityHub
from repro.perfmodel.machine import laptop
from repro.runtime.queues import QueuePlacement
from repro.scenarios.arrivals import ArrivalProcess
from repro.scenarios.schema import (
    ArrivalKind,
    ArrivalSpec,
    ModulationKind,
    ModulationSpec,
)


def _graph():
    return pipeline(4, cost_flops=1000.0, payload_bytes=128)


def _stream(rate, *, seed=0, **mod):
    modulation = ModulationSpec(**mod) if mod else ModulationSpec()
    spec = ArrivalSpec(
        kind=ArrivalKind.DETERMINISTIC, rate=rate, modulation=modulation
    )
    return ArrivalProcess(spec, seed=seed).stream(0.0)


BURST = dict(kind=ModulationKind.ONOFF, on_s=0.002, off_s=0.002)


class TestOfferedLoad:
    def test_underloaded_run_reports_offered_utilization(self):
        graph = _graph()
        src = graph.sources[0].index
        r = measure_throughput(
            graph,
            laptop(4),
            QueuePlacement.of([1]),
            2,
            warmup_s=0.002,
            measure_s=0.01,
            arrivals={src: _stream(10_000.0)},
        )
        assert r.open_loop
        assert not r.deadlocked
        assert r.offered_utilization >= 0.95
        assert r.underloaded
        # Throughput is offered-load-bound, far below capacity.
        assert r.source_tuples_per_s == pytest.approx(10_000.0, rel=0.15)

    def test_closed_loop_run_is_not_open_loop(self):
        r = measure_throughput(
            _graph(),
            laptop(4),
            QueuePlacement.of([1]),
            2,
            warmup_s=0.002,
            measure_s=0.01,
        )
        assert not r.open_loop
        assert r.offered_utilization == 1.0
        assert not r.underloaded
        assert r.offered_tuples_per_s == 0.0

    def test_saturating_schedule_matches_saturated_throughput(self):
        # With the due-backlog batched like the saturated fast path, a
        # schedule that outruns the PE reproduces its measurements.
        placement = QueuePlacement.of([1])
        graph = _graph()
        src = graph.sources[0].index
        saturated = measure_throughput(
            graph, laptop(4), placement, 2,
            warmup_s=0.002, measure_s=0.01,
        )
        open_loop = measure_throughput(
            graph, laptop(4), placement, 2,
            warmup_s=0.002, measure_s=0.01,
            arrivals={src: _stream(50_000_000.0)},
        )
        assert open_loop.sink_tuples_per_s == pytest.approx(
            saturated.sink_tuples_per_s, rel=0.01
        )


class TestOverflow:
    def test_drop_policy_sheds_at_full_queues(self):
        graph = _graph()
        src = graph.sources[0].index
        hub = ObservabilityHub()
        r = measure_throughput(
            graph,
            laptop(4),
            QueuePlacement.of([1]),
            2,
            warmup_s=0.002,
            measure_s=0.01,
            queue_capacity=4,
            arrivals={src: _stream(5_000_000.0, **BURST)},
            overflow="drop",
            obs=hub,
        )
        assert not r.deadlocked
        assert r.dropped_tuples > 0
        assert r.offered_utilization < 0.5
        # The obs counter spans warmup too, so it dominates the
        # measured-window count.
        metric = hub.registry.get("des.dropped_tuples")
        assert metric is not None
        assert metric.value >= r.dropped_tuples

    def test_block_policy_absorbs_burst_without_drops(self):
        graph = _graph()
        src = graph.sources[0].index
        r = measure_throughput(
            graph,
            laptop(4),
            QueuePlacement.of([1]),
            2,
            warmup_s=0.002,
            measure_s=0.01,
            queue_capacity=4,
            arrivals={src: _stream(5_000_000.0, **BURST)},
            overflow="block",
        )
        # Backpressure, not shedding — and no deadlock against the
        # event-driven parking path.
        assert not r.deadlocked
        assert r.dropped_tuples == 0
        assert r.sink_tuples_per_s > 0

    def test_drop_without_queues_degrades_to_inline_execution(self):
        # With no scheduler queues the source region is the whole
        # graph; there is no ingress queue to overflow, so nothing is
        # shed even under the drop policy.
        graph = _graph()
        src = graph.sources[0].index
        r = measure_throughput(
            graph,
            laptop(4),
            QueuePlacement.empty(),
            0,
            warmup_s=0.002,
            measure_s=0.01,
            arrivals={src: _stream(5_000_000.0, **BURST)},
            overflow="drop",
        )
        assert not r.deadlocked
        assert r.dropped_tuples == 0
        assert r.sink_tuples_per_s > 0


class TestValidation:
    def test_invalid_overflow_rejected(self):
        with pytest.raises(ValueError):
            DesEngine(
                _graph(),
                laptop(4),
                QueuePlacement.empty(),
                0,
                overflow="shed",
            )

    def test_non_source_arrival_key_rejected(self):
        with pytest.raises(ValueError):
            DesEngine(
                _graph(),
                laptop(4),
                QueuePlacement.empty(),
                0,
                arrivals={2: iter([0.0])},
            )
