"""Tests for the tuple-level DES engine, including cross-validation
against the analytical performance model."""

from __future__ import annotations

import pytest

from repro.des import DesEngine, measure_throughput
from repro.graph import GraphBuilder, data_parallel, pipeline
from repro.perfmodel import PerformanceModel, laptop
from repro.runtime import QueuePlacement


@pytest.fixture
def machine():
    return laptop(4)


def _even_placement(graph, k):
    eligible = [op.index for op in graph if not op.is_source]
    if k == 0:
        return QueuePlacement.empty()
    step = len(eligible) / k
    return QueuePlacement.of(eligible[int(i * step)] for i in range(k))


class TestBasicExecution:
    def test_manual_chain_produces_tuples(self, machine):
        g = pipeline(5, cost_flops=1000.0, payload_bytes=64)
        result = measure_throughput(
            g, machine, QueuePlacement.empty(), 0,
            warmup_s=0.001, measure_s=0.005,
        )
        assert result.sink_tuples_per_s > 0
        assert result.source_tuples_per_s > 0

    def test_rejects_negative_threads(self, machine):
        g = pipeline(3)
        with pytest.raises(ValueError):
            DesEngine(g, machine, QueuePlacement.empty(), -1)

    def test_double_start_rejected(self, machine):
        g = pipeline(3)
        engine = DesEngine(g, machine, QueuePlacement.empty(), 0)
        engine.start()
        with pytest.raises(RuntimeError):
            engine.start()

    def test_sink_rate_matches_source_rate_for_chain(self, machine):
        g = pipeline(5, cost_flops=1000.0)
        result = measure_throughput(
            g, machine, QueuePlacement.empty(), 0,
            warmup_s=0.001, measure_s=0.01,
        )
        assert result.sink_tuples_per_s == pytest.approx(
            result.source_tuples_per_s, rel=0.05
        )

    def test_queues_without_threads_stall_downstream(self, machine):
        g = pipeline(5, cost_flops=1000.0)
        mid = g.by_name("op2").index
        result = measure_throughput(
            g, machine, QueuePlacement.of([mid]), 0,
            warmup_s=0.001, measure_s=0.005,
        )
        # No scheduler threads: the queue fills; the producer must
        # drain it itself via the backpressure help path, so tuples
        # still flow (no deadlock) but bounded by one thread.
        assert result.sink_tuples_per_s > 0


class TestParallelism:
    def test_pipeline_parallelism_speeds_up(self, machine):
        g = pipeline(8, cost_flops=5000.0, payload_bytes=64)
        manual = measure_throughput(
            g, machine, QueuePlacement.empty(), 0,
            warmup_s=0.002, measure_s=0.01,
        )
        parallel = measure_throughput(
            g, machine, _even_placement(g, 3), 3,
            warmup_s=0.002, measure_s=0.01,
        )
        assert (
            parallel.sink_tuples_per_s > 1.5 * manual.sink_tuples_per_s
        )

    def test_more_threads_than_cores_no_gain(self, machine):
        g = pipeline(8, cost_flops=5000.0, payload_bytes=64)
        placement = _even_placement(g, 8)
        at_cores = measure_throughput(
            g, machine, placement, 3, warmup_s=0.002, measure_s=0.01
        )
        oversub = measure_throughput(
            g, machine, placement, 16, warmup_s=0.002, measure_s=0.01
        )
        assert oversub.sink_tuples_per_s <= 1.2 * at_cores.sink_tuples_per_s


class TestBackpressure:
    def test_no_deadlock_on_full_dynamic_dp(self, machine):
        """All scheduler threads pushing into a full sink queue must not
        deadlock (regression test for the help-on-full path)."""
        g = data_parallel(8, cost_flops=2000.0, payload_bytes=128)
        result = measure_throughput(
            g, machine, QueuePlacement.full(g), 4,
            warmup_s=0.002, measure_s=0.01, queue_capacity=4,
        )
        assert result.sink_tuples_per_s > 0

    def test_queue_occupancy_bounded(self, machine):
        g = pipeline(6, cost_flops=100.0)
        placement = _even_placement(g, 3)
        result = measure_throughput(
            g, machine, placement, 2,
            warmup_s=0.002, measure_s=0.01, queue_capacity=8,
        )
        assert all(occ <= 8 for _idx, occ in result.queue_occupancy)


class TestSelectivity:
    def test_selectivity_amplifies_sink_rate(self, machine):
        b = GraphBuilder("sel", payload_bytes=64)
        src = b.add_source("src", cost_flops=100.0)
        tok = b.add_operator("tok", cost_flops=500.0, selectivity=3.0)
        snk = b.add_sink("snk", cost_flops=10.0, uses_lock=False)
        b.chain(src, tok, snk)
        g = b.build()
        result = measure_throughput(
            g, machine, QueuePlacement.empty(), 0,
            warmup_s=0.001, measure_s=0.01,
        )
        assert result.sink_tuples_per_s == pytest.approx(
            3.0 * result.source_tuples_per_s, rel=0.05
        )


class TestModelCrossValidation:
    """The DES and the analytical model must agree qualitatively."""

    @pytest.mark.parametrize("k,threads", [(0, 0), (2, 2), (4, 3)])
    def test_chain_within_factor_two(self, machine, k, threads):
        g = pipeline(8, cost_flops=1000.0, payload_bytes=256)
        placement = _even_placement(g, k)
        des = measure_throughput(
            g, machine, placement, threads,
            warmup_s=0.005, measure_s=0.02,
        )
        model = PerformanceModel(g, machine).sink_throughput(
            placement, threads
        )
        ratio = des.sink_tuples_per_s / model
        assert 0.5 < ratio < 2.0

    def test_configuration_ordering_preserved(self, machine):
        """If the model says A >> B, the DES must agree on direction."""
        g = pipeline(8, cost_flops=5000.0, payload_bytes=64)
        pm = PerformanceModel(g, machine)
        a = (_even_placement(g, 3), 3)
        b = (QueuePlacement.empty(), 0)
        model_ratio = pm.sink_throughput(*a) / pm.sink_throughput(*b)
        des_a = measure_throughput(
            g, machine, a[0], a[1], warmup_s=0.002, measure_s=0.01
        )
        des_b = measure_throughput(
            g, machine, b[0], b[1], warmup_s=0.002, measure_s=0.01
        )
        des_ratio = des_a.sink_tuples_per_s / des_b.sink_tuples_per_s
        assert model_ratio > 1.5
        assert des_ratio > 1.5

    def test_sink_contention_direction(self, machine):
        """Queuing the locked sink relieves contention in both
        substrates (the Fig. 10 mechanism)."""
        g = data_parallel(6, cost_flops=3000.0, payload_bytes=64)
        workers = [
            op.index for op in g if op.name.startswith("worker")
        ]
        snk = g.by_name("snk").index
        without_sink = QueuePlacement.of(workers)
        with_sink = QueuePlacement.of(workers + [snk])
        des_without = measure_throughput(
            g, machine, without_sink, 3, warmup_s=0.005, measure_s=0.02
        )
        des_with = measure_throughput(
            g, machine, with_sink, 3, warmup_s=0.005, measure_s=0.02
        )
        # Queued sink must not be significantly slower than the
        # contended inline sink.
        assert (
            des_with.sink_tuples_per_s
            > 0.7 * des_without.sink_tuples_per_s
        )
