"""AdaptationBackend: every substrate satisfies the same protocol."""

from __future__ import annotations

import pytest

from repro.bench import cache
from repro.graph import pipeline
from repro.job.executor import JobAdaptationRunner
from repro.job.graph import build_job_graph
from repro.perfmodel import laptop
from repro.runtime import RuntimeConfig
from repro.runtime.backend import (
    AdaptationBackend,
    BackendResult,
    PerfModelAdaptationRunner,
)
from repro.des.adaptation import DesAdaptationRunner
from repro.scenarios.schema import PeSpec


@pytest.fixture
def pipe4():
    return pipeline(4, cost_flops=1000.0, payload_bytes=128)


def test_des_runner_is_a_backend(pipe4):
    runner = DesAdaptationRunner(pipe4, laptop(4), RuntimeConfig(seed=3))
    assert isinstance(runner, AdaptationBackend)


def test_job_runner_is_a_backend(pipe4):
    job = build_job_graph(
        pipe4,
        (
            PeSpec(name="a", operators=("src", "op0", "op1")),
            PeSpec(name="b", operators=("op2", "op3", "snk")),
        ),
    )
    runner = JobAdaptationRunner(job, laptop(4), RuntimeConfig(seed=3))
    assert isinstance(runner, AdaptationBackend)


def test_perfmodel_adapter_is_a_backend(pipe4):
    runner = PerfModelAdaptationRunner(
        pipe4, laptop(4), RuntimeConfig(seed=3)
    )
    assert isinstance(runner, AdaptationBackend)


@pytest.mark.parametrize("substrate", ["des", "perfmodel"])
def test_backends_return_conforming_results(pipe4, substrate):
    cache.clear()
    if substrate == "des":
        runner = DesAdaptationRunner(
            pipe4,
            laptop(4),
            RuntimeConfig(seed=3),
            warmup_s=0.001,
            measure_s=0.004,
        )
    else:
        runner = PerfModelAdaptationRunner(
            pipe4, laptop(4), RuntimeConfig(seed=3)
        )
    result = runner.run(max_periods=4, stop_after_stable_periods=None)
    assert isinstance(result, BackendResult)
    assert result.final_threads >= 1
    assert result.final_n_queues >= 0
    assert result.converged_throughput > 0
    assert len(result.trace.observations) >= 1


def test_job_result_conforms(pipe4):
    cache.clear()
    job = build_job_graph(
        pipe4,
        (
            PeSpec(name="a", operators=("src", "op0", "op1")),
            PeSpec(name="b", operators=("op2", "op3", "snk")),
        ),
    )
    runner = JobAdaptationRunner(
        job,
        laptop(4),
        RuntimeConfig(seed=3),
        warmup_s=0.001,
        measure_s=0.004,
    )
    result = runner.run(max_periods=3, stop_after_stable_periods=None)
    assert isinstance(result, BackendResult)
    assert result.converged_throughput > 0


def test_perfmodel_adapter_converts_periods_to_duration(pipe4):
    config = RuntimeConfig(seed=3)
    runner = PerfModelAdaptationRunner(
        pipe4, laptop(4), config, duration_s=50.0
    )
    period_s = config.elasticity.adaptation_period_s
    result = runner.run(max_periods=4, stop_after_stable_periods=None)
    assert (
        len(result.trace.observations)
        <= 4 * period_s / period_s + 1
    )
    # max_periods=None falls back to the constructed duration.
    fallback = PerfModelAdaptationRunner(
        pipe4, laptop(4), config, duration_s=2 * period_s
    ).run(stop_after_stable_periods=None)
    assert len(fallback.trace.observations) >= 1


def test_make_backend_dispatch(tmp_path):
    """The scenario-level factory picks the right substrate."""
    from repro.scenarios import compile_scenario, load_scenario
    from repro.scenarios.run import make_backend

    des = compile_scenario(
        load_scenario("scenarios/pipeline-smoke.yaml")
    )
    job = compile_scenario(
        load_scenario("scenarios/fig07-2pe-passthrough.yaml")
    )
    assert isinstance(make_backend(des), AdaptationBackend)
    backend = make_backend(job)
    assert isinstance(backend, JobAdaptationRunner)
    assert isinstance(backend, AdaptationBackend)


# ----------------------------------------------------------------------
# warm-start conformance: one spec, three substrates
# ----------------------------------------------------------------------
def _job(pipe4):
    return build_job_graph(
        pipe4,
        (
            PeSpec(name="a", operators=("src", "op0", "op1")),
            PeSpec(name="b", operators=("op2", "op3", "snk")),
        ),
    )


def _make(substrate, pipe4, hub=None, **kw):
    if substrate == "des":
        return DesAdaptationRunner(
            pipe4,
            laptop(4),
            RuntimeConfig(seed=3),
            warmup_s=0.001,
            measure_s=0.004,
            obs=hub,
            **kw,
        )
    if substrate == "job":
        return JobAdaptationRunner(
            _job(pipe4),
            laptop(4),
            RuntimeConfig(seed=3),
            warmup_s=0.001,
            measure_s=0.004,
            obs=hub,
            **kw,
        )
    return PerfModelAdaptationRunner(
        pipe4, laptop(4), RuntimeConfig(seed=3), obs=hub, **kw
    )


SUBSTRATES = ["des", "perfmodel", "job"]


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_every_backend_accepts_warm_start_hints(substrate, pipe4, tmp_path):
    """The same WarmStartSpec drives every substrate through the
    protocol surface, and the warm entry shows up in the decisions."""
    from repro.core.warmstart import WarmStartSpec
    from repro.obs.hub import ObservabilityHub

    cache.clear()
    hub = ObservabilityHub()
    runner = _make(substrate, pipe4, hub=hub)
    runner.set_warm_start(
        WarmStartSpec(mode="model", store_dir=str(tmp_path))
    )
    result = runner.run(max_periods=4, stop_after_stable_periods=None)
    assert len(result.trace.observations) >= 1
    warm_rules = {
        d.rule for d in hub.decisions() if d.rule.startswith("F7-WARM")
    }
    assert "F7-WARM-START" in warm_rules


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_disabled_warm_start_is_byte_identical(substrate, pipe4):
    """mode="off" (and a cleared session) must leave the decision log
    byte-identical to a runner that never heard of warm starts."""
    from repro.core.warmstart import WarmStartSpec
    from repro.obs.hub import ObservabilityHub

    def decisions(**kw):
        cache.clear()
        hub = ObservabilityHub()
        runner = _make(substrate, pipe4, hub=hub)
        spec = kw.get("spec")
        if spec is not None:
            runner.set_warm_start(spec)
        runner.run(max_periods=5, stop_after_stable_periods=None)
        return tuple(
            (d.scope, d.rule, d.set_threads, d.set_n_queues)
            for d in hub.decisions()
        )

    stock = decisions()
    assert decisions(spec=WarmStartSpec(mode="off")) == stock
    assert decisions(spec=None) == stock


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_phase_store_round_trips_through_every_backend(
    substrate, pipe4, tmp_path
):
    """history mode: a converged run populates the store and a fresh
    runner snaps back instead of re-exploring."""
    from repro.core.warmstart import WarmStartSpec
    from repro.obs.hub import ObservabilityHub

    spec = WarmStartSpec(mode="auto", store_dir=str(tmp_path))

    def run_once():
        cache.clear()
        hub = ObservabilityHub()
        runner = _make(substrate, pipe4, hub=hub)
        runner.set_warm_start(spec)
        result = runner.run(max_periods=60, stop_after_stable_periods=8)
        return result, hub

    first, _ = run_once()
    second, hub2 = run_once()
    rules2 = {d.rule for d in hub2.decisions()}
    assert "F7-WARM-SNAP" in rules2
    assert len(second.trace.observations) <= len(
        first.trace.observations
    )
