"""Job-graph partitioning: extraction, channels, validation."""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder, pipeline
from repro.graph.serialize import graph_to_dict
from repro.job.graph import JobGraphError, build_job_graph
from repro.scenarios.schema import (
    PartitionSpec,
    PartitionStrategy,
    PeSpec,
)


def two_pe_specs():
    return (
        PeSpec(name="front", operators=("src", "op0", "op1", "op2", "op3")),
        PeSpec(name="back", operators=("op4", "op5", "op6", "op7", "snk")),
    )


@pytest.fixture
def pipe8():
    return pipeline(8, cost_flops=4000.0, payload_bytes=128)


class TestExtraction:
    def test_two_pe_pipeline_split(self, pipe8):
        job = build_job_graph(pipe8, two_pe_specs())
        assert [pe.name for pe in job.pes] == ["front", "back"]
        front, back = job.pes
        assert front.egress == ("out:op3",)
        assert back.ingress == ("in:op4",)
        assert front.has_real_source and not front.has_real_sink
        assert back.has_real_sink and not back.has_real_source
        (chan,) = job.channels
        assert (chan.src_pe, chan.dst_pe) == ("front", "back")
        assert (chan.src_op, chan.dst_op) == ("op3", "op4")
        assert (chan.src_sink, chan.dst_source) == ("out:op3", "in:op4")
        assert chan.weight == pytest.approx(1.0)

    def test_extraction_is_deterministic(self, pipe8):
        a = build_job_graph(pipe8, two_pe_specs())
        b = build_job_graph(pipe8, two_pe_specs())
        for pa, pb in zip(a.pes, b.pes):
            assert graph_to_dict(pa.graph) == graph_to_dict(pb.graph)

    def test_owned_operator_costs_preserved(self, pipe8):
        job = build_job_graph(pipe8, two_pe_specs())
        back = job.pe("back")
        for name in ("op4", "op5", "op6", "op7"):
            assert (
                back.graph.by_name(name).cost_flops
                == pipe8.by_name(name).cost_flops
            )
        # Pseudo-operators are nominal-cost and lock-free.
        assert back.graph.by_name("in:op4").cost_flops == 1.0
        assert not job.pe("front").graph.by_name("out:op3").uses_lock

    def test_real_sink_weight(self, pipe8):
        job = build_job_graph(pipe8, two_pe_specs())
        # All of front's emission leaves on the channel; all of back's
        # lands in the real sink.
        assert job.pe("front").real_sink_weight() == pytest.approx(0.0)
        assert job.pe("back").real_sink_weight() == pytest.approx(1.0)

    def test_channels_into_and_out_of(self, pipe8):
        job = build_job_graph(pipe8, two_pe_specs())
        assert job.channels_into("back") == job.channels
        assert job.channels_out_of("front") == job.channels
        assert job.channels_into("front") == ()


class TestValidation:
    def test_unknown_operator(self, pipe8):
        with pytest.raises(JobGraphError, match="unknown operator"):
            build_job_graph(
                pipe8, (PeSpec(name="a", operators=("nope",)),)
            )

    def test_double_assignment(self, pipe8):
        specs = (
            PeSpec(name="a", operators=("src", "op0")),
            PeSpec(name="b", operators=("op0",)),
        )
        with pytest.raises(JobGraphError, match="assigned to both"):
            build_job_graph(pipe8, specs)

    def test_missing_coverage(self, pipe8):
        with pytest.raises(JobGraphError, match="not assigned"):
            build_job_graph(
                pipe8, (PeSpec(name="a", operators=("src",)),)
            )

    def test_pe_cycle_rejected(self):
        b = GraphBuilder("loopy", payload_bytes=64)
        src = b.add_source("src")
        x = b.add_operator("x", cost_flops=100.0)
        y = b.add_operator("y", cost_flops=100.0)
        snk = b.add_sink("snk")
        b.chain(src, x, y, snk)
        g = b.build()
        # x and snk in one PE, src and y in the other: the cut edges
        # run in both directions between the two PEs.
        specs = (
            PeSpec(name="a", operators=("src", "y")),
            PeSpec(name="b", operators=("x", "snk")),
        )
        with pytest.raises(JobGraphError, match="cycle"):
            build_job_graph(g, specs)

    def test_forward_requires_single_replica(self, pipe8):
        specs = (
            PeSpec(name="front", operators=("src", "op0", "op1", "op2", "op3")),
            PeSpec(
                name="back",
                operators=("op4", "op5", "op6", "op7", "snk"),
                replicas=2,
            ),
        )
        with pytest.raises(JobGraphError, match="single-replica"):
            build_job_graph(
                pipe8,
                specs,
                PartitionSpec(strategy=PartitionStrategy.FORWARD),
            )

    def test_elastic_pe_must_be_stateless(self, pipe8):
        # snk uses a lock (the paper's throughput counter), so a PE
        # owning it cannot replicate.
        specs = (
            PeSpec(name="front", operators=("src", "op0", "op1", "op2", "op3")),
            PeSpec(
                name="back",
                operators=("op4", "op5", "op6", "op7", "snk"),
                elastic=True,
            ),
        )
        with pytest.raises(JobGraphError, match="stateless"):
            build_job_graph(
                pipe8,
                specs,
                PartitionSpec(strategy=PartitionStrategy.SHUFFLE),
            )

    def test_elastic_under_forward_rejected(self, pipe8):
        specs = (
            PeSpec(name="front", operators=("src", "op0", "op1", "op2", "op3")),
            PeSpec(
                name="back",
                operators=("op4", "op5", "op6", "op7"),
                elastic=True,
            ),
            PeSpec(name="tail", operators=("snk",)),
        )
        with pytest.raises(JobGraphError, match="sheds"):
            build_job_graph(
                pipe8,
                specs,
                PartitionSpec(strategy=PartitionStrategy.FORWARD),
            )

    def test_empty_job_rejected(self, pipe8):
        with pytest.raises(JobGraphError, match="at least one PE"):
            build_job_graph(pipe8, ())
