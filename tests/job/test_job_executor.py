"""The lockstep multi-PE executor: elasticity, determinism, budget."""

from __future__ import annotations

import pytest

from repro.bench import cache
from repro.graph import GraphBuilder
from repro.job.executor import JobAdaptationRunner
from repro.job.graph import build_job_graph
from repro.obs.hub import ObservabilityHub
from repro.perfmodel import laptop
from repro.runtime import RuntimeConfig
from repro.scenarios.schema import (
    PartitionSpec,
    PartitionStrategy,
    PeSpec,
)


def heavy_worker_job(elastic=True, max_replicas=6, replicas=1):
    """src(50) -> work(20000) -> snk: a cheap ingest PE saturating a
    heavy worker PE, the canonical scale-out shape."""
    b = GraphBuilder("worker-job", payload_bytes=128)
    src = b.add_source("src", cost_flops=50.0)
    work = b.add_operator("work", cost_flops=20000.0)
    snk = b.add_sink("snk", cost_flops=10.0)
    b.chain(src, work, snk)
    pes = (
        PeSpec(name="ingest", operators=("src",)),
        PeSpec(
            name="worker",
            operators=("work",),
            elastic=elastic,
            max_replicas=max_replicas,
            replicas=replicas,
        ),
        PeSpec(name="sinkpe", operators=("snk",)),
    )
    return build_job_graph(
        b.build(),
        pes,
        PartitionSpec(strategy=PartitionStrategy.KEY_HASH, key_space=16),
    )


def run_job(job, periods=12, seed=11, thread_budget=None):
    cache.clear()
    hub = ObservabilityHub()
    runner = JobAdaptationRunner(
        job,
        laptop(4),
        RuntimeConfig(seed=seed),
        warmup_s=0.001,
        measure_s=0.004,
        obs=hub,
        thread_budget=thread_budget,
    )
    result = runner.run(
        max_periods=periods, stop_after_stable_periods=None
    )
    return runner, result, hub


class TestElasticScaling:
    def test_scale_out_until_keeping_up(self):
        job = heavy_worker_job()
        _runner, result, hub = run_job(job)
        assert result.final_replicas["worker"] > 1
        rules = [d.rule for d in hub.decisions() if d.scope == "job"]
        assert rules[0] == "JOB-INIT"
        assert "JOB-SCALE-OUT" in rules
        # Non-elastic PEs never scale.
        assert result.final_replicas["ingest"] == 1
        assert result.final_replicas["sinkpe"] == 1

    def test_throughput_grows_with_replicas(self):
        job = heavy_worker_job()
        _runner, result, _hub = run_job(job)
        thpts = [o.throughput for o in result.trace.observations]
        # The scaled-out job beats the single-replica first period.
        assert max(thpts[1:]) > 1.5 * thpts[0]

    def test_thread_budget_arbitration(self):
        job = heavy_worker_job()
        _runner, result, hub = run_job(job, thread_budget=3)
        rules = [d.rule for d in hub.decisions() if d.scope == "job"]
        assert "JOB-ARB" in rules
        # Every grant was refused: the worker never replicated.  (The
        # budget arbitrates job-level growth; PE-internal threading
        # stays under each PE's own coordinator.)
        assert result.final_replicas["worker"] == 1
        _runner2, unbounded, _h2 = run_job(job)
        assert (
            result.final_replicas["worker"]
            < unbounded.final_replicas["worker"]
        )

    def test_static_job_emits_no_job_decisions(self):
        job = heavy_worker_job(elastic=False, replicas=2)
        _runner, result, hub = run_job(job, periods=6)
        assert [d for d in hub.decisions() if d.scope == "job"] == []
        assert result.final_replicas["worker"] == 2


class TestDeterminism:
    def test_repeated_runs_identical(self):
        """Same seed: identical job decisions, replica plans, and
        per-PE R1-R5 traces across repeated runs."""
        job = heavy_worker_job()
        _r1, res1, hub1 = run_job(job, periods=10)
        _r2, res2, hub2 = run_job(job, periods=10)
        sig1 = [
            (d.scope, d.rule, d.set_threads, d.set_n_queues)
            for d in hub1.decisions()
        ]
        sig2 = [
            (d.scope, d.rule, d.set_threads, d.set_n_queues)
            for d in hub2.decisions()
        ]
        assert sig1 == sig2
        assert res1.final_replicas == res2.final_replicas
        assert res1.converged_throughput == pytest.approx(
            res2.converged_throughput
        )

    def test_seed_changes_pe_traces(self):
        """PE coordinators derive distinct seeds from the job seed."""
        job = heavy_worker_job()
        runner, _res, _hub = run_job(job, periods=2)
        seeds = {
            name: r.config.seed for name, r in runner.runners.items()
        }
        assert len(set(seeds.values())) == len(seeds)


class TestObservability:
    def test_per_pe_scoped_decisions(self):
        job = heavy_worker_job()
        _runner, _res, hub = run_job(job, periods=6)
        scopes = {d.scope for d in hub.decisions()}
        assert {"pe.ingest", "pe.worker", "pe.sinkpe", "job"} <= scopes

    def test_job_trace_mode(self):
        job = heavy_worker_job()
        _runner, result, _hub = run_job(job, periods=4)
        assert all(
            o.mode == "job" for o in result.trace.observations
        )
        assert len(result.trace.observations) == 4
