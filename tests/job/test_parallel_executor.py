"""Parallel multi-PE execution is byte-identical to sequential.

The job executor's ``jobs > 1`` path fans PEs across a sticky
:class:`~repro.runtime.pool.WorkerPool` and re-homes every
worker-side effect — decisions, scoped metrics, memo cells — into the
parent in deterministic PE order.  The guarantee is *byte identity*,
not statistical agreement: on every multi-PE zoo scenario the merged
decision log (including hub-assigned seq numbers and scopes), the
metric snapshot, the memo-cache key set and the throughput trace must
match a sequential run exactly.  Anything weaker would make ``--jobs``
a semantics switch instead of a performance switch.
"""

from __future__ import annotations

import pytest

from repro.bench import cache
from repro.obs.hub import ObservabilityHub
from repro.runtime.pool import WorkerPoolError
from repro.scenarios.compile import compile_scenario
from repro.scenarios.run import make_backend
from repro.scenarios.zoo import load_named

ZOO_MULTI_PE = (
    "fig07-2pe-passthrough",
    "multi-pe-keyhash-scale",
    "multi-pe-sink-contention",
)


def _run(name, jobs, warm=False):
    """One full zoo run at the given pool width; cold cache unless
    ``warm`` (memoization reuse is part of the regression surface)."""
    if not warm:
        cache.clear()
    compiled = compile_scenario(load_named(name))
    hub = ObservabilityHub()
    runner = make_backend(compiled, obs=hub, jobs=jobs)
    spec = compiled.scenario.run
    result = runner.run(
        max_periods=spec.max_periods,
        stop_after_stable_periods=spec.stop_after_stable_periods,
    )
    return runner, result, hub


def _signature(result, hub):
    """Everything an observer could diff between two runs."""
    return (
        tuple(hub.decisions()),
        hub.registry.snapshot(),
        frozenset(cache._STORE),
        dict(result.final_replicas),
        result.final_threads,
        result.final_n_queues,
        [o.throughput for o in result.trace.observations],
        [o.threads for o in result.trace.observations],
    )


class TestByteIdentity:
    @pytest.mark.parametrize("name", ZOO_MULTI_PE)
    def test_parallel_matches_sequential(self, name):
        _seq, seq_result, seq_hub = _run(name, jobs=1)
        seq_sig = _signature(seq_result, seq_hub)
        par, par_result, par_hub = _run(name, jobs=2)
        # The pool actually engaged — a silent sequential fallback
        # would make this test vacuous.
        assert par._pe_results is not None
        assert _signature(par_result, par_hub) == seq_sig

    def test_parallel_run_on_warm_cache_matches(self):
        name = ZOO_MULTI_PE[0]
        _run(name, jobs=1)  # prime the memo cache
        # Warm baseline: memo hits skip simulation, which legitimately
        # shifts sim-event metrics vs a cold run, so the parallel warm
        # run is held against a *sequential warm* run.
        _seq, seq_result, seq_hub = _run(name, jobs=1, warm=True)
        seq_sig = _signature(seq_result, seq_hub)
        # Workers inherit the warm cache at fork and ship back nothing
        # new; the parent's key set must not drift either.
        before = frozenset(cache._STORE)
        par, par_result, par_hub = _run(name, jobs=2, warm=True)
        assert par._pe_results is not None
        assert _signature(par_result, par_hub) == seq_sig
        assert frozenset(cache._STORE) == before

    @pytest.mark.parametrize("name", ZOO_MULTI_PE)
    def test_per_pe_results_match(self, name):
        _seq, seq_result, _h1 = _run(name, jobs=1)
        _par, par_result, _h2 = _run(name, jobs=2)
        assert (
            seq_result.pe_results.keys() == par_result.pe_results.keys()
        )
        for pe_name, seq_pe in seq_result.pe_results.items():
            par_pe = par_result.pe_results[pe_name]
            assert par_pe.final_threads == seq_pe.final_threads
            assert par_pe.final_n_queues == seq_pe.final_n_queues
            assert par_pe.final_placement == seq_pe.final_placement
            assert [
                (o.throughput, o.threads, o.n_queues)
                for o in par_pe.trace.observations
            ] == [
                (o.throughput, o.threads, o.n_queues)
                for o in seq_pe.trace.observations
            ]


def _crash_step(state, pe_name, k, rates):
    import os

    os._exit(23)


class TestWorkerCrash:
    def test_crash_surfaces_as_worker_pool_error(self, monkeypatch):
        cache.clear()
        compiled = compile_scenario(load_named(ZOO_MULTI_PE[0]))
        runner = make_backend(compiled, obs=None, jobs=2)
        monkeypatch.setattr("repro.job.parallel._step_pe", _crash_step)
        with pytest.raises(WorkerPoolError):
            runner.run(max_periods=4, stop_after_stable_periods=None)
        # The failed session is torn down, not leaked.
        assert runner._session is None
