"""Partition-strategy routers: determinism, shares, skew."""

from __future__ import annotations

import pytest

from repro.job.partition import (
    BroadcastRouter,
    ForwardRouter,
    KeyHashRouter,
    RoundRobinRouter,
    ShuffleRouter,
    make_router,
)
from repro.scenarios.schema import PartitionStrategy

STRATEGIES = [
    PartitionStrategy.ROUND_ROBIN,
    PartitionStrategy.SHUFFLE,
    PartitionStrategy.KEY_HASH,
    PartitionStrategy.BROADCAST,
]


class TestDeterminism:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_same_seed_same_routing(self, strategy):
        a = make_router(strategy, 4, seed=99, key_space=64)
        b = make_router(strategy, 4, seed=99, key_space=64)
        assert [a.route(s) for s in range(2000)] == [
            b.route(s) for s in range(2000)
        ]
        assert a.shares() == b.shares()

    @pytest.mark.parametrize(
        "strategy",
        [PartitionStrategy.SHUFFLE, PartitionStrategy.KEY_HASH],
    )
    def test_different_seed_different_routing(self, strategy):
        a = make_router(strategy, 4, seed=1, key_space=64)
        b = make_router(strategy, 4, seed=2, key_space=64)
        assert [a.route(s) for s in range(500)] != [
            b.route(s) for s in range(500)
        ]

    def test_rebuild_is_stateless(self):
        """Routing depends only on (seed, seq) -- rebuilding a router
        mid-stream (as the executor does on scale-out) cannot shift
        earlier sequence numbers."""
        a = make_router(PartitionStrategy.KEY_HASH, 4, seed=7)
        before = [a.route(s) for s in range(100)]
        again = make_router(PartitionStrategy.KEY_HASH, 4, seed=7)
        assert [again.route(s) for s in range(100)] == before


class TestSemantics:
    def test_forward_is_identity(self):
        r = ForwardRouter(1, seed=3)
        assert r.route(0) == (0,)
        assert r.shares() == (1.0,)
        assert r.effective_replicas == 1.0

    def test_forward_rejects_replication(self):
        with pytest.raises(ValueError):
            ForwardRouter(2, seed=0)

    def test_round_robin_cycles(self):
        r = RoundRobinRouter(3, seed=0)
        assert [r.route(s)[0] for s in range(6)] == [0, 1, 2, 0, 1, 2]
        assert r.shares() == pytest.approx((1 / 3,) * 3)
        assert r.effective_replicas == pytest.approx(3.0)

    def test_broadcast_hits_every_replica(self):
        r = BroadcastRouter(3, seed=0)
        assert r.route(17) == (0, 1, 2)
        # Every replica carries the full stream (share 1.0 each), and
        # each emits it in full, so aggregate emission is R-fold.
        assert r.shares() == (1.0, 1.0, 1.0)
        assert r.effective_replicas == pytest.approx(3.0)

    def test_shuffle_is_roughly_balanced(self):
        r = ShuffleRouter(4, seed=5)
        assert sum(r.shares()) == pytest.approx(1.0)
        assert max(r.shares()) < 0.35
        assert r.effective_replicas > 3.0

    def test_key_hash_same_key_same_replica(self):
        r = KeyHashRouter(4, seed=11, key_space=32)
        for seq in range(512):
            key = r.key_of(seq)
            (dest,) = r.route(seq)
            for other in range(512, 1024):
                if r.key_of(other) == key:
                    assert r.route(other) == (dest,)

    def test_small_key_space_skews_shares(self):
        """Few keys over many replicas: the hot replica owns more
        than its fair share, capping effective parallelism below R."""
        skewed = KeyHashRouter(8, seed=11, key_space=8)
        wide = KeyHashRouter(8, seed=11, key_space=4096)
        assert max(skewed.shares()) > max(wide.shares())
        assert skewed.effective_replicas < wide.effective_replicas
        assert wide.effective_replicas <= 8.0

    def test_make_router_dispatch(self):
        assert isinstance(
            make_router(PartitionStrategy.FORWARD, 1), ForwardRouter
        )
        assert isinstance(
            make_router(PartitionStrategy.ROUND_ROBIN, 2),
            RoundRobinRouter,
        )
        assert isinstance(
            make_router(PartitionStrategy.SHUFFLE, 2), ShuffleRouter
        )
        assert isinstance(
            make_router(PartitionStrategy.KEY_HASH, 2), KeyHashRouter
        )
        assert isinstance(
            make_router(PartitionStrategy.BROADCAST, 2), BroadcastRouter
        )
