"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_machine(self):
        args = build_parser().parse_args(
            ["run", "fig09", "--machine", "power8"]
        )
        assert args.experiment == "fig09"
        assert args.machine == "power8"

    def test_elastic_defaults(self):
        args = build_parser().parse_args(["elastic"])
        assert args.operators == 100
        assert args.payload == 1024
        assert args.machine == "xeon"

    def test_trace_parses(self):
        args = build_parser().parse_args(
            ["trace", "fig06", "--format", "jsonl"]
        )
        assert args.command == "trace"
        assert args.experiment == "fig06"
        assert args.format == "jsonl"


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "fig15a" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_elastic_small_run(self, capsys):
        code = main(
            [
                "elastic",
                "--operators", "20",
                "--payload", "256",
                "--machine", "laptop",
                "--cores", "4",
                "--duration", "800",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged throughput" in out
        assert "scheduler threads" in out

    def test_sweep_small(self, capsys):
        code = main(
            [
                "sweep",
                "--operators", "20",
                "--machine", "laptop",
                "--cores", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fraction dynamic" in out

    def test_run_fig12(self, capsys):
        code = main(["run", "fig12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bushy" in out

    def test_run_fig15a(self, capsys):
        code = main(["run", "fig15a"])
        assert code == 0
        out = capsys.readouterr().out
        assert "VWAP" in out

    def test_run_fig13(self, capsys):
        code = main(["run", "fig13"])
        assert code == 0
        out = capsys.readouterr().out
        assert "threads" in out
        assert "re-settle" in out

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_jsonl_to_file(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.jsonl"
        code = main(
            [
                "trace", "fig01",
                "--cores", "8",
                "--duration", "400",
                "--format", "jsonl",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in out_file.read_text().splitlines()
        ]
        kinds = {r["kind"] for r in records}
        assert "decision" in kinds
        assert "observation" in kinds

    def test_trace_table_to_stdout(self, capsys):
        code = main(
            ["trace", "fig01", "--cores", "8", "--duration", "400"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rule" in out
        assert "F7-INIT" in out

    def test_latency_profile(self, capsys):
        code = main(
            [
                "latency",
                "--operators", "20",
                "--machine", "laptop",
                "--cores", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency ms" in out
        assert "100% dynamic" in out


class TestScenarioCommands:
    def test_scenarios_list_prints_zoo(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "pipeline-smoke" in out
        assert "onoff-burst-overflow" in out
        assert "saturated" in out

    def test_scenarios_validate_by_name(self, capsys):
        assert main(["scenarios", "validate", "pipeline-smoke"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_scenarios_validate_reports_offending_field(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "name: bad\n"
            "workload:\n"
            "  arrivals:\n"
            "    kind: poisson\n"
            "    rate: -2.0\n"
        )
        assert main(["scenarios", "validate", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "workload.arrivals.rate" in captured.out
        assert "must be > 0" in captured.out

    def test_scenarios_list_empty_dir_fails(self, tmp_path, capsys):
        assert main(["scenarios", "list", "--dir", str(tmp_path)]) == 1
        assert "no scenario configs" in capsys.readouterr().err

    def test_bench_runs_named_scenario(self, capsys):
        code = main(
            [
                "bench",
                "--scenario", "pipeline-smoke",
                "--backend", "perfmodel",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline-smoke" in out
        assert "perfmodel" in out
        assert "converged T/s" in out

    def test_bench_unknown_scenario(self, capsys):
        assert main(["bench", "--scenario", "no-such"]) == 2
        err = capsys.readouterr().err
        assert "no-such" in err
        assert "pipeline-smoke" in err
