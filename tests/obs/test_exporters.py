"""Round-trip and rendering tests for the trace exporters."""

from __future__ import annotations

import io

from repro.obs import (
    Decision,
    MetricsRegistry,
    ObservabilityHub,
    format_log_table,
    prometheus_text,
    read_jsonl,
    record_from_dict,
    record_to_dict,
    write_csv,
    write_jsonl,
)


def _populated_hub() -> ObservabilityHub:
    hub = ObservabilityHub()
    hub.tick(5.0)
    hub.observation(
        time_s=5.0,
        throughput=1000.0,
        true_throughput=1010.0,
        threads=2,
        n_queues=3,
        mode="thread_count",
    )
    hub.decision(
        component="coordinator",
        mode="thread_count",
        rule="F7-THREAD-COUNT",
        detail="explore:2->4",
        observed=1000.0,
        trend="up",
        set_threads=4,
        note="thread count proposal",
    )
    hub.thread_change(time_s=5.0, old_threads=2, new_threads=4)
    hub.tick(10.0)
    hub.decision(
        component="coordinator",
        mode="threading_model",
        rule="R2",
        observed=1100.0,
        trend="up",
        set_n_queues=2,
    )
    hub.placement_change(time_s=10.0, old_n_queues=3, new_n_queues=2)
    return hub


class TestJsonlRoundTrip:
    def test_lossless(self):
        hub = _populated_hub()
        buf = io.StringIO()
        write_jsonl(hub.records(), buf)
        buf.seek(0)
        restored = read_jsonl(buf)
        assert tuple(restored) == hub.records()

    def test_record_dict_round_trip_every_kind(self):
        for record in _populated_hub().records():
            assert record_from_dict(record_to_dict(record)) == record


class TestCsv:
    def test_contains_decisions_only(self):
        hub = _populated_hub()
        buf = io.StringIO()
        write_csv(hub.records(), buf)
        lines = buf.getvalue().strip().splitlines()
        # header + one row per decision
        assert len(lines) == 1 + len(hub.decisions())
        assert lines[0].startswith("seq,")
        assert "F7-THREAD-COUNT" in lines[1]
        assert "R2" in lines[2]


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("loop.decisions", "d").inc(3)
        reg.gauge("loop.threads").set(4)
        reg.histogram("des.lat", bounds=(1, 10)).observe(5)
        text = prometheus_text(reg)
        assert "# TYPE repro_loop_decisions counter" in text
        assert "repro_loop_decisions 3" in text
        assert "repro_loop_threads 4" in text
        assert 'repro_des_lat_bucket{le="10"} 1' in text
        assert 'repro_des_lat_bucket{le="+Inf"} 1' in text
        assert "repro_des_lat_count 1" in text


class TestTable:
    def test_observations_hidden_by_default(self):
        hub = _populated_hub()
        table = format_log_table(hub.records())
        assert "F7-THREAD-COUNT" in table
        assert "observation" not in table
        everything = format_log_table(
            hub.records(), include_observations=True
        )
        assert "observation" in everything


class TestDecisionValidation:
    def test_unknown_rule_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Decision(
                seq=0,
                time_s=0.0,
                period=0,
                component="coordinator",
                mode="init",
                rule="R99",
                detail="",
                observed=0.0,
                trend="flat",
                history_hit=False,
                satisfaction=None,
                set_threads=None,
                set_n_queues=None,
                note="",
            )
