"""Semantics of the metrics registry primitives."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10, 100))
        for v in (0.5, 1.0, 5, 10, 99, 1000):
            h.observe(v)
        # le semantics: a value lands in the first bucket whose bound
        # is >= value; 1000 overflows into +Inf.
        assert h.counts == (2, 2, 1, 1)
        assert h.count == 6
        assert h.sum == pytest.approx(0.5 + 1 + 5 + 10 + 99 + 1000)

    def test_cumulative_counts(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10))
        for v in (0.5, 5, 500):
            h.observe(v)
        assert h.cumulative() == (
            (1.0, 1),
            (10.0, 2),
            (float("inf"), 3),
        )


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")
        with pytest.raises(ValueError):
            reg.histogram("m")

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1, 2))
        assert reg.histogram("h", bounds=(1, 2)) is reg.get("h")
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1, 2, 3))

    def test_snapshot_is_sorted_and_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2)
        reg.histogram("c").observe(3)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise


class TestNullObjects:
    def test_null_registry_hands_out_shared_singletons(self):
        assert NULL_REGISTRY.counter("anything") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("anything") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("anything") is NULL_HISTOGRAM
        assert NULL_REGISTRY.snapshot() == {}

    def test_null_updates_are_noops(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(1)
        NULL_HISTOGRAM.observe(2)


class TestStateTransfer:
    """export_state / merge_state: re-homing a pool worker's metrics."""

    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("pe.a.events", "evts").inc(41)
        reg.gauge("pe.a.threads", "thr").set(3)
        reg.histogram("pe.a.lat", bounds=(1, 10), description="lat").observe(5)
        reg.counter("loop.periods").inc(7)
        return reg

    def test_export_filters_by_prefix(self):
        reg = self._populated()
        exported = reg.export_state(prefix="pe.")
        assert set(exported) == {"pe.a.events", "pe.a.threads", "pe.a.lat"}
        assert reg.export_state().keys() >= exported.keys()

    def test_export_is_picklable(self):
        import pickle

        pickle.dumps(self._populated().export_state(prefix="pe."))

    def test_merge_recreates_metrics_with_state(self):
        src = self._populated()
        dst = MetricsRegistry()
        dst.merge_state(src.export_state(prefix="pe."))
        assert dst.get("pe.a.events").value == 41
        assert dst.get("pe.a.threads").value == 3
        hist = dst.get("pe.a.lat")
        assert hist.bounds == (1.0, 10.0)
        assert hist.count == 1 and hist.sum == 5.0
        # Unprefixed metrics were filtered out, not merged.
        assert dst.get("loop.periods") is None

    def test_merge_overwrites_single_writer_state(self):
        src = self._populated()
        dst = MetricsRegistry()
        dst.counter("pe.a.events").inc(100)
        dst.merge_state(src.export_state(prefix="pe."))
        # Overwrite, not accumulate: the worker owns the metric.
        assert dst.get("pe.a.events").value == 41

    def test_merge_can_move_a_counter_backwards(self):
        # load_state bypasses the monotonicity guard by design.
        dst = MetricsRegistry()
        dst.counter("pe.a.events").inc(100)
        src = MetricsRegistry()
        src.counter("pe.a.events").inc(5)
        dst.merge_state(src.export_state(prefix="pe."))
        assert dst.get("pe.a.events").value == 5

    def test_histogram_bucket_mismatch_raises(self):
        src = MetricsRegistry()
        src.histogram("pe.h", bounds=(1, 2, 3)).observe(2)
        exported = src.export_state()
        exported["pe.h"]["bounds"] = (1.0, 2.0)
        exported["pe.h"]["state"] = ((1, 0, 0, 0), 2.0, 1)
        dst = MetricsRegistry()
        with pytest.raises(ValueError):
            dst.merge_state(exported)
