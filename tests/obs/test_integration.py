"""End-to-end properties of an observed elastic run.

The contract under test is the one docs/OBSERVABILITY.md promises:
one coordinator Decision per adaptation period, a closed rule
vocabulary, every applied configuration change attributable to the
decision immediately preceding it — and byte-identical behaviour when
the hub is detached.
"""

from __future__ import annotations

import pytest

from repro.graph.topologies import pipeline
from repro.obs import VALID_RULES, Decision, LoggedEvent, ObservabilityHub
from repro.perfmodel.machine import laptop
from repro.runtime.config import RuntimeConfig
from repro.runtime.executor import run_elastic
from repro.runtime.pe import ProcessingElement


def _pe(seed: int = 0) -> ProcessingElement:
    graph = pipeline(20, cost_flops=100.0, payload_bytes=256)
    machine = laptop(cores=8)
    return ProcessingElement(
        graph, machine, RuntimeConfig(cores=8, seed=seed)
    )


@pytest.fixture(scope="module")
def observed_run():
    hub = ObservabilityHub()
    result = run_elastic(_pe(), duration_s=2_000.0, obs=hub)
    return hub, result


class TestDecisionPerPeriod:
    def test_exactly_one_decision_per_adaptation_period(self, observed_run):
        hub, _result = observed_run
        observations = hub.events("observation")
        decisions = hub.decisions()
        assert len(observations) > 0
        assert len(decisions) == len(observations)
        # Periods are consecutive, one decision each.
        assert [d.period for d in decisions] == list(range(len(decisions)))

    def test_every_rule_is_in_the_closed_vocabulary(self, observed_run):
        hub, _result = observed_run
        for decision in hub.decisions():
            assert decision.rule in VALID_RULES

    def test_metrics_agree_with_the_log(self, observed_run):
        hub, _result = observed_run
        reg = hub.registry
        assert reg.get("loop.decisions").value == len(hub.decisions())
        assert reg.get("loop.periods").value == len(
            hub.events("observation")
        )
        assert reg.get("loop.thread_changes").value == len(
            hub.events("thread_change")
        )


class TestCausalOrdering:
    def test_every_change_is_preceded_by_its_decision(self, observed_run):
        hub, _result = observed_run
        records = hub.records()
        for i, record in enumerate(records):
            if not isinstance(record, LoggedEvent):
                continue
            if record.kind not in ("thread_change", "placement_change"):
                continue
            preceding = [
                r for r in records[:i] if isinstance(r, Decision)
            ]
            assert preceding, f"change at seq {record.seq} has no decision"
            decision = preceding[-1]
            assert decision.time_s == record.time_s
            if record.kind == "thread_change":
                assert decision.set_threads == record.data.new_threads
            else:
                assert decision.set_n_queues == record.data.new_n_queues

    def test_sequence_numbers_are_total_order(self, observed_run):
        hub, _result = observed_run
        seqs = [r.seq for r in hub.records()]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))


class TestDetachedIdentity:
    def test_observed_and_detached_runs_are_identical(self):
        plain = run_elastic(_pe(seed=3), duration_s=1_000.0)
        observed = run_elastic(
            _pe(seed=3), duration_s=1_000.0, obs=ObservabilityHub()
        )
        assert plain.final_threads == observed.final_threads
        assert plain.final_n_queues == observed.final_n_queues
        assert (
            plain.converged_throughput == observed.converged_throughput
        )
        assert plain.trace.observations == observed.trace.observations
        assert plain.trace.thread_changes == observed.trace.thread_changes
        assert (
            plain.trace.placement_changes
            == observed.trace.placement_changes
        )
