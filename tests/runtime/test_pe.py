"""Tests for the simulated processing element."""

from __future__ import annotations

import pytest

from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import ProcessingElement, QueuePlacement, RuntimeConfig


@pytest.fixture
def pe(chain10, small_machine, fast_config):
    return ProcessingElement(chain10, small_machine, fast_config)


class TestConfiguration:
    def test_initial_state_is_manual(self, pe):
        assert pe.n_queues == 0
        assert pe.scheduler_threads == 1  # initial_threads default

    def test_set_placement_validates(self, pe, chain10):
        src = chain10.by_name("src").index
        with pytest.raises(Exception):
            pe.set_placement(QueuePlacement.of([src]))

    def test_set_placement_applies(self, pe, chain10):
        mid = chain10.by_name("op5").index
        pe.set_placement(QueuePlacement.of([mid]))
        assert pe.n_queues == 1

    def test_set_threads_rejects_negative(self, pe):
        with pytest.raises(ValueError):
            pe.set_scheduler_threads(-1)

    def test_set_graph_swaps_workload(self, pe, chain10):
        heavier = chain10.replace_costs(
            {chain10.by_name("op0").index: 1e6}
        )
        before = pe.true_throughput()
        pe.set_graph(heavier)
        after = pe.true_throughput()
        assert after < before

    def test_repr(self, pe):
        assert "ProcessingElement" in repr(pe)


class TestObservables:
    def test_true_throughput_positive(self, pe):
        assert pe.true_throughput() > 0

    def test_observation_is_noisy_but_close(self, pe):
        true = pe.true_throughput()
        samples = [pe.observe_throughput() for _ in range(50)]
        assert any(s != true for s in samples)
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(true, rel=0.05)

    def test_noise_disabled_when_std_zero(
        self, chain10, small_machine
    ):
        pe = ProcessingElement(
            chain10, small_machine, RuntimeConfig(cores=8, noise_std=0.0)
        )
        assert pe.observe_throughput() == pe.true_throughput()

    def test_queues_change_throughput(self, pe, chain10):
        manual = pe.true_throughput()
        mid = chain10.by_name("op5").index
        pe.set_placement(QueuePlacement.of([mid]))
        pe.set_scheduler_threads(1)
        assert pe.true_throughput() != manual

    def test_dynamic_ratio(self, pe, chain10):
        assert pe.dynamic_ratio() == 0.0
        pe.set_placement(QueuePlacement.full(chain10))
        assert pe.dynamic_ratio() == 1.0


class TestProfiling:
    def test_profile_counts_sum_to_samples(self, pe, fast_config):
        profile = pe.profile()
        total = sum(c for _i, c in profile.counts)
        assert total == fast_config.elasticity.profiling_samples

    def test_profiling_groups_partition(self, pe, chain10):
        groups = pe.profiling_groups()
        members = [idx for g in groups for idx in g.members]
        assert sorted(members) == sorted(
            op.index for op in chain10 if not op.is_source
        )

    def test_balanced_chain_forms_one_main_group(self, pe):
        groups = pe.profiling_groups()
        # All 10 functional ops have identical cost; the sink is much
        # lighter.  The heaviest group must hold the bulk.
        assert len(groups[0]) >= 9
