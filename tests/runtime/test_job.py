"""Tests for multi-PE jobs with independent per-PE elasticity."""

from __future__ import annotations

import pytest

from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import RuntimeConfig
from repro.runtime.job import Job, _cap_sources


class TestCapSources:
    def test_caps_applied_to_sources_only(self, chain10):
        capped = _cap_sources(chain10, 1234.0)
        assert capped.sources[0].max_rate == 1234.0
        assert capped.by_name("op3").max_rate is None

    def test_none_removes_cap(self, chain10):
        capped = _cap_sources(chain10, 99.0)
        uncapped = _cap_sources(capped, None)
        assert uncapped.sources[0].max_rate is None

    def test_topology_preserved(self, chain10):
        capped = _cap_sources(chain10, 5.0)
        assert capped.edges == chain10.edges
        assert len(capped) == len(chain10)


class TestJob:
    def _job(self, costs=(2000.0, 2000.0), cores=(8, 8)):
        stages = [
            (
                pipeline(
                    10,
                    cost_flops=c,
                    payload_bytes=256,
                    name=f"pe{i}",
                ),
                laptop(n),
            )
            for i, (c, n) in enumerate(zip(costs, cores))
        ]
        return Job(stages, config=RuntimeConfig(cores=8, seed=1))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Job([])

    def test_single_stage_job(self):
        job = self._job(costs=(2000.0,), cores=(8,))
        result = job.run(duration_s_per_stage=4000.0)
        assert len(result.stages) == 1
        assert result.job_throughput > 0

    def test_downstream_capped_by_upstream(self):
        """A slow upstream PE bounds the whole job."""
        # pe0 heavy on a small host, pe1 light on a bigger host.
        job = self._job(costs=(50_000.0, 500.0), cores=(2, 8))
        result = job.run(duration_s_per_stage=4000.0)
        pe0, pe1 = result.stages
        assert result.bottleneck_stage == "pe0"
        # pe1 cannot emit more than pe0 delivers.
        assert pe1.throughput <= pe0.throughput * 1.05

    def test_balanced_stages_reach_similar_rates(self):
        job = self._job(costs=(2000.0, 2000.0))
        result = job.run(duration_s_per_stage=4000.0)
        pe0, pe1 = result.stages
        assert pe1.throughput == pytest.approx(
            pe0.throughput, rel=0.25
        )

    def test_fixed_point_reached_before_max_rounds(self):
        job = self._job()
        result = job.run(duration_s_per_stage=4000.0, max_rounds=5)
        assert result.rounds < 5

    def test_each_stage_reports_configuration(self):
        job = self._job()
        result = job.run(duration_s_per_stage=4000.0)
        for stage in result.stages:
            assert stage.threads >= 1
            assert stage.n_queues >= 0
