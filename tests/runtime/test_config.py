"""Tests for runtime/elasticity configuration."""

from __future__ import annotations

import pytest

from repro.runtime import ElasticityConfig, RuntimeConfig


class TestElasticityConfig:
    def test_paper_defaults(self):
        c = ElasticityConfig()
        assert c.adaptation_period_s == 5.0
        assert c.sens == 0.05
        assert c.use_history and c.use_satisfaction_factor

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            ElasticityConfig(adaptation_period_s=0)

    def test_rejects_bad_sens(self):
        with pytest.raises(ValueError):
            ElasticityConfig(sens=1.0)
        with pytest.raises(ValueError):
            ElasticityConfig(sens=-0.1)

    def test_rejects_bad_satisfaction(self):
        with pytest.raises(ValueError):
            ElasticityConfig(satisfaction_threshold=1.5)

    def test_rejects_bad_thread_bounds(self):
        with pytest.raises(ValueError):
            ElasticityConfig(min_threads=0)
        with pytest.raises(ValueError):
            ElasticityConfig(min_threads=4, max_threads=2)
        with pytest.raises(ValueError):
            ElasticityConfig(min_threads=4, initial_threads=2)

    def test_without_optimizations(self):
        c = ElasticityConfig().without_optimizations()
        assert not c.use_history
        assert not c.use_satisfaction_factor

    def test_with_history_only(self):
        c = ElasticityConfig().with_history_only()
        assert c.use_history
        assert not c.use_satisfaction_factor

    def test_with_satisfaction(self):
        c = ElasticityConfig().with_satisfaction(0.0)
        assert c.use_history and c.use_satisfaction_factor
        assert c.satisfaction_threshold == 0.0


class TestRuntimeConfig:
    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            RuntimeConfig(cores=0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            RuntimeConfig(noise_std=-0.1)

    def test_effective_max_threads_defaults_to_cores(self):
        assert RuntimeConfig(cores=24).effective_max_threads == 24

    def test_effective_max_threads_explicit(self):
        c = RuntimeConfig(
            cores=24, elasticity=ElasticityConfig(max_threads=8)
        )
        assert c.effective_max_threads == 8

    def test_frozen(self):
        c = RuntimeConfig()
        with pytest.raises(AttributeError):
            c.cores = 4  # type: ignore[misc]
