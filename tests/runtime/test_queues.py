"""Tests for queue placements."""

from __future__ import annotations

import pytest

from repro.graph import pipeline
from repro.runtime import PlacementError, QueuePlacement


class TestConstruction:
    def test_empty(self):
        p = QueuePlacement.empty()
        assert len(p) == 0
        assert p.n_queues == 0

    def test_full_excludes_sources(self, chain10):
        p = QueuePlacement.full(chain10)
        assert chain10.by_name("src").index not in p
        assert chain10.by_name("snk").index in p
        assert p.n_queues == 11  # 10 ops + sink

    def test_of_deduplicates(self):
        p = QueuePlacement.of([3, 3, 4])
        assert len(p) == 2


class TestValidation:
    def test_source_queue_rejected(self, chain10):
        src = chain10.by_name("src").index
        with pytest.raises(PlacementError, match="source"):
            QueuePlacement.of([src]).validate(chain10)

    def test_unknown_operator_rejected(self, chain10):
        with pytest.raises(PlacementError, match="unknown"):
            QueuePlacement.of([999]).validate(chain10)

    def test_valid_placement_passes(self, chain10):
        QueuePlacement.of([2, 5]).validate(chain10)


class TestSetAlgebra:
    def test_add_returns_new(self):
        a = QueuePlacement.of([1])
        b = a.add([2, 3])
        assert len(a) == 1
        assert len(b) == 3

    def test_remove_returns_new(self):
        a = QueuePlacement.of([1, 2, 3])
        b = a.remove([2])
        assert len(a) == 3
        assert sorted(b) == [1, 3]

    def test_contains(self):
        p = QueuePlacement.of([5])
        assert 5 in p
        assert 6 not in p

    def test_iteration_is_sorted(self):
        assert list(QueuePlacement.of([9, 1, 5])) == [1, 5, 9]

    def test_intersection(self):
        p = QueuePlacement.of([1, 2, 3])
        assert p.intersection({2, 3, 4}) == (2, 3)

    def test_hashable_and_equal(self):
        assert QueuePlacement.of([1, 2]) == QueuePlacement.of([2, 1])
        assert hash(QueuePlacement.of([1])) == hash(QueuePlacement.of([1]))


class TestDynamicRatio:
    def test_empty_is_zero(self, chain10):
        assert QueuePlacement.empty().dynamic_ratio(chain10) == 0.0

    def test_full_is_one(self, chain10):
        assert QueuePlacement.full(chain10).dynamic_ratio(chain10) == 1.0

    def test_partial(self):
        g = pipeline(10)
        # 11 queueable (ops + sink); 5 queued
        p = QueuePlacement.of([1, 2, 3, 4, 5])
        assert p.dynamic_ratio(g) == pytest.approx(5 / 11)

    def test_repr_compact(self):
        p = QueuePlacement.of(range(1, 20))
        assert "19 queues" in repr(p)
        assert "..." in repr(p)
