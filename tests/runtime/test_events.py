"""Tests for adaptation trace events and aggregates."""

from __future__ import annotations

import pytest

from repro.runtime import (
    AdaptationTrace,
    Observation,
    PlacementChange,
    ThreadCountChange,
)


def _obs(t, throughput, threads=1, queues=0, mode="stable"):
    return Observation(
        time_s=t,
        throughput=throughput,
        true_throughput=throughput,
        threads=threads,
        n_queues=queues,
        mode=mode,
    )


@pytest.fixture
def trace():
    t = AdaptationTrace.empty()
    for i in range(1, 21):
        t.observations.append(
            _obs(5.0 * i, 100.0 * i if i <= 5 else 500.0, threads=i)
        )
    t.thread_changes.append(ThreadCountChange(10.0, 1, 2))
    t.thread_changes.append(ThreadCountChange(25.0, 2, 4))
    t.placement_changes.append(PlacementChange(15.0, 0, 3))
    return t


class TestAggregates:
    def test_empty_trace(self):
        t = AdaptationTrace.empty()
        assert t.duration_s == 0.0
        assert t.final_throughput() == 0.0
        assert t.final_threads() == 0
        assert t.last_change_time() == 0.0

    def test_duration(self, trace):
        assert trace.duration_s == 100.0

    def test_final_throughput_window(self, trace):
        assert trace.final_throughput(window=5) == pytest.approx(500.0)

    def test_final_threads_and_queues(self, trace):
        assert trace.final_threads() == 20
        assert trace.final_n_queues() == 0

    def test_last_change_time(self, trace):
        assert trace.last_change_time() == 25.0

    def test_max_threads_used(self, trace):
        assert trace.max_threads_used() == 20


class TestSettlingTime:
    def test_settling_time_finds_band_entry(self, trace):
        # Final converged 500; the last out-of-band observation (400)
        # is at t=20.
        assert trace.settling_time(tolerance=0.05) == 20.0

    def test_settled_from_start(self):
        t = AdaptationTrace.empty()
        for i in range(1, 5):
            t.observations.append(_obs(5.0 * i, 100.0))
        assert t.settling_time() == 0.0

    def test_series_accessors(self, trace):
        assert len(trace.throughput_series()) == 20
        assert trace.queue_series()[0] == (5.0, 0)
        assert trace.thread_series()[-1] == (100.0, 20)
