"""The sticky worker pool: protocol, crash surfacing, width resolution.

:mod:`repro.runtime.pool` backs both the bench sweep fan-out
(``run_cells``) and the job executor's per-PE sticky workers.  The
sweep side is covered by the bench suites; this file pins the
:class:`WorkerPool` primitive itself — per-worker state from
``init_fn``, FIFO submit/recv, error and crash propagation — and the
``job_workers`` width-resolution precedence.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime.pool import (
    POOL_START_ERRORS,
    WorkerPool,
    WorkerPoolError,
    job_workers,
    parallel_enabled,
)


# ----------------------------------------------------------------------
# worker-side functions must be module-level (pickled by reference)
# ----------------------------------------------------------------------
def _init_state(worker_id, base):
    return {"id": worker_id, "base": base, "calls": 0}


def _add(state, x):
    state["calls"] += 1
    return state["base"] + state["id"] * 100 + x


def _ncalls(state):
    return state["calls"]


def _boom(state):
    raise ValueError("worker-side failure")


def _die(state):
    os._exit(17)


def _init_boom(worker_id):
    raise RuntimeError("init refused")


class TestWorkerPool:
    def test_per_worker_state_is_sticky(self):
        with WorkerPool(2, _init_state, (1000,)) as pool:
            assert pool.call(0, _add, 7) == 1007
            assert pool.call(1, _add, 7) == 1107
            # State persists across calls on the same worker.
            pool.call(0, _add, 0)
            assert pool.call(0, _ncalls) == 2
            assert pool.call(1, _ncalls) == 1

    def test_submit_recv_is_fifo_per_worker(self):
        with WorkerPool(1, _init_state, (0,)) as pool:
            for x in range(5):
                pool.submit(0, _add, x)
            assert [pool.recv(0) for _ in range(5)] == list(range(5))

    def test_worker_exception_ships_traceback(self):
        with WorkerPool(1, _init_state, (0,)) as pool:
            pool.submit(0, _boom)
            with pytest.raises(WorkerPoolError) as exc:
                pool.recv(0)
            assert "worker-side failure" in str(exc.value)
            assert "ValueError" in str(exc.value)
            # The worker survives its own exception.
            assert pool.call(0, _add, 1) == 1

    def test_worker_crash_raises_clean_error(self):
        with WorkerPool(1, _init_state, (0,)) as pool:
            pool.submit(0, _die)
            with pytest.raises(WorkerPoolError) as exc:
                pool.recv(0)
            assert "17" in str(exc.value)

    def test_init_failure_surfaces_at_construction(self):
        with pytest.raises(WorkerPoolError):
            WorkerPool(1, _init_boom, ())

    def test_start_errors_cover_unpicklable_callables(self):
        # Closures/lambdas can't cross the pipe; callers of the sticky
        # pool catch these to fall back to sequential execution.
        assert AttributeError in POOL_START_ERRORS
        assert TypeError in POOL_START_ERRORS


class TestJobWorkers:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOB_WORKERS", raising=False)
        assert job_workers() == 1

    def test_env_var_sets_width(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_WORKERS", "4")
        assert job_workers() == 4

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_WORKERS", "4")
        assert job_workers(2) == 2
        assert job_workers(1) == 1

    def test_width_clamps_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_WORKERS", "0")
        assert job_workers() == 1
        assert job_workers(0) == 1
        assert job_workers(-3) == 1

    def test_garbage_env_falls_back_to_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_WORKERS", "many")
        assert job_workers() == 1

    def test_parallel_enabled_still_reads_its_own_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        monkeypatch.setenv("REPRO_JOB_WORKERS", "8")
        assert not parallel_enabled()
        assert job_workers() == 8
