"""Tests for the thread registry and snapshot profiler (§3 mechanism)."""

from __future__ import annotations

import pytest

from repro.core import build_groups
from repro.des import DesEngine
from repro.graph import GraphBuilder, pipeline
from repro.perfmodel import laptop
from repro.runtime import QueuePlacement
from repro.runtime.threads import SnapshotProfiler, ThreadRegistry


class TestThreadRegistry:
    def test_register_and_publish(self):
        reg = ThreadRegistry()
        reg.register("t0")
        reg.set_current("t0", 5)
        assert reg.snapshot() == (("t0", 5),)

    def test_duplicate_registration_rejected(self):
        reg = ThreadRegistry()
        reg.register("t0")
        with pytest.raises(ValueError):
            reg.register("t0")

    def test_idle_threads_report_none(self):
        reg = ThreadRegistry()
        reg.register("t0")
        reg.register("t1")
        reg.set_current("t0", 3)
        snap = dict(reg.snapshot())
        assert snap["t0"] == 3
        assert snap["t1"] is None

    def test_snapshot_counts_tracked(self):
        reg = ThreadRegistry()
        state = reg.register("t0")
        reg.snapshot()
        reg.snapshot()
        assert state.snapshots_taken == 2


class TestSnapshotProfiler:
    def test_counts_accumulate(self):
        reg = ThreadRegistry()
        reg.register("a")
        reg.register("b")
        prof = SnapshotProfiler(reg)
        reg.set_current("a", 1)
        reg.set_current("b", 2)
        prof.sample()
        reg.set_current("b", 1)
        prof.sample()
        profile = prof.profile(n_operators=4)
        counts = profile.as_dict()
        # Thread a was caught in operator 1 twice; thread b once in 2,
        # once in 1.
        assert counts[1] == 3
        assert counts[2] == 1
        assert counts[0] == 0
        assert prof.samples_taken == 2

    def test_idle_threads_not_counted(self):
        reg = ThreadRegistry()
        reg.register("a")
        prof = SnapshotProfiler(reg)
        prof.sample()
        assert sum(prof.profile(4).as_dict().values()) == 0

    def test_reset(self):
        reg = ThreadRegistry()
        reg.register("a")
        prof = SnapshotProfiler(reg)
        reg.set_current("a", 0)
        prof.sample()
        prof.reset()
        assert prof.samples_taken == 0
        assert sum(prof.profile(2).as_dict().values()) == 0


class TestDesSnapshotProfiling:
    """The profiler mechanism running against actual DES execution."""

    def _heavy_light_graph(self):
        b = GraphBuilder("hl", payload_bytes=64)
        src = b.add_source("src", cost_flops=10.0)
        light = b.add_operator("light", cost_flops=100.0)
        heavy = b.add_operator("heavy", cost_flops=50_000.0)
        snk = b.add_sink("snk", cost_flops=10.0, uses_lock=False)
        b.chain(src, light, heavy, snk)
        return b.build()

    def test_execution_profile_finds_the_heavy_operator(self):
        g = self._heavy_light_graph()
        engine = DesEngine(
            g, laptop(4), QueuePlacement.empty(), 0
        )
        profiler = engine.attach_profiler(period_s=5.0e-6)
        engine.run(warmup_s=0.001, measure_s=0.01)
        profile = profiler.profile(len(g))
        counts = profile.as_dict()
        heavy = g.by_name("heavy").index
        light = g.by_name("light").index
        assert counts[heavy] > 50
        # ~500:1 cost ratio; allow generous sampling noise.
        assert counts[heavy] > 20 * max(1, counts[light])

    def test_groups_built_from_execution_profile(self):
        g = self._heavy_light_graph()
        engine = DesEngine(g, laptop(4), QueuePlacement.empty(), 0)
        profiler = engine.attach_profiler(period_s=5.0e-6)
        engine.run(warmup_s=0.001, measure_s=0.01)
        groups = build_groups(g, profiler.profile(len(g)))
        assert g.by_name("heavy").index in groups[0].members

    def test_attach_after_start_rejected(self):
        g = pipeline(3)
        engine = DesEngine(g, laptop(2), QueuePlacement.empty(), 0)
        engine.start()
        with pytest.raises(RuntimeError):
            engine.attach_profiler()

    def test_attach_twice_returns_same(self):
        g = pipeline(3)
        engine = DesEngine(g, laptop(2), QueuePlacement.empty(), 0)
        a = engine.attach_profiler()
        b = engine.attach_profiler()
        assert a is b
