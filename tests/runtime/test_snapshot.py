"""Tests for trace serialization."""

from __future__ import annotations

import json

import pytest

from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import (
    ProcessingElement,
    RuntimeConfig,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.runtime.executor import AdaptationExecutor


@pytest.fixture
def trace(small_machine, fast_config):
    pe = ProcessingElement(
        pipeline(10, cost_flops=2000.0), small_machine, fast_config
    )
    return AdaptationExecutor(pe).run(600).trace


class TestRoundTrip:
    def test_dict_round_trip(self, trace):
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.observations == trace.observations
        assert rebuilt.thread_changes == trace.thread_changes
        assert rebuilt.placement_changes == trace.placement_changes

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.observations == trace.observations

    def test_json_is_plain(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert isinstance(data["observations"], list)

    def test_aggregates_preserved(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        rebuilt = load_trace(path)
        assert rebuilt.final_throughput() == trace.final_throughput()
        assert rebuilt.settling_time() == trace.settling_time()
        assert rebuilt.last_change_time() == trace.last_change_time()


class TestVersioning:
    def test_unknown_version_rejected(self, trace):
        data = trace_to_dict(trace)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(data)

    def test_missing_version_rejected(self, trace):
        data = trace_to_dict(trace)
        del data["version"]
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(data)


class TestSasoOnLoadedTrace:
    def test_analysis_works_after_round_trip(self, trace, tmp_path):
        from repro.core import analyze

        path = tmp_path / "trace.json"
        save_trace(trace, path)
        report = analyze(load_trace(path))
        assert report.settling_time_s >= 0
