"""Tests for the PE introspection report."""

from __future__ import annotations

import pytest

from repro.graph import pipeline
from repro.runtime import (
    ProcessingElement,
    QueuePlacement,
    RuntimeConfig,
    inspect_pe,
)


@pytest.fixture
def pe(chain10, small_machine, fast_config):
    return ProcessingElement(chain10, small_machine, fast_config)


class TestInspect:
    def test_manual_single_region(self, pe):
        report = inspect_pe(pe)
        assert len(report.regions) == 1
        assert report.regions[0].kind == "source"
        assert report.n_queues == 0
        assert report.dynamic_ratio == 0.0

    def test_regions_sorted_by_work(self, pe, chain10):
        mid = chain10.by_name("op5").index
        tail = chain10.by_name("op8").index
        pe.set_placement(QueuePlacement.of([mid, tail]))
        pe.set_scheduler_threads(2)
        report = inspect_pe(pe)
        works = [r.work_us_per_tuple for r in report.regions]
        assert works == sorted(works, reverse=True)
        assert report.regions[0].share_of_bottleneck == pytest.approx(1.0)

    def test_kinds_classified(self, pe, chain10):
        mid = chain10.by_name("op5").index
        pe.set_placement(QueuePlacement.of([mid]))
        report = inspect_pe(pe)
        kinds = {r.entry_name: r.kind for r in report.regions}
        assert kinds["src"] == "source"
        assert kinds["op5"] == "dynamic"

    def test_throughput_matches_pe(self, pe):
        report = inspect_pe(pe)
        assert report.throughput == pytest.approx(pe.true_throughput())

    def test_utilization_bounded(self, pe, chain10):
        pe.set_placement(QueuePlacement.full(chain10))
        pe.set_scheduler_threads(8)
        report = inspect_pe(pe)
        assert 0.0 <= report.utilization <= 1.0

    def test_render_contains_key_facts(self, pe):
        text = inspect_pe(pe).render()
        assert "PE report" in text
        assert "throughput" in text
        assert "src" in text

    def test_render_truncates_many_regions(
        self, small_machine, fast_config
    ):
        g = pipeline(30, cost_flops=1000.0)
        pe = ProcessingElement(g, small_machine, fast_config)
        pe.set_placement(QueuePlacement.full(g))
        pe.set_scheduler_threads(4)
        text = inspect_pe(pe).render(max_regions=5)
        assert "more regions" in text
