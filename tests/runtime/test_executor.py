"""Tests for the virtual-clock adaptation executor."""

from __future__ import annotations

import pytest

from repro.apps.workloads import scaled_workload
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import (
    ProcessingElement,
    RuntimeConfig,
    run_elastic,
)
from repro.runtime.executor import AdaptationExecutor


@pytest.fixture
def pe(chain10, small_machine, fast_config):
    return ProcessingElement(chain10, small_machine, fast_config)


class TestRun:
    def test_rejects_nonpositive_duration(self, pe):
        with pytest.raises(ValueError):
            AdaptationExecutor(pe).run(0)

    def test_observation_cadence(self, pe):
        result = AdaptationExecutor(pe).run(100)
        times = [o.time_s for o in result.trace.observations]
        assert times == [5.0 * i for i in range(1, 21)]

    def test_improves_over_manual(self, pe):
        manual = pe.true_throughput()
        result = AdaptationExecutor(pe).run(2000)
        assert result.converged_throughput > manual

    def test_trace_records_changes(self, pe):
        result = AdaptationExecutor(pe).run(2000)
        assert result.trace.thread_changes
        assert result.trace.placement_changes

    def test_stop_after_stable(self, pe):
        ex = AdaptationExecutor(pe)
        result = ex.run(100_000, stop_after_stable_periods=5)
        assert result.trace.duration_s < 100_000
        assert ex.coordinator.is_stable

    def test_deterministic_given_seed(
        self, chain10, small_machine, fast_config
    ):
        def once():
            pe = ProcessingElement(chain10, small_machine, fast_config)
            return AdaptationExecutor(pe).run(1000)

        a, b = once(), once()
        assert a.final_threads == b.final_threads
        assert a.final_n_queues == b.final_n_queues
        assert [o.throughput for o in a.trace.observations] == [
            o.throughput for o in b.trace.observations
        ]

    def test_run_elastic_wrapper(self, pe):
        result = run_elastic(pe, duration_s=500)
        assert result.trace.observations


class TestWorkloadEvents:
    def test_graph_swap_applied_at_event_time(
        self, chain10, small_machine, fast_config
    ):
        pe = ProcessingElement(chain10, small_machine, fast_config)
        heavier = scaled_workload(chain10, 50.0)
        ex = AdaptationExecutor(
            pe, workload_events=[(500.0, heavier)]
        )
        ex.run(600)
        assert pe.graph is heavier

    def test_throughput_drops_after_heavier_workload(
        self, chain10, small_machine, fast_config
    ):
        pe = ProcessingElement(chain10, small_machine, fast_config)
        heavier = scaled_workload(chain10, 100.0)
        ex = AdaptationExecutor(pe, workload_events=[(300.0, heavier)])
        result = ex.run(400)
        before = [
            o.true_throughput
            for o in result.trace.observations
            if o.time_s < 300
        ]
        after = [
            o.true_throughput
            for o in result.trace.observations
            if o.time_s > 305
        ]
        assert min(before) > max(after)

    def test_adapts_to_workload_change(
        self, chain10, small_machine, fast_config
    ):
        pe = ProcessingElement(chain10, small_machine, fast_config)
        heavier = scaled_workload(chain10, 100.0)
        ex = AdaptationExecutor(pe, workload_events=[(800.0, heavier)])
        result = ex.run(4000)
        # Changes must occur after the workload swap (re-adaptation).
        changes_after = [
            c
            for c in result.trace.thread_changes
            + result.trace.placement_changes
            if c.time_s > 800.0
        ]
        assert changes_after
