"""Tests for region fusion, including rate-conservation properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    FanoutPolicy,
    GraphBuilder,
    data_parallel,
    mixed,
    pipeline,
)
from repro.graph.analysis import queueable_indices
from repro.runtime import QueuePlacement, decompose


class TestChainDecomposition:
    def test_empty_placement_single_region(self, chain10):
        d = decompose(chain10, QueuePlacement.empty())
        assert d.n_regions == 1
        region = d.regions[0]
        assert region.is_source_region
        assert len(region.operators) == len(chain10)

    def test_full_placement_one_region_per_operator(self, chain10):
        d = decompose(chain10, QueuePlacement.full(chain10))
        assert d.n_regions == len(chain10)
        for region in d.dynamic_regions:
            assert len(region.operators) == 1

    def test_single_queue_splits_chain(self, chain10):
        mid = chain10.by_name("op5").index
        d = decompose(chain10, QueuePlacement.of([mid]))
        assert d.n_regions == 2
        src_region = d.source_regions[0]
        dyn_region = d.dynamic_regions[0]
        assert mid not in src_region.operators
        assert dyn_region.entry == mid
        # Chain: src..op4 in source region, op5..snk in dynamic region.
        assert len(src_region.operators) + len(dyn_region.operators) == len(
            chain10
        )

    def test_push_rates_cross_queue_boundary(self, chain10):
        mid = chain10.by_name("op5").index
        d = decompose(chain10, QueuePlacement.of([mid]))
        src_region = d.source_regions[0]
        assert src_region.push_rates == ((mid, pytest.approx(1.0)),)

    def test_dynamic_region_entry_rate(self, chain10):
        mid = chain10.by_name("op5").index
        d = decompose(chain10, QueuePlacement.of([mid]))
        assert d.dynamic_regions[0].entry_rate == pytest.approx(1.0)


class TestFanOutDecomposition:
    def test_broadcast_operator_in_two_regions(self, diamond):
        # Queue on b only: c and d stay with the source region; d also
        # reachable from b's region.
        b_idx = diamond.by_name("b").index
        d_idx = diamond.by_name("d").index
        d = decompose(diamond, QueuePlacement.of([b_idx]))
        assert d.threads_reaching(d_idx) == 2

    def test_rates_split_between_regions(self, diamond):
        b_idx = diamond.by_name("b").index
        d_idx = diamond.by_name("d").index
        decomp = decompose(diamond, QueuePlacement.of([b_idx]))
        total = sum(r.op_rate(d_idx) for r in decomp.regions)
        # d receives rate 2 overall (from b and c, broadcast).
        assert total == pytest.approx(2.0)

    def test_data_parallel_sink_reached_by_all_workers(self, dp8):
        workers = [
            op.index for op in dp8 if op.name.startswith("worker")
        ]
        snk = dp8.by_name("snk").index
        d = decompose(dp8, QueuePlacement.of(workers))
        assert d.threads_reaching(snk) == len(workers)


class TestDecompositionAccessors:
    def test_region_of_entry(self, chain10):
        mid = chain10.by_name("op5").index
        d = decompose(chain10, QueuePlacement.of([mid]))
        assert d.region_of_entry(mid).entry == mid
        with pytest.raises(KeyError):
            d.region_of_entry(999)

    def test_operators_per_region(self, chain10):
        d = decompose(chain10, QueuePlacement.empty())
        per = d.operators_per_region()
        assert len(per) == 1
        (members,) = per.values()
        assert len(members) == len(chain10)

    def test_op_rate_zero_for_missing(self, chain10):
        d = decompose(chain10, QueuePlacement.empty())
        assert d.regions[0].op_rate(999) == 0.0


def _random_placement(graph, rng, fraction):
    eligible = list(queueable_indices(graph))
    k = int(fraction * len(eligible))
    chosen = rng.choice(eligible, size=k, replace=False) if k else []
    return QueuePlacement.of(int(i) for i in chosen)


class TestRateConservation:
    """Region-local rates must always sum to the graph's global rates."""

    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 1.0])
    def test_pipeline_conservation(self, fraction, rng):
        g = pipeline(30)
        placement = _random_placement(g, rng, fraction)
        self._assert_conserved(g, placement)

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 1.0])
    def test_mixed_conservation(self, fraction, rng):
        g = mixed(4, 8)
        placement = _random_placement(g, rng, fraction)
        self._assert_conserved(g, placement)

    def test_data_parallel_conservation(self, dp8, rng):
        placement = _random_placement(dp8, rng, 0.5)
        self._assert_conserved(dp8, placement)

    @staticmethod
    def _assert_conserved(graph, placement):
        decomp = decompose(graph, placement)
        global_rates = graph.arrival_rates()
        summed = {op.index: 0.0 for op in graph}
        for region in decomp.regions:
            for idx, rate in region.op_rates:
                summed[idx] += rate
        for idx, expected in global_rates.items():
            assert summed[idx] == pytest.approx(expected, abs=1e-9), (
                f"operator {idx}: regions sum to {summed[idx]}, "
                f"global rate {expected}"
            )

    @staticmethod
    def _assert_push_consistency(graph, placement):
        """Push rates into each queue equal the queue's entry rate."""
        decomp = decompose(graph, placement)
        pushes = {}
        for region in decomp.regions:
            for queue_op, rate in region.push_rates:
                pushes[queue_op] = pushes.get(queue_op, 0.0) + rate
        for region in decomp.dynamic_regions:
            assert pushes.get(region.entry, 0.0) == pytest.approx(
                region.entry_rate, abs=1e-9
            )

    @given(
        seed=st.integers(0, 10_000),
        n_ops=st.integers(2, 40),
        fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_conservation_random_chain(
        self, seed, n_ops, fraction
    ):
        g = pipeline(n_ops)
        rng = np.random.default_rng(seed)
        placement = _random_placement(g, rng, fraction)
        self._assert_conserved(g, placement)
        self._assert_push_consistency(g, placement)

    @given(
        seed=st.integers(0, 10_000),
        width=st.integers(1, 8),
        depth=st.integers(1, 6),
        fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_conservation_random_mixed(
        self, seed, width, depth, fraction
    ):
        g = mixed(width, depth)
        rng = np.random.default_rng(seed)
        placement = _random_placement(g, rng, fraction)
        self._assert_conserved(g, placement)
        self._assert_push_consistency(g, placement)


class TestSelectivityRegions:
    def test_selectivity_amplifies_downstream_rates(self):
        b = GraphBuilder("sel")
        src = b.add_source("src")
        tok = b.add_operator("tok", selectivity=5.0)
        work = b.add_operator("work")
        snk = b.add_sink("snk")
        b.chain(src, tok, work, snk)
        g = b.build()
        d = decompose(g, QueuePlacement.of([work.index]))
        src_region = d.source_regions[0]
        assert src_region.push_rates == ((work.index, pytest.approx(5.0)),)
        dyn = d.dynamic_regions[0]
        assert dyn.entry_rate == pytest.approx(5.0)

    def test_split_fanout_partial_queueing(self):
        b = GraphBuilder("partial")
        src = b.add_source("src", fanout=FanoutPolicy.SPLIT)
        w1 = b.add_operator("w1")
        w2 = b.add_operator("w2")
        snk = b.add_sink("snk", uses_lock=False)
        b.fan_out(src, [w1, w2])
        b.fan_in([w1, w2], snk)
        g = b.build()
        # Queue only w1: w2 and snk stay in the source region.
        d = decompose(g, QueuePlacement.of([w1.index]))
        src_region = d.source_regions[0]
        assert src_region.op_rate(w2.index) == pytest.approx(0.5)
        assert src_region.push_rates == ((w1.index, pytest.approx(0.5)),)
        dyn = d.dynamic_regions[0]
        assert dyn.op_rate(snk.index) == pytest.approx(0.5)
