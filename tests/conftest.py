"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    GraphBuilder,
    StreamGraph,
    data_parallel,
    pipeline,
)
from repro.perfmodel import MachineProfile, laptop, xeon_176
from repro.runtime import ElasticityConfig, RuntimeConfig
from repro.runtime.queues import QueuePlacement


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_machine() -> MachineProfile:
    return laptop(8)


@pytest.fixture
def xeon() -> MachineProfile:
    return xeon_176()


@pytest.fixture
def chain10() -> StreamGraph:
    """A 10-operator pipeline, the workhorse small graph."""
    return pipeline(10, cost_flops=1000.0, payload_bytes=256)


@pytest.fixture
def dp8() -> StreamGraph:
    """An 8-wide data-parallel graph with a locking sink."""
    return data_parallel(8, cost_flops=2000.0, payload_bytes=256)


@pytest.fixture
def diamond() -> StreamGraph:
    """src -> a -> (b, c) -> d -> snk: broadcast fan-out + fan-in."""
    b = GraphBuilder("diamond", payload_bytes=128)
    src = b.add_source("src")
    a = b.add_operator("a", cost_flops=100)
    bb = b.add_operator("b", cost_flops=200)
    cc = b.add_operator("c", cost_flops=300)
    d = b.add_operator("d", cost_flops=100)
    snk = b.add_sink("snk")
    b.connect(src, a)
    b.fan_out(a, [bb, cc])
    b.fan_in([bb, cc], d)
    b.connect(d, snk)
    return b.build()


@pytest.fixture
def fast_config() -> RuntimeConfig:
    """Config with small profiling cost for quick adaptation tests."""
    return RuntimeConfig(
        cores=8,
        seed=7,
        noise_std=0.005,
        elasticity=ElasticityConfig(profiling_samples=400),
    )


@pytest.fixture
def empty_placement() -> QueuePlacement:
    return QueuePlacement.empty()
