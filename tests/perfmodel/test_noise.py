"""Tests for the measurement-noise model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perfmodel import NoiseModel, make_noise


class TestNoiseModel:
    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            NoiseModel(std=-0.1)

    def test_zero_std_is_identity(self):
        n = NoiseModel(std=0.0)
        assert n.observe(123.0) == 123.0

    def test_zero_value_stays_zero(self):
        n = NoiseModel(std=0.1)
        assert n.observe(0.0) == 0.0

    def test_never_negative(self):
        n = NoiseModel(std=0.5, seed=1)
        assert all(n.observe(10.0) > 0 for _ in range(1000))

    def test_mean_preserved(self):
        n = NoiseModel(std=0.05, seed=2)
        samples = [n.observe(100.0) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.01)

    def test_std_matches_configuration(self):
        n = NoiseModel(std=0.10, seed=3)
        samples = [n.observe(100.0) for _ in range(20000)]
        assert np.std(samples) == pytest.approx(10.0, rel=0.1)

    def test_seeded_reproducibility(self):
        a = NoiseModel(std=0.1, seed=5)
        b = NoiseModel(std=0.1, seed=5)
        assert [a.observe(1.0) for _ in range(10)] == [
            b.observe(1.0) for _ in range(10)
        ]

    def test_reseed_resets_stream(self):
        n = NoiseModel(std=0.1, seed=5)
        first = [n.observe(1.0) for _ in range(5)]
        n.reseed(5)
        again = [n.observe(1.0) for _ in range(5)]
        assert first == again


class TestMakeNoise:
    def test_disabled_returns_none(self):
        assert make_noise(0.1, seed=0, enabled=False) is None

    def test_zero_std_returns_none(self):
        assert make_noise(0.0, seed=0) is None

    def test_enabled_returns_model(self):
        assert isinstance(make_noise(0.1, seed=0), NoiseModel)
