"""Tests for multi-source throughput semantics.

The model normalizes region rates to unit rate per source; aggregate
bounds must scale with the source count (a regression guard for the
PacketAnalysis 8-source accounting).
"""

from __future__ import annotations

import pytest

from repro.graph import GraphBuilder
from repro.perfmodel import PerformanceModel, laptop
from repro.runtime import QueuePlacement


def _n_source_graph(n_sources, ops_per_source=4, cost=2000.0):
    b = GraphBuilder(f"multi-{n_sources}", payload_bytes=64)
    collector = b.add_operator("collector", cost_flops=10.0)
    for s in range(n_sources):
        src = b.add_source(f"src{s}", cost_flops=10.0)
        prev = src
        for i in range(ops_per_source):
            op = b.add_operator(f"s{s}op{i}", cost_flops=cost)
            b.connect(prev, op)
            prev = op
        b.connect(prev, collector)
    snk = b.add_sink("snk", cost_flops=10.0, uses_lock=False)
    b.connect(collector, snk)
    return b.build()


class TestAggregateScaling:
    def test_manual_throughput_scales_with_sources(self):
        """Symmetric independent complexes: aggregate manual throughput
        grows ~linearly with the source count (each source has its own
        operator thread) until shared structure binds."""
        machine = laptop(16)
        t1 = PerformanceModel(_n_source_graph(1), machine).estimate(
            QueuePlacement.empty(), 0
        )
        t4 = PerformanceModel(_n_source_graph(4), machine).estimate(
            QueuePlacement.empty(), 0
        )
        assert t4.throughput == pytest.approx(
            4 * t1.throughput, rel=0.15
        )

    def test_active_threads_counts_all_sources(self):
        machine = laptop(16)
        est = PerformanceModel(_n_source_graph(4), machine).estimate(
            QueuePlacement.empty(), 0
        )
        assert est.active_threads == 4

    def test_oversubscription_with_many_sources(self):
        """More source threads than cores degrades per-thread speed."""
        machine = laptop(2)
        est = PerformanceModel(_n_source_graph(8), machine).estimate(
            QueuePlacement.empty(), 0
        )
        assert est.thread_speed < 1.0

    def test_sink_throughput_conversion(self):
        """Sink rate per source stays consistent across source counts."""
        machine = laptop(16)
        for n in (1, 4):
            g = _n_source_graph(n)
            pm = PerformanceModel(g, machine)
            agg = pm.estimate(QueuePlacement.empty(), 0).throughput
            sink = pm.sink_throughput(QueuePlacement.empty(), 0)
            # Selectivity 1 everywhere: sink tuples/s == source tuples/s
            # aggregated.
            assert sink == pytest.approx(agg)

    def test_scheduler_bound_scales_with_sources(self):
        machine = laptop(16)
        g4 = _n_source_graph(4)
        pm = PerformanceModel(g4, machine)
        heavy_ops = [
            op.index for op in g4 if op.name.endswith("op1")
        ]
        placement = QueuePlacement.of(heavy_ops)
        est = pm.estimate(placement, 4)
        # Four dynamic regions at rate 1/source; the class bound must
        # account for four sources feeding them.
        assert est.scheduler_class_bound > 0
        assert est.throughput > 0
