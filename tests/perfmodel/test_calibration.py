"""Tests for model<->DES calibration utilities."""

from __future__ import annotations

import pytest

from repro.perfmodel import (
    MachineProfile,
    fit_flops_rate,
    laptop,
    validation_report,
)


@pytest.fixture(scope="module")
def report():
    return validation_report(laptop(4))


class TestValidationReport:
    def test_all_ratios_within_band(self, report):
        # Model and DES agree within ~2x on small chains.
        for row in report.rows:
            assert 0.4 < row.ratio < 2.5, row

    def test_ordering_preserved(self, report):
        assert report.ordering_preserved()

    def test_max_abs_log_ratio(self, report):
        import math

        assert report.max_abs_log_ratio == pytest.approx(
            max(abs(math.log(r.ratio)) for r in report.rows)
        )

    def test_labels_describe_configs(self, report):
        labels = [r.label for r in report.rows]
        assert "q=0,t=0" in labels


class TestFitFlopsRate:
    def test_recovers_configured_rate(self):
        machine = laptop(4)
        fitted = fit_flops_rate(machine)
        assert fitted == pytest.approx(
            machine.flops_per_second, rel=0.05
        )

    def test_recovers_slower_machine(self):
        machine = MachineProfile(
            name="slow", logical_cores=4, flops_per_second=1.0e9
        )
        fitted = fit_flops_rate(machine)
        assert fitted == pytest.approx(1.0e9, rel=0.05)
