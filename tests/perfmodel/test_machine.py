"""Tests for machine profiles."""

from __future__ import annotations

import pytest

from repro.perfmodel import MachineProfile, laptop, power8_184, xeon_176


class TestProfiles:
    def test_xeon_core_counts(self):
        m = xeon_176()
        assert m.logical_cores == 176
        assert m.physical_cores == 88

    def test_power8_core_counts(self):
        m = power8_184()
        assert m.logical_cores == 184
        assert m.physical_cores == 23

    def test_physical_defaults_to_logical(self):
        m = MachineProfile(name="x", logical_cores=4)
        assert m.physical_cores == 4

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            MachineProfile(name="x", logical_cores=0)

    def test_rejects_physical_above_logical(self):
        with pytest.raises(ValueError):
            MachineProfile(name="x", logical_cores=4, physical_cores=8)


class TestDerivedCosts:
    def test_flop_time_linear(self, small_machine):
        assert small_machine.flop_time(200) == pytest.approx(
            2 * small_machine.flop_time(100)
        )

    def test_copy_time_grows_with_payload(self, small_machine):
        assert small_machine.copy_time(16384) > small_machine.copy_time(1)

    def test_copy_time_has_base_cost(self, small_machine):
        assert small_machine.copy_time(0) == pytest.approx(
            small_machine.tuple_copy_base_s
        )

    def test_scan_time_grows_with_queues(self, small_machine):
        assert small_machine.scan_time(1000) > small_machine.scan_time(1)

    def test_scan_time_base(self, small_machine):
        assert small_machine.scan_time(0) == pytest.approx(
            small_machine.queue_scan_base_s
        )


class TestEffectiveCapacity:
    def test_zero_threads(self, small_machine):
        assert small_machine.effective_capacity(0) == 0.0

    def test_linear_up_to_physical(self):
        m = MachineProfile(name="x", logical_cores=16, physical_cores=8)
        assert m.effective_capacity(4) == pytest.approx(4.0)
        assert m.effective_capacity(8) == pytest.approx(8.0)

    def test_smt_region_is_sublinear(self):
        m = MachineProfile(
            name="x",
            logical_cores=16,
            physical_cores=8,
            smt_efficiency=0.5,
        )
        assert m.effective_capacity(12) == pytest.approx(8 + 4 * 0.5)

    def test_oversubscription_degrades(self):
        m = MachineProfile(name="x", logical_cores=8)
        at_cap = m.effective_capacity(8)
        over = m.effective_capacity(32)
        assert over < at_cap

    def test_capacity_monotone_up_to_logical(self):
        m = xeon_176()
        caps = [m.effective_capacity(n) for n in range(1, 177)]
        assert all(b >= a for a, b in zip(caps, caps[1:]))


class TestWithCores:
    def test_restrict_scales_physical(self):
        m = xeon_176().with_cores(88)
        assert m.logical_cores == 88
        assert m.physical_cores == 44

    def test_restrict_to_one(self):
        m = xeon_176().with_cores(1)
        assert m.logical_cores == 1
        assert m.physical_cores == 1

    def test_name_tagged(self):
        assert "@16c" in xeon_176().with_cores(16).name

    def test_laptop_profile(self):
        assert laptop(4).logical_cores == 4
