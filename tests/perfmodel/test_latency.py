"""Tests for the end-to-end latency estimator."""

from __future__ import annotations

import pytest

from repro.graph import pipeline
from repro.perfmodel import PerformanceModel, laptop
from repro.perfmodel.latency import estimate_latency, latency_profile
from repro.runtime import QueuePlacement


@pytest.fixture
def model():
    graph = pipeline(10, cost_flops=10_000.0, payload_bytes=256)
    return PerformanceModel(graph, laptop(8))


def _even(graph, k):
    eligible = [op.index for op in graph if not op.is_source]
    step = len(eligible) / k
    return QueuePlacement.of(eligible[int(i * step)] for i in range(k))


class TestManualLatency:
    def test_manual_latency_equals_service_time(self, model):
        """No queues: latency is the single region's service time,
        independent of load (no queueing in a pure function-call chain)."""
        low = estimate_latency(model, QueuePlacement.empty(), 0, 0.2)
        high = estimate_latency(model, QueuePlacement.empty(), 0, 0.9)
        assert low.latency_s == pytest.approx(high.latency_s)
        # ~10 ops x 10k FLOPs at 4 GF/s = ~25 us plus overheads.
        assert 20e-6 < low.latency_s < 40e-6

    def test_rejects_negative_load(self, model):
        with pytest.raises(ValueError):
            estimate_latency(model, QueuePlacement.empty(), 0, -0.1)


class TestQueueingLatency:
    def test_waits_grow_with_load(self, model):
        placement = _even(model.graph, 3)
        profile = latency_profile(
            model, placement, 3, load_fractions=(0.2, 0.5, 0.9)
        )
        latencies = [profile[f].latency_s for f in (0.2, 0.5, 0.9)]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_saturation_reported(self, model):
        placement = _even(model.graph, 3)
        est = estimate_latency(model, placement, 3, load_fraction=1.5)
        assert est.saturated
        assert est.latency_s == float("inf")

    def test_queues_add_latency_at_light_load(self, model):
        """Extra hops and copies cost latency when queues are idle."""
        manual = estimate_latency(
            model, QueuePlacement.empty(), 0, 0.1
        )
        queued = estimate_latency(
            model, _even(model.graph, 5), 5, 0.1
        )
        assert queued.latency_s > manual.latency_s

    def test_utilization_tracks_load(self, model):
        placement = _even(model.graph, 3)
        low = estimate_latency(model, placement, 3, 0.2)
        high = estimate_latency(model, placement, 3, 0.9)
        assert high.max_utilization > low.max_utilization
        assert high.max_utilization <= 1.0 + 1e-9

    def test_source_regions_never_wait(self, model):
        placement = _even(model.graph, 3)
        est = estimate_latency(model, placement, 3, 0.8)
        waits = dict(est.per_region_wait_s)
        src_entry = model.graph.by_name("src").index
        assert waits[src_entry] == 0.0


class TestAbsoluteLoadComparison:
    def test_parallelism_lowers_latency_at_high_absolute_load(self):
        """At an absolute load beyond the manual configuration's
        capacity, only the parallel configuration has finite latency —
        the latency side of the paper's throughput story."""
        graph = pipeline(10, cost_flops=10_000.0, payload_bytes=256)
        model = PerformanceModel(graph, laptop(8))
        manual_capacity = model.estimate(
            QueuePlacement.empty(), 0
        ).throughput
        placement = _even(graph, 5)
        parallel_capacity = model.estimate(placement, 5).throughput
        assert parallel_capacity > 1.5 * manual_capacity
        # Offered load: 1.2x the manual capacity.
        load = 1.2 * manual_capacity
        manual_est = estimate_latency(
            model, QueuePlacement.empty(), 0, load / manual_capacity
        )
        parallel_est = estimate_latency(
            model, placement, 5, load / parallel_capacity
        )
        assert manual_est.saturated
        assert not parallel_est.saturated
        assert parallel_est.latency_s < float("inf")
