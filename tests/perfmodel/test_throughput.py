"""Tests for the steady-state throughput estimator.

These tests pin down the qualitative behaviours every figure in the
paper depends on: pipeline parallelism gains, payload-dependent queue
costs, sink lock contention, memory-bandwidth saturation and
oversubscription.
"""

from __future__ import annotations

import pytest

from repro.graph import data_parallel, pipeline
from repro.perfmodel import PerformanceModel, laptop, xeon_176
from repro.runtime import QueuePlacement


def _even_placement(graph, k):
    eligible = [op.index for op in graph if not op.is_source]
    if k == 0:
        return QueuePlacement.empty()
    step = len(eligible) / k
    return QueuePlacement.of(eligible[int(i * step)] for i in range(k))


class TestBasicBounds:
    def test_manual_is_serial_bound(self, chain10, small_machine):
        pm = PerformanceModel(chain10, small_machine)
        est = pm.estimate(QueuePlacement.empty(), 0)
        assert est.limiting_factor == "serial"
        assert est.scheduler_threads_used == 0
        assert est.active_threads == 1

    def test_rejects_negative_threads(self, chain10, small_machine):
        pm = PerformanceModel(chain10, small_machine)
        with pytest.raises(ValueError):
            pm.estimate(QueuePlacement.empty(), -1)

    def test_throughput_positive(self, chain10, small_machine):
        pm = PerformanceModel(chain10, small_machine)
        assert pm.estimate(QueuePlacement.empty(), 0).throughput > 0

    def test_extra_threads_capped_by_regions(
        self, chain10, small_machine
    ):
        pm = PerformanceModel(chain10, small_machine)
        placement = _even_placement(chain10, 2)
        est = pm.estimate(placement, 50)
        assert est.scheduler_threads_used == 2

    def test_estimates_are_cached(self, chain10, small_machine):
        pm = PerformanceModel(chain10, small_machine)
        a = pm.estimate(QueuePlacement.empty(), 0)
        b = pm.estimate(QueuePlacement.empty(), 0)
        assert a is b


class TestPipelineParallelism:
    def test_queues_with_threads_beat_manual(
        self, chain10, small_machine
    ):
        pm = PerformanceModel(chain10, small_machine)
        manual = pm.estimate(QueuePlacement.empty(), 0).throughput
        parallel = pm.estimate(_even_placement(chain10, 4), 4).throughput
        assert parallel > 1.5 * manual

    def test_threads_without_queues_do_nothing(
        self, chain10, small_machine
    ):
        pm = PerformanceModel(chain10, small_machine)
        a = pm.estimate(QueuePlacement.empty(), 0).throughput
        b = pm.estimate(QueuePlacement.empty(), 8).throughput
        assert a == pytest.approx(b)

    def test_interior_optimum_exists(self):
        """Fig. 1: neither 0% nor 100% dynamic is optimal."""
        graph = pipeline(100, cost_flops=100.0, payload_bytes=1024)
        machine = xeon_176().with_cores(16)
        pm = PerformanceModel(graph, machine)
        t_manual = pm.estimate(_even_placement(graph, 0), 0).throughput
        t_mid = max(
            pm.estimate(_even_placement(graph, k), 15).throughput
            for k in (5, 10, 15, 20)
        )
        t_full = pm.estimate(QueuePlacement.full(graph), 15).throughput
        assert t_mid > t_manual
        assert t_mid > t_full

    def test_optimum_shifts_down_with_payload(self):
        """Fig. 9: larger payloads favour fewer scheduler queues."""

        def best_k(payload):
            graph = pipeline(100, payload_bytes=payload)
            machine = xeon_176().with_cores(88)
            pm = PerformanceModel(graph, machine)
            ks = [1, 2, 5, 10, 20, 40, 80, 101]
            return max(
                ks,
                key=lambda k: pm.estimate(
                    _even_placement(graph, k), 87
                ).throughput,
            )

        assert best_k(16384) < best_k(128)


class TestMemoryBandwidth:
    def test_full_dynamic_large_payload_is_memory_bound(self):
        graph = pipeline(100, payload_bytes=16384)
        machine = xeon_176()
        pm = PerformanceModel(graph, machine)
        est = pm.estimate(QueuePlacement.full(graph), 100)
        assert est.limiting_factor == "memory"

    def test_full_dynamic_large_payload_loses_to_manual(self):
        """Fig. 9(a): at 16 KiB, thread count elasticity alone hurts."""
        graph = pipeline(100, payload_bytes=16384)
        machine = xeon_176()
        pm = PerformanceModel(graph, machine)
        manual = pm.estimate(QueuePlacement.empty(), 0).throughput
        best_full = max(
            pm.estimate(QueuePlacement.full(graph), t).throughput
            for t in (8, 16, 32, 64, 128, 176)
        )
        assert best_full < manual

    def test_small_payload_not_memory_bound(self):
        graph = pipeline(100, payload_bytes=1)
        machine = xeon_176()
        pm = PerformanceModel(graph, machine)
        est = pm.estimate(QueuePlacement.full(graph), 100)
        assert est.limiting_factor != "memory"


class TestSinkContention:
    def test_lock_contention_inflates_with_regions(self, dp8):
        machine = laptop(8)
        pm = PerformanceModel(dp8, machine)
        workers = [
            op.index for op in dp8 if op.name.startswith("worker")
        ]
        # Queue all workers, sink stays manual: 8 regions reach the
        # locked sink.
        many = pm.estimate(QueuePlacement.of(workers), 7)
        # Queue sink too: single consumer, no contention.
        with_sink = pm.estimate(
            QueuePlacement.of(workers + [dp8.by_name("snk").index]), 7
        )
        w_many = dict(many.region_work)
        w_sink = dict(with_sink.region_work)
        # The per-worker region work must be strictly higher when the
        # contended sink executes inline.
        assert w_many[workers[0]] > w_sink[workers[0]]

    def test_dynamic_loses_to_manual_on_light_dp(self):
        """Fig. 10: thread count elasticity can be worse than manual."""
        graph = data_parallel(50, cost_flops=100.0, payload_bytes=1024)
        machine = xeon_176()
        pm = PerformanceModel(graph, machine)
        manual = pm.estimate(QueuePlacement.empty(), 0).throughput
        best_full = max(
            pm.estimate(QueuePlacement.full(graph), t).throughput
            for t in (4, 8, 16, 32, 64)
        )
        assert best_full < manual


class TestOversubscription:
    def test_more_threads_than_cores_hurts(self):
        graph = pipeline(64, cost_flops=10_000.0, payload_bytes=64)
        machine = laptop(4)
        pm = PerformanceModel(graph, machine)
        placement = _even_placement(graph, 32)
        at_cores = pm.estimate(placement, 3).throughput
        oversub = pm.estimate(placement, 32).throughput
        assert oversub < at_cores


class TestSinkThroughput:
    def test_sink_rate_uses_selectivity(self, small_machine):
        from repro.graph import GraphBuilder

        b = GraphBuilder("sel")
        src = b.add_source("src")
        tok = b.add_operator("tok", selectivity=4.0)
        snk = b.add_sink("snk")
        b.chain(src, tok, snk)
        g = b.build()
        pm = PerformanceModel(g, small_machine)
        source_rate = pm.estimate(QueuePlacement.empty(), 0).throughput
        sink_rate = pm.sink_throughput(QueuePlacement.empty(), 0)
        assert sink_rate == pytest.approx(4.0 * source_rate)

    def test_invalidate_swaps_graph(self, chain10, small_machine):
        pm = PerformanceModel(chain10, small_machine)
        before = pm.sink_throughput(QueuePlacement.empty(), 0)
        heavier = chain10.replace_costs(
            {op.index: 1e6 for op in chain10 if not op.is_source}
        )
        pm.invalidate(heavier)
        after = pm.sink_throughput(QueuePlacement.empty(), 0)
        assert after < before
