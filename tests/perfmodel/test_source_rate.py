"""Tests for the external source-rate (line rate) bound."""

from __future__ import annotations

import pytest

from repro.des import measure_throughput
from repro.graph import GraphBuilder
from repro.perfmodel import PerformanceModel, laptop
from repro.runtime import QueuePlacement


def _capped_chain(max_rate, n_ops=3, cost=500.0):
    b = GraphBuilder("capped", payload_bytes=64)
    src = b.add_source("src", cost_flops=50.0, max_rate=max_rate)
    prev = src
    for i in range(n_ops):
        op = b.add_operator(f"op{i}", cost_flops=cost)
        b.connect(prev, op)
        prev = op
    snk = b.add_sink("snk", cost_flops=10.0, uses_lock=False)
    b.connect(prev, snk)
    return b.build()


class TestModelBound:
    def test_cap_binds_when_low(self):
        g = _capped_chain(max_rate=1000.0)
        pm = PerformanceModel(g, laptop(4))
        est = pm.estimate(QueuePlacement.empty(), 0)
        assert est.throughput == pytest.approx(1000.0)
        assert est.limiting_factor == "source_rate"

    def test_cap_ignored_when_high(self):
        g = _capped_chain(max_rate=1e12)
        pm = PerformanceModel(g, laptop(4))
        est = pm.estimate(QueuePlacement.empty(), 0)
        assert est.limiting_factor != "source_rate"

    def test_uncapped_is_infinite_bound(self):
        g = _capped_chain(max_rate=None)
        pm = PerformanceModel(g, laptop(4))
        est = pm.estimate(QueuePlacement.empty(), 0)
        assert est.source_rate_bound == float("inf")

    def test_parallelism_cannot_exceed_cap(self):
        g = _capped_chain(max_rate=5000.0, n_ops=6, cost=5000.0)
        pm = PerformanceModel(g, laptop(8))
        eligible = [op.index for op in g if not op.is_source]
        full = QueuePlacement.of(eligible)
        assert pm.estimate(full, 7).throughput <= 5000.0

    def test_rejects_nonpositive_cap(self):
        from repro.graph import Operator

        with pytest.raises(ValueError, match="max_rate"):
            Operator(index=0, name="x", max_rate=0.0)


class TestDesPacing:
    def test_source_paced_to_line_rate(self):
        g = _capped_chain(max_rate=50_000.0, n_ops=2, cost=100.0)
        result = measure_throughput(
            g, laptop(4), QueuePlacement.empty(), 0,
            warmup_s=0.01, measure_s=0.1,
        )
        assert result.source_tuples_per_s == pytest.approx(
            50_000.0, rel=0.05
        )

    def test_unpaced_source_runs_at_compute_speed(self):
        g = _capped_chain(max_rate=None, n_ops=2, cost=100.0)
        result = measure_throughput(
            g, laptop(4), QueuePlacement.empty(), 0,
            warmup_s=0.005, measure_s=0.02,
        )
        assert result.source_tuples_per_s > 1_000_000


class TestPacketAnalysisLineRate:
    def test_line_rate_default(self):
        from repro.apps.packet_analysis import (
            LINE_RATE_TUPLES_PER_S,
            build_packet_analysis,
        )

        g = build_packet_analysis(1)
        assert g.sources[0].max_rate == LINE_RATE_TUPLES_PER_S

    def test_line_rate_disable(self):
        from repro.apps.packet_analysis import build_packet_analysis

        g = build_packet_analysis(1, line_rate_tuples_per_s=None)
        assert g.sources[0].max_rate is None
