"""Tests for contention models."""

from __future__ import annotations

import pytest

from repro.perfmodel import (
    operator_lock_cost,
    pop_cost,
    push_cost,
    queue_sync_cost,
)
from repro.perfmodel.machine import laptop


@pytest.fixture
def m():
    return laptop(8)


class TestQueueSync:
    def test_zero_queues_is_free(self, m):
        assert queue_sync_cost(m, 8, 0) == 0.0

    def test_uncontended_when_spread(self, m):
        # 1 thread over 10 queues: no expected contention.
        assert queue_sync_cost(m, 1, 10) == pytest.approx(
            m.lock_uncontended_s
        )

    def test_contention_grows_with_threads(self, m):
        a = queue_sync_cost(m, 2, 1)
        b = queue_sync_cost(m, 8, 1)
        assert b > a

    def test_contention_shrinks_with_queues(self, m):
        a = queue_sync_cost(m, 8, 1)
        b = queue_sync_cost(m, 8, 8)
        assert b < a


class TestOperatorLock:
    def test_single_thread_uncontended(self, m):
        assert operator_lock_cost(m, 1) == pytest.approx(
            m.lock_uncontended_s
        )

    def test_contenders_add_penalty(self, m):
        assert operator_lock_cost(m, 5) == pytest.approx(
            m.lock_uncontended_s + 4 * m.lock_contended_penalty_s
        )

    def test_monotone_in_threads(self, m):
        costs = [operator_lock_cost(m, k) for k in range(1, 10)]
        assert all(b > a for a, b in zip(costs, costs[1:]))


class TestPopPush:
    def test_pop_includes_scan(self, m):
        few = pop_cost(m, 2, 2)
        many = pop_cost(m, 2, 2000)
        assert many > few

    def test_push_includes_copy(self, m):
        small = push_cost(m, 2, 2, payload_bytes=1)
        big = push_cost(m, 2, 2, payload_bytes=16384)
        assert big > small
        assert big - small == pytest.approx(
            m.copy_time(16384) - m.copy_time(1)
        )

    def test_push_copy_dominates_at_large_payload(self, m):
        cost = push_cost(m, 2, 2, payload_bytes=65536)
        assert m.copy_time(65536) / cost > 0.9
