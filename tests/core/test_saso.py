"""Tests for SASO property analysis."""

from __future__ import annotations

import pytest

from repro.core import analyze, count_oscillations
from repro.runtime import (
    AdaptationTrace,
    Observation,
    ThreadCountChange,
)


def _obs(t, throughput, threads=1, queues=0):
    return Observation(
        time_s=t,
        throughput=throughput,
        true_throughput=throughput,
        threads=threads,
        n_queues=queues,
        mode="stable",
    )


class TestCountOscillations:
    def test_monotone_series_has_none(self):
        series = [(float(i), i) for i in range(10)]
        assert count_oscillations(series, after_s=0.0) == 0

    def test_explore_and_revert_tolerated(self):
        # 1 -> 2 -> 1: trying a value once and reverting is search, not
        # oscillation.
        series = [(0.0, 1), (1.0, 2), (2.0, 1)]
        assert count_oscillations(series, after_s=0.0) == 0

    def test_ping_pong_counts(self):
        # 1 -> 2 -> 1 -> 2 -> 1: value 1 is visited three times (one
        # beyond the explore-and-revert allowance).
        series = [
            (0.0, 1), (1.0, 2), (2.0, 1), (3.0, 2), (4.0, 1),
        ]
        assert count_oscillations(series, after_s=0.0) == 1

    def test_exploration_window_exempt(self):
        series = [(0.0, 1), (1.0, 2), (2.0, 1), (10.0, 1), (11.0, 1)]
        assert count_oscillations(series, after_s=5.0) == 0

    def test_constant_series(self):
        series = [(float(i), 5) for i in range(10)]
        assert count_oscillations(series, after_s=0.0) == 0

    def test_empty(self):
        assert count_oscillations([], after_s=0.0) == 0


class TestAnalyze:
    def _trace(self, values, threads=None):
        t = AdaptationTrace.empty()
        threads = threads or [1] * len(values)
        for i, (v, thr) in enumerate(zip(values, threads)):
            t.observations.append(_obs(5.0 * (i + 1), v, threads=thr))
        return t

    def test_clean_convergence(self):
        values = [100, 200, 400, 500, 500, 500, 500, 500, 500, 500, 500, 500]
        threads = [1, 2, 4, 8, 8, 8, 8, 8, 8, 8, 8, 8]
        trace = self._trace(values, threads)
        report = analyze(trace, reference_throughput=500.0)
        assert report.stability_ok
        assert report.accuracy_ratio == pytest.approx(1.0)
        assert report.overshoot_threads == 0
        assert report.settling_time_s <= 20.0

    def test_overshoot_detected(self):
        values = [100, 200, 400, 500] + [500] * 10
        threads = [1, 4, 32, 8] + [8] * 10
        trace = self._trace(values, threads)
        report = analyze(trace)
        assert report.overshoot_threads == 24

    def test_accuracy_against_reference(self):
        values = [400] * 12
        trace = self._trace(values)
        report = analyze(trace, reference_throughput=500.0)
        assert report.accuracy_ratio == pytest.approx(0.8)

    def test_no_reference_gives_none(self):
        report = analyze(self._trace([1.0] * 10))
        assert report.accuracy_ratio is None

    def test_instability_detected(self):
        trace = self._trace([100] * 20)
        # Thread count ping-pongs long after throughput settled.
        for i, o in enumerate(trace.observations):
            trace.observations[i] = _obs(
                o.time_s, 100, threads=2 if i % 2 else 4
            )
        report = analyze(trace)
        assert not report.stability_ok

    def test_summary_renders(self):
        report = analyze(self._trace([100] * 10), reference_throughput=100.0)
        text = report.summary()
        assert "stability" in text
        assert "accuracy" in text
        assert "overshoot" in text
