"""Scripted scenario tests for the Fig. 7 coordination bookkeeping.

These tests drive the coordinator with hand-crafted throughput
responses and assert the *internal* bookkeeping the paper describes:
history records created on CHANGE, ranges extended on STAY, the
skip-vs-explore decision on thread changes.
"""

from __future__ import annotations

import pytest

from repro.core import Mode, MultiLevelCoordinator
from repro.core.binning import ProfilingGroup
from repro.runtime import ElasticityConfig, QueuePlacement


def _groups(*member_lists):
    return [
        ProfilingGroup(
            members=tuple(m), representative_metric=1000.0 / (gi + 1)
        )
        for gi, m in enumerate(member_lists)
    ]


class Driver:
    def __init__(self, coordinator, fn):
        self.c = coordinator
        self.fn = fn
        self.placement = QueuePlacement.empty()
        self.threads = coordinator.current_threads
        self.log = []

    def step(self):
        observed = self.fn(self.placement, self.threads)
        action = self.c.step(observed)
        if action.set_placement is not None:
            self.placement = action.set_placement
        if action.set_threads is not None:
            self.threads = action.set_threads
        self.log.append(
            (self.c.mode, len(self.placement), self.threads, observed)
        )

    def run(self, n):
        for _ in range(n):
            self.step()
        return self


class TestHistoryBookkeeping:
    def test_change_creates_record_at_current_level(self):
        c = MultiLevelCoordinator(
            config=ElasticityConfig(),
            max_threads=8,
            profile_provider=lambda: _groups([1, 2, 3, 4]),
            seed=0,
        )
        # Queues help strongly: the initial phase ends in CHANGE.
        d = Driver(c, lambda p, t: 100.0 * (1 + len(p)))
        d.run(12)
        assert len(c.history) >= 1
        first = c.history.records[0]
        assert first.placement.n_queues > 0
        # Created at the initial thread level.
        assert first.min_threads == 1

    def test_stay_extends_range_not_new_record(self):
        c = MultiLevelCoordinator(
            config=ElasticityConfig(use_satisfaction_factor=False),
            max_threads=8,
            profile_provider=lambda: _groups([1, 2]),
            seed=0,
        )
        # Queues help up to 2 and then nothing else matters: every
        # later threading-model pass is a STAY.
        d = Driver(c, lambda p, t: 100.0 * (1 + min(len(p), 2)))
        d.run(60)
        assert c.is_stable
        record = c.history.last
        assert record is not None
        # The record's range was extended across the explored thread
        # levels rather than new records being created per level.
        assert record.max_threads > record.min_threads
        assert len(c.history) <= 3

    def test_record_range_covers_settled_level(self):
        c = MultiLevelCoordinator(
            config=ElasticityConfig(),
            max_threads=8,
            profile_provider=lambda: _groups([1, 2, 3, 4]),
            seed=0,
        )
        d = Driver(
            c, lambda p, t: 100.0 * (1 + len(p)) * (1 + min(t, 4))
        )
        d.run(120)
        assert c.is_stable
        record = c.history.last
        assert record is not None
        assert record.min_threads <= d.threads <= record.max_threads


class TestModeSequence:
    def test_init_then_tm_then_tc(self):
        c = MultiLevelCoordinator(
            config=ElasticityConfig(),
            max_threads=8,
            profile_provider=lambda: _groups([1, 2, 3, 4]),
            seed=0,
        )
        d = Driver(c, lambda p, t: 100.0 * (1 + len(p)))
        d.run(20)
        modes = [m for m, _q, _t, _o in d.log]
        # INIT's first action opens a threading-model phase; thread
        # count follows.
        assert modes[0] is Mode.THREADING_MODEL
        assert Mode.THREAD_COUNT in modes

    def test_stable_run_emits_noops(self):
        c = MultiLevelCoordinator(
            config=ElasticityConfig(),
            max_threads=4,
            profile_provider=lambda: _groups([1, 2]),
            seed=0,
        )
        d = Driver(c, lambda p, t: 100.0)
        d.run(80)
        assert c.is_stable
        # Once stable, configuration stops moving entirely.
        tail = d.log[-10:]
        queue_counts = {q for _m, q, _t, _o in tail}
        thread_counts = {t for _m, _q, t, _o in tail}
        assert len(queue_counts) == 1
        assert len(thread_counts) == 1
