"""Tests for the multi-level coordinator (Fig. 7).

The coordinator is tested both in isolation (against a synthetic
throughput function over (placement, threads) configurations) and via
short end-to-end runs on the performance-model substrate.
"""

from __future__ import annotations

from typing import Callable, List

import pytest

from repro.core import Mode, MultiLevelCoordinator
from repro.core.binning import ProfilingGroup
from repro.graph import pipeline
from repro.perfmodel import PerformanceModel, laptop
from repro.runtime import (
    ElasticityConfig,
    ProcessingElement,
    QueuePlacement,
    RuntimeConfig,
)
from repro.runtime.executor import AdaptationExecutor


def _groups(*member_lists):
    return [
        ProfilingGroup(
            members=tuple(m), representative_metric=1000.0 / (gi + 1)
        )
        for gi, m in enumerate(member_lists)
    ]


class SyntheticDriver:
    """Drives a coordinator against f(placement, threads)."""

    def __init__(self, coordinator, throughput_of):
        self.c = coordinator
        self.f = throughput_of
        self.placement = QueuePlacement.empty()
        self.threads = coordinator.current_threads
        self.history: List[tuple] = []

    def run(self, periods):
        for _ in range(periods):
            observed = self.f(self.placement, self.threads)
            action = self.c.step(observed)
            if action.set_placement is not None:
                self.placement = action.set_placement
            if action.set_threads is not None:
                self.threads = action.set_threads
            self.history.append(
                (len(self.placement), self.threads, observed)
            )
        return self


def make_coordinator(groups, max_threads=16, **config_kw):
    config = ElasticityConfig(**config_kw)
    return MultiLevelCoordinator(
        config=config,
        max_threads=max_threads,
        profile_provider=lambda: groups,
        seed=0,
    )


class TestModeFlow:
    def test_starts_with_threading_model(self):
        """Fig. 7 init(): threadingModelElasticity = true first."""
        c = make_coordinator(_groups([1, 2, 3, 4]))
        action = c.step(100.0)
        assert c.mode is Mode.THREADING_MODEL
        assert action.set_placement is not None

    def test_switches_to_thread_count_after_phase(self):
        c = make_coordinator(_groups([1, 2]))
        driver = SyntheticDriver(
            c, lambda p, t: 100.0 * (1 + len(p)) * (1 + 0.5 * t)
        )
        driver.run(10)
        assert Mode.THREAD_COUNT.value in [m.value for m in c.mode_history()]

    def test_reaches_stable(self):
        c = make_coordinator(_groups([1, 2, 3, 4]), max_threads=8)
        driver = SyntheticDriver(
            c,
            lambda p, t: 100.0
            * (1 + len(p))
            * (1 + min(t, len(p) + 1) * 0.5),
        )
        driver.run(80)
        assert c.is_stable

    def test_grows_both_dimensions_on_scalable_workload(self):
        c = make_coordinator(_groups(list(range(1, 9))), max_threads=16)
        driver = SyntheticDriver(
            c,
            lambda p, t: 100.0 * (1 + len(p)) * (1 + min(t, len(p)) ),
        )
        driver.run(100)
        assert len(driver.placement) >= 4
        assert driver.threads > 1


class TestHistoryIntegration:
    def test_history_records_created(self):
        c = make_coordinator(_groups([1, 2, 3, 4]))
        driver = SyntheticDriver(
            c, lambda p, t: 100.0 * (1 + len(p)) * (1 + 0.5 * t)
        )
        driver.run(40)
        assert len(c.history) >= 1

    def test_in_range_thread_change_skips_secondary(self):
        """A thread move inside the recorded range must not trigger a
        threading model phase (learning from history, §3.3)."""
        groups = _groups([1, 2, 3, 4])
        c = make_coordinator(
            groups, max_threads=8, use_satisfaction_factor=False
        )
        # Saturating throughput: queues help up to 2, threads don't.
        driver = SyntheticDriver(
            c, lambda p, t: 100.0 * (1 + min(len(p), 2))
        )
        driver.run(60)
        record = c.history.last
        assert record is not None
        # All visited thread levels are inside the final record range.
        assert record.min_threads <= driver.threads <= record.max_threads


class TestOptimizationFlags:
    def _run(self, **kw):
        c = make_coordinator(
            _groups(list(range(1, 9))), max_threads=16, **kw
        )
        driver = SyntheticDriver(
            c,
            lambda p, t: 100.0 * (1 + len(p)) * (1 + min(t, len(p))),
        )
        driver.run(120)
        return c, driver

    def test_all_variants_converge_similarly(self):
        results = {}
        for name, kw in [
            ("none", dict(use_history=False, use_satisfaction_factor=False)),
            ("history", dict(use_history=True, use_satisfaction_factor=False)),
            ("sf", dict(use_history=True, use_satisfaction_factor=True)),
        ]:
            c, driver = self._run(**kw)
            results[name] = driver.history[-1][2]
        values = list(results.values())
        assert max(values) / min(values) < 1.3

    def test_satisfaction_factor_reduces_tm_phases(self):
        _c_none, d_none = self._run(
            use_history=False, use_satisfaction_factor=False
        )
        _c_sf, d_sf = self._run(
            use_history=True,
            use_satisfaction_factor=True,
            satisfaction_threshold=0.0,
        )
        tm_periods_none = sum(
            1
            for m in _c_none.mode_history()
            if m is Mode.THREADING_MODEL
        )
        tm_periods_sf = sum(
            1 for m in _c_sf.mode_history() if m is Mode.THREADING_MODEL
        )
        assert tm_periods_sf <= tm_periods_none


class TestWorkloadChangeDetection:
    def test_stable_mode_restarts_on_shift(self):
        groups = _groups([1, 2, 3, 4])
        c = make_coordinator(groups, max_threads=8)
        state = {"scale": 1.0}

        def f(p, t):
            return state["scale"] * 100.0 * (1 + min(len(p), 2))

        driver = SyntheticDriver(c, f)
        driver.run(60)
        assert c.is_stable
        state["scale"] = 3.0
        driver.run(10)
        assert not c.is_stable or len(c.mode_history()) > 0
        # It must have left STABLE at some point after the shift.
        recent = c.mode_history()[-8:]
        assert any(m is not Mode.STABLE for m in recent)

    def test_small_fluctuations_do_not_restart(self):
        groups = _groups([1, 2])
        c = make_coordinator(groups, max_threads=4)
        import numpy as np

        rng = np.random.default_rng(0)

        def f(p, t):
            return 200.0 * (1 + rng.normal(0, 0.01))

        driver = SyntheticDriver(c, f)
        driver.run(100)
        assert c.is_stable
        tail = c.mode_history()[-30:]
        assert all(m is Mode.STABLE for m in tail)


class TestEndToEnd:
    def test_on_performance_model(self, small_machine):
        graph = pipeline(20, cost_flops=5000.0, payload_bytes=256)
        config = RuntimeConfig(cores=8, seed=3)
        pe = ProcessingElement(graph, small_machine, config)
        manual = pe.true_throughput()
        executor = AdaptationExecutor(pe)
        result = executor.run(4000, stop_after_stable_periods=12)
        assert result.converged_throughput > 2.0 * manual
        assert 1 <= result.final_threads <= 8
