"""Tests for the satisfaction-factor optimization (§3.3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    SatisfactionSample,
    measured_satisfaction,
    should_skip_secondary,
)


def _sample(prev_t, curr_t, prev_n, new_n):
    return SatisfactionSample(
        prev_throughput=prev_t,
        curr_throughput=curr_t,
        prev_threads=prev_n,
        new_threads=new_n,
    )


class TestValidation:
    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            _sample(1, 1, 0, 1)

    def test_rejects_negative_throughput(self):
        with pytest.raises(ValueError):
            _sample(-1, 1, 1, 2)


class TestMeasuredSatisfaction:
    def test_linear_scaling_is_one(self):
        # 2x threads -> 2x throughput: sf = 1.
        assert measured_satisfaction(_sample(100, 200, 4, 8)) == pytest.approx(
            1.0
        )

    def test_no_gain_is_zero(self):
        assert measured_satisfaction(_sample(100, 100, 4, 8)) == 0.0

    def test_free_win_is_inf(self):
        assert measured_satisfaction(_sample(100, 150, 4, 4)) == math.inf

    def test_free_loss_is_neg_inf(self):
        assert measured_satisfaction(_sample(100, 50, 4, 4)) == -math.inf

    def test_zero_prev_throughput(self):
        assert measured_satisfaction(_sample(0, 50, 4, 8)) == math.inf

    def test_decrease_with_held_throughput_is_zero_gain(self):
        # Fewer threads, same throughput: gain 0 / negative thread gain.
        assert measured_satisfaction(_sample(100, 100, 8, 4)) == 0.0


class TestShouldSkip:
    def test_paper_fig6c_case(self):
        """sf=0.6: doubling threads with >80% gain skips the secondary."""
        assert should_skip_secondary(_sample(100, 185, 8, 16), 0.6)

    def test_disappointing_gain_triggers_secondary(self):
        # Doubling threads for 10% gain at threshold 0.6 -> no skip.
        assert not should_skip_secondary(_sample(100, 110, 8, 16), 0.6)

    def test_threshold_zero_skips_unless_drop(self):
        """Fig. 6(d): sf=0 means only a performance drop triggers."""
        assert should_skip_secondary(_sample(100, 101, 16, 32), 0.0)
        assert not should_skip_secondary(_sample(100, 80, 16, 32), 0.0)

    def test_thread_decrease_with_mild_drop_skips(self):
        # Halving threads while keeping 90% throughput: perf_gain -0.1 >
        # 0.6 * (-0.5) -> skip (the decrease paid off).
        assert should_skip_secondary(_sample(100, 90, 8, 4), 0.6)

    def test_thread_decrease_with_collapse_triggers(self):
        # Halving threads losing 60% throughput: -0.6 < 0.6*-0.5 -> run
        # the secondary adjustment.
        assert not should_skip_secondary(_sample(100, 40, 8, 4), 0.6)

    def test_zero_prev_throughput_skips_on_recovery(self):
        assert should_skip_secondary(_sample(0, 10, 1, 2), 0.6)
        assert not should_skip_secondary(_sample(0, 0, 1, 2), 0.6)

    @given(
        prev_t=st.floats(1, 1e6),
        curr_t=st.floats(0, 1e6),
        prev_n=st.integers(1, 128),
        new_n=st.integers(1, 128),
        thre=st.floats(0, 1),
    )
    def test_property_matches_paper_inequality(
        self, prev_t, curr_t, prev_n, new_n, thre
    ):
        sample = _sample(prev_t, curr_t, prev_n, new_n)
        expected = (curr_t / prev_t - 1.0) > thre * (new_n / prev_n - 1.0)
        assert should_skip_secondary(sample, thre) == expected
