"""Tests for the sampling profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SamplingProfiler
from repro.graph import GraphBuilder, pipeline
from repro.perfmodel import laptop


@pytest.fixture
def machine():
    return laptop(8)


def _weighted_graph():
    """Chain with one op 100x more expensive than the others."""
    b = GraphBuilder("w")
    src = b.add_source("src", cost_flops=1.0)
    light = b.add_operator("light", cost_flops=10.0)
    heavy = b.add_operator("heavy", cost_flops=1000.0)
    snk = b.add_sink("snk", cost_flops=1.0)
    b.chain(src, light, heavy, snk)
    return b.build()


class TestExpectedWeights:
    def test_weights_proportional_to_cost(self, machine):
        g = _weighted_graph()
        profiler = SamplingProfiler(machine)
        w = profiler.expected_weights(g)
        heavy = g.by_name("heavy").index
        light = g.by_name("light").index
        assert w[heavy] / w[light] == pytest.approx(100.0)

    def test_weights_scale_with_rate(self, machine):
        b = GraphBuilder("r")
        src = b.add_source("src", cost_flops=1.0, selectivity=10.0)
        op = b.add_operator("op", cost_flops=100.0)
        snk = b.add_sink("snk", cost_flops=1.0)
        b.chain(src, op, snk)
        g = b.build()
        w = SamplingProfiler(machine).expected_weights(g)
        # op processes 10 tuples per source tuple.
        assert w[op.index] / w[src.index] == pytest.approx(1000.0)


class TestProfile:
    def test_rejects_zero_samples(self, machine):
        with pytest.raises(ValueError):
            SamplingProfiler(machine, n_samples=0)

    def test_counts_sum_to_samples(self, machine):
        profiler = SamplingProfiler(machine, n_samples=500, seed=1)
        profile = profiler.profile(pipeline(20))
        assert sum(profile.as_dict().values()) == 500
        assert profile.n_samples == 500

    def test_heavy_operator_dominates_samples(self, machine):
        g = _weighted_graph()
        profiler = SamplingProfiler(machine, n_samples=2000, seed=2)
        profile = profiler.profile(g)
        counts = profile.as_dict()
        heavy = g.by_name("heavy").index
        assert counts[heavy] > 0.9 * 2000

    def test_seeded_reproducibility(self, machine):
        g = pipeline(10)
        a = SamplingProfiler(machine, n_samples=100, seed=7).profile(g)
        b = SamplingProfiler(machine, n_samples=100, seed=7).profile(g)
        assert a.counts == b.counts

    def test_converges_to_expected_distribution(self, machine):
        g = _weighted_graph()
        profiler = SamplingProfiler(machine, n_samples=100_000, seed=3)
        profile = profiler.profile(g)
        weights = profiler.expected_weights(g)
        total_w = sum(weights.values())
        for idx, count in profile.counts:
            expected = weights[idx] / total_w
            assert count / 100_000 == pytest.approx(expected, abs=0.01)

    def test_metric_lookup(self, machine):
        profile = SamplingProfiler(machine, seed=1).profile(pipeline(5))
        assert profile.metric(1) >= 0
        with pytest.raises(KeyError):
            profile.metric(999)

    def test_nonzero_filter(self, machine):
        g = _weighted_graph()
        profile = SamplingProfiler(machine, n_samples=50, seed=4).profile(g)
        nz = profile.nonzero()
        assert all(c > 0 for c in nz.values())
