"""Tests for the learning-from-history records (§3.3)."""

from __future__ import annotations

import pytest

from repro.core import AdjustmentHistory, AdjustmentRecord, Direction
from repro.runtime import QueuePlacement


class TestRecord:
    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            AdjustmentRecord(
                placement=QueuePlacement.empty(),
                min_threads=8,
                max_threads=4,
            )

    def test_to_continue_within_range(self):
        r = AdjustmentRecord(QueuePlacement.empty(), 4, 16)
        assert r.to_continue(8) is Direction.NONE
        assert r.to_continue(4) is Direction.NONE
        assert r.to_continue(16) is Direction.NONE

    def test_to_continue_above(self):
        r = AdjustmentRecord(QueuePlacement.empty(), 4, 16)
        assert r.to_continue(17) is Direction.UP

    def test_to_continue_below(self):
        r = AdjustmentRecord(QueuePlacement.empty(), 4, 16)
        assert r.to_continue(3) is Direction.DOWN

    def test_extend_widens(self):
        r = AdjustmentRecord(QueuePlacement.empty(), 8, 8)
        r.extend(16)
        r.extend(4)
        assert (r.min_threads, r.max_threads) == (4, 16)
        assert r.to_continue(10) is Direction.NONE


class TestHistory:
    def test_empty_history_direction_is_up(self):
        h = AdjustmentHistory()
        assert h.last is None
        assert h.direction_for(8) is Direction.UP

    def test_create_entry(self):
        h = AdjustmentHistory()
        h.create_entry(QueuePlacement.of([1]), 4)
        assert len(h) == 1
        assert h.last.min_threads == 4
        assert h.last.max_threads == 4

    def test_update_entry_requires_record(self):
        h = AdjustmentHistory()
        with pytest.raises(RuntimeError):
            h.update_entry(4)

    def test_update_entry_extends_last(self):
        h = AdjustmentHistory()
        h.create_entry(QueuePlacement.of([1]), 4)
        h.update_entry(9)
        assert h.direction_for(6) is Direction.NONE
        assert h.direction_for(10) is Direction.UP
        assert h.direction_for(3) is Direction.DOWN

    def test_only_last_record_consulted(self):
        h = AdjustmentHistory()
        h.create_entry(QueuePlacement.of([1]), 1)
        h.update_entry(100)
        h.create_entry(QueuePlacement.of([1, 2]), 50)
        # New record covers only 50; the old wide range is irrelevant.
        assert h.direction_for(10) is Direction.DOWN

    def test_clear(self):
        h = AdjustmentHistory()
        h.create_entry(QueuePlacement.empty(), 1)
        h.clear()
        assert len(h) == 0
        assert h.last is None

    def test_paper_scenario_64_to_96(self):
        """§3.3: placement optimal for both 64 and 96 threads; a later
        decrease to 80 lands inside the range -> skip adjustment."""
        h = AdjustmentHistory()
        h.create_entry(QueuePlacement.of([1, 2, 3]), 64)
        h.update_entry(96)
        assert h.direction_for(80) is Direction.NONE
