"""Warm-start layer: prior/posterior seeding of the coordinators."""

from __future__ import annotations

import pickle

import pytest

from repro.core import Mode, MultiLevelCoordinator
from repro.core.binning import ProfilingGroup
from repro.core.thread_count import ThreadCountElasticity
from repro.core.warmstart import (
    PhaseRecord,
    PhaseStore,
    WarmStartHint,
    WarmStartSession,
    WarmStartSpec,
    make_runner_session,
    quantize_rate,
    resolve_warm_start,
)
from repro.runtime import ElasticityConfig


def _groups(*member_lists):
    return [
        ProfilingGroup(
            members=tuple(m), representative_metric=1000.0 / (gi + 1)
        )
        for gi, m in enumerate(member_lists)
    ]


def make_coordinator(groups, max_threads=16, **config_kw):
    config = ElasticityConfig(**config_kw)
    return MultiLevelCoordinator(
        config=config,
        max_threads=max_threads,
        profile_provider=lambda: groups,
        seed=0,
    )


class StubSession:
    """Hands out one fixed hint and records what settles."""

    def __init__(self, hint):
        self._hint = hint
        self.recorded = []

    def hint(self):
        return self._hint

    def record(self, **kw):
        self.recorded.append(kw)


# ----------------------------------------------------------------------
# mode resolution + spec
# ----------------------------------------------------------------------
class TestResolveWarmStart:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_WARM_START", raising=False)
        assert resolve_warm_start(None, None) == "off"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_START", " Auto ")
        assert resolve_warm_start(None, None) == "auto"

    def test_scenario_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_START", "auto")
        assert resolve_warm_start(None, "history") == "history"

    def test_explicit_beats_scenario(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_START", "auto")
        assert resolve_warm_start("model", "history") == "model"

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_warm_start("sometimes")
        monkeypatch.setenv("REPRO_WARM_START", "bogus")
        with pytest.raises(ValueError):
            resolve_warm_start(None, None)


class TestWarmStartSpec:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            WarmStartSpec(mode="warmish")

    def test_enabled(self):
        assert not WarmStartSpec().enabled
        assert WarmStartSpec(mode="auto").enabled

    def test_picklable_for_pool_workers(self):
        spec = WarmStartSpec(
            mode="auto", store_dir="/tmp/x", phase_rate=quantize_rate
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


# ----------------------------------------------------------------------
# phase store
# ----------------------------------------------------------------------
def _record(threads=4, throughput=100.0):
    return PhaseRecord(
        threads=threads,
        queued=(1, 2),
        throughput=throughput,
        thread_range=(2, threads),
    )


class TestPhaseStore:
    def test_memory_round_trip(self):
        store = PhaseStore()
        assert store.lookup("k") is None
        store.record("k", _record())
        assert store.lookup("k").threads == 4
        assert len(store) == 1

    def test_disk_persists_across_instances(self, tmp_path):
        PhaseStore(str(tmp_path)).record("k", _record(threads=6))
        fresh = PhaseStore(str(tmp_path))
        hit = fresh.lookup("k")
        assert hit is not None and hit.threads == 6

    def test_non_record_disk_payload_is_a_miss(self, tmp_path):
        from repro.bench import cache

        cache.disk_store(
            PhaseStore.KIND, "k", {"not": "a record"},
            directory=str(tmp_path),
        )
        assert PhaseStore(str(tmp_path)).lookup("k") is None


def test_quantize_rate_buckets_near_identical_rates():
    assert quantize_rate(20100.0) == quantize_rate(20400.0) == 20000.0
    assert quantize_rate(20000.0) != quantize_rate(160000.0)


# ----------------------------------------------------------------------
# session
# ----------------------------------------------------------------------
class TestWarmStartSession:
    def test_off_yields_nothing_and_records_nothing(self):
        store = PhaseStore()
        s = WarmStartSession(
            mode="off", phase_key=lambda: "k", store=store
        )
        assert s.hint() is None
        s.record(threads=4, queued=(1,), throughput=10.0)
        assert len(store) == 0

    def test_history_hit_snaps(self):
        store = PhaseStore()
        store.record("k", _record(threads=5, throughput=77.0))
        s = WarmStartSession(
            mode="history", phase_key=lambda: "k", store=store
        )
        hint = s.hint()
        assert hint.snap and hint.source == "history"
        assert hint.threads == 5
        assert hint.thread_range == (2, 5)

    def test_auto_falls_back_to_prior_then_prefers_history(self):
        store = PhaseStore()
        prior_calls = []

        def prior():
            prior_calls.append(1)
            return WarmStartHint(threads=3, queued=(), source="model")

        s = WarmStartSession(
            mode="auto", phase_key=lambda: "k", store=store, prior=prior
        )
        assert s.hint().source == "model"
        s.record(threads=6, queued=(1,), throughput=50.0)
        assert s.hint().source == "history"

    def test_prior_cached_per_phase(self):
        calls = []
        token = ["a"]

        def prior():
            calls.append(1)
            return WarmStartHint(threads=2, queued=(), source="model")

        s = WarmStartSession(
            mode="model", phase_key=lambda: token[0], prior=prior
        )
        s.hint()
        s.hint()
        assert len(calls) == 1  # same phase: prediction replayed
        token[0] = "b"
        s.hint()
        assert len(calls) == 2  # new phase: model re-queried

    def test_make_runner_session_off_is_none(self):
        assert make_runner_session(
            None,
            graph_fn=lambda: None,
            machine=None,
            config=None,
            phase_token=lambda: "t",
        ) is None
        assert make_runner_session(
            WarmStartSpec(mode="off"),
            graph_fn=lambda: None,
            machine=None,
            config=None,
            phase_token=lambda: "t",
        ) is None


# ----------------------------------------------------------------------
# thread-count warm entry
# ----------------------------------------------------------------------
class TestThreadCountWarmStart:
    def test_warm_start_clamps_and_anchors(self):
        tc = ThreadCountElasticity(
            min_threads=1, max_threads=8, initial_threads=1
        )
        tc.warm_start(32)
        assert tc.current == 8
        assert tc._restart_anchor == 8

    def test_warm_start_at_minimum_has_no_anchor(self):
        tc = ThreadCountElasticity(
            min_threads=1, max_threads=8, initial_threads=1
        )
        tc.warm_start(1)
        assert tc._restart_anchor is None

    def test_warm_start_settled_proposes_nothing(self):
        tc = ThreadCountElasticity(
            min_threads=1, max_threads=8, initial_threads=1
        )
        tc.warm_start(4, settled=True)
        assert tc.settled
        assert tc.propose(100.0) is None

    def test_non_minimal_constructor_start_is_anchored(self):
        """The cold-start asymmetry fix: an initial level above the
        minimum arms the guarded downward probe, same as a restart."""
        tc = ThreadCountElasticity(
            min_threads=1, max_threads=8, initial_threads=4
        )
        assert tc._restart_anchor == 4
        assert ThreadCountElasticity(
            min_threads=1, max_threads=8, initial_threads=1
        )._restart_anchor is None


# ----------------------------------------------------------------------
# coordinator warm entry
# ----------------------------------------------------------------------
class TestCoordinatorWarmStart:
    def test_model_hint_enters_thread_count_anchored(self):
        c = make_coordinator(_groups([1, 2], [3, 4]), max_threads=8)
        c.set_warm_start(
            StubSession(
                WarmStartHint(threads=4, queued=(1, 3), source="model")
            )
        )
        action = c.step(100.0)
        assert c.mode is Mode.THREAD_COUNT
        assert action.set_threads == 4
        assert set(action.set_placement.queued) == {1, 3}
        assert c.thread_count._restart_anchor == 4

    def test_history_hint_snaps_to_stable(self):
        c = make_coordinator(_groups([1, 2], [3, 4]), max_threads=8)
        c.set_warm_start(
            StubSession(
                WarmStartHint(
                    threads=6, queued=(1,), source="history", snap=True
                )
            )
        )
        action = c.step(100.0)
        assert c.mode is Mode.STABLE
        assert action.set_threads == 6
        # And it stays stable while throughput holds.
        c.step(100.0)
        c.step(101.0)
        assert c.mode is Mode.STABLE

    def test_hint_queued_filtered_to_profiled_operators(self):
        c = make_coordinator(_groups([1, 2]), max_threads=8)
        c.set_warm_start(
            StubSession(
                WarmStartHint(
                    threads=2, queued=(1, 99), source="history", snap=True
                )
            )
        )
        action = c.step(100.0)
        assert set(action.set_placement.queued) == {1}

    def test_hint_threads_clamped_to_bounds(self):
        c = make_coordinator(_groups([1, 2]), max_threads=4)
        c.set_warm_start(
            StubSession(
                WarmStartHint(threads=64, queued=(), source="model")
            )
        )
        action = c.step(100.0)
        assert action.set_threads == 4

    def test_none_session_and_no_hint_are_stock(self):
        cold = make_coordinator(_groups([1, 2]), max_threads=8)
        nohint = make_coordinator(_groups([1, 2]), max_threads=8)
        nohint.set_warm_start(StubSession(None))
        a, b = cold.step(100.0), nohint.step(100.0)
        assert (a.set_threads, a.note) == (b.set_threads, b.note)
        assert cold.mode is nohint.mode

    def _drive(self, c, f, periods):
        from repro.runtime import QueuePlacement

        placement = QueuePlacement.empty()
        threads = c.current_threads
        for _ in range(periods):
            action = c.step(f(placement, threads))
            if action.set_placement is not None:
                placement = action.set_placement
            if action.set_threads is not None:
                threads = action.set_threads
        return placement, threads

    def test_overshooting_model_hint_is_corrected_downward(self):
        """A prior that overshoots (hint 8 threads, peak at 2) must be
        walked back by the anchored downward probe, not trusted."""
        c = make_coordinator(_groups([1, 2]), max_threads=8)
        c.set_warm_start(
            StubSession(
                WarmStartHint(threads=8, queued=(1, 2), source="model")
            )
        )

        def f(placement, threads):
            return 1000.0 / (1.0 + abs(threads - 2))

        _, threads = self._drive(c, f, 30)
        assert threads < 8

    def test_settle_records_to_session(self):
        session = StubSession(None)
        c = make_coordinator(_groups([1, 2], [3]), max_threads=4)
        c.set_warm_start(session)
        self._drive(
            c, lambda p, t: 100.0 * (1 + len(p)) * (1 + 0.2 * t), 40
        )
        assert c.mode is Mode.STABLE
        assert session.recorded, "settling must report to the session"
        last = session.recorded[-1]
        assert last["threads"] == c.current_threads

    def test_stale_snap_recovers_via_deviation_monitor(self):
        """A snap to a configuration the workload has outgrown must
        fall back to the stock re-exploration path (the phase store
        has no entry for the *new* phase, so the restart is cold)."""
        session = StubSession(
            WarmStartHint(
                threads=2,
                queued=(1,),
                source="history",
                expected_throughput=100.0,
                snap=True,
            )
        )
        c = make_coordinator(_groups([1, 2]), max_threads=8)
        c.set_warm_start(session)
        c.step(100.0)
        assert c.mode is Mode.STABLE
        # The workload moves to a phase the store has never seen.
        session._hint = None
        # Sustained deviation: baseline 100 -> 30.
        for _ in range(6):
            c.step(30.0)
        assert c.mode is not Mode.STABLE


class TestRestartSnapBack:
    def test_workload_change_snaps_back_in_one_period(self):
        """End-to-end posterior: settle, record, deviate, and the
        restart consults the store and lands in STABLE immediately."""
        store = PhaseStore()
        session = WarmStartSession(
            mode="history", phase_key=lambda: "phase-A", store=store
        )
        c = make_coordinator(_groups([1, 2], [3]), max_threads=4)
        c.set_warm_start(session)

        def f(placement, threads):
            return 100.0 * (1 + len(placement)) * (1 + 0.2 * threads)

        placement = None
        threads = c.current_threads
        from repro.runtime import QueuePlacement

        placement = QueuePlacement.empty()
        for _ in range(40):
            action = c.step(f(placement, threads))
            if action.set_placement is not None:
                placement = action.set_placement
            if action.set_threads is not None:
                threads = action.set_threads
        assert c.mode is Mode.STABLE
        assert store.lookup("phase-A") is not None
        settled = (tuple(sorted(placement.queued)), threads)

        # Sustained deviation forces a workload-change restart...
        restarted = False
        for _ in range(8):
            action = c.step(10.0)
            if action.set_placement is not None:
                placement = action.set_placement
            if action.set_threads is not None:
                threads = action.set_threads
            if c.mode is Mode.STABLE and action.set_threads is not None:
                restarted = True
                break
        # ...and the restart snapped straight back to the recorded
        # operating point in a single period.
        assert restarted
        assert (tuple(sorted(placement.queued)), threads) == settled
