"""Tests for trend classification and the throughput sensor."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ThroughputSensor,
    Trend,
    classify_trend,
    significantly_better,
)


class TestClassifyTrend:
    def test_clear_up(self):
        assert classify_trend(100, 110, sens=0.05) is Trend.UP

    def test_clear_down(self):
        assert classify_trend(100, 90, sens=0.05) is Trend.DOWN

    def test_within_sens_is_flat(self):
        assert classify_trend(100, 104, sens=0.05) is Trend.FLAT
        assert classify_trend(100, 96, sens=0.05) is Trend.FLAT

    def test_boundary_is_flat(self):
        # Exactly at the threshold does not establish a trend.
        assert classify_trend(100, 105, sens=0.05) is Trend.FLAT

    def test_zero_previous(self):
        assert classify_trend(0, 10, sens=0.05) is Trend.UP
        assert classify_trend(0, 0, sens=0.05) is Trend.FLAT

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            classify_trend(-1, 10, 0.05)

    def test_negative_rejected_message_names_offenders(self):
        # The message must identify which observation was negative and
        # its value, so a failed adaptation run is debuggable from the
        # traceback alone.
        with pytest.raises(ValueError, match=r"previous=-1.*current=10"):
            classify_trend(-1, 10, 0.05)
        with pytest.raises(
            ValueError, match=r"non-negative.*current=-2\.5"
        ):
            classify_trend(100, -2.5, 0.05)

    @given(
        prev=st.floats(1e-6, 1e9),
        curr=st.floats(0, 1e9),
        sens=st.floats(0, 0.5),
    )
    def test_property_classification_consistency(self, prev, curr, sens):
        trend = classify_trend(prev, curr, sens)
        ratio = curr / prev
        if trend is Trend.UP:
            assert ratio > 1 + sens
        elif trend is Trend.DOWN:
            assert ratio < 1 - sens
        else:
            assert 1 - sens <= ratio <= 1 + sens

    def test_significantly_better_mirrors_up(self):
        assert significantly_better(110, 100, 0.05)
        assert not significantly_better(104, 100, 0.05)


class TestThroughputSensor:
    def test_empty_sensor(self):
        s = ThroughputSensor()
        assert s.latest is None
        assert s.previous is None
        assert s.recent_mean() == 0.0
        assert s.trend(0.05) is Trend.FLAT

    def test_latest_previous(self):
        s = ThroughputSensor()
        s.record(1.0)
        s.record(2.0)
        assert s.latest == 2.0
        assert s.previous == 1.0
        assert s.count == 2

    def test_rejects_negative(self):
        s = ThroughputSensor()
        with pytest.raises(ValueError):
            s.record(-1.0)

    def test_recent_mean_window(self):
        s = ThroughputSensor(window=3)
        for v in (1, 2, 3, 4, 5, 6):
            s.record(float(v))
        assert s.recent_mean() == pytest.approx(5.0)
        assert s.recent_mean(n=2) == pytest.approx(5.5)

    def test_trend(self):
        s = ThroughputSensor()
        s.record(100.0)
        s.record(120.0)
        assert s.trend(0.05) is Trend.UP

    def test_reset(self):
        s = ThroughputSensor()
        s.record(1.0)
        s.reset()
        assert s.count == 0

    def test_history_copy(self):
        s = ThroughputSensor()
        s.record(1.0)
        h = s.history()
        h.append(99.0)
        assert s.count == 1
