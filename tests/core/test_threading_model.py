"""Tests for the threading model elasticity (§3.1, rules R1-R5).

The controller is driven against synthetic throughput functions over
queue placements, exactly as the coordinator would drive it: begin a
phase, then feed one observation per emitted trial placement.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import pytest

from repro.core import (
    AdjustDecision,
    Direction,
    ThreadingModelElasticity,
)
from repro.core.binning import ProfilingGroup
from repro.runtime import QueuePlacement


def drive_phase(
    controller: ThreadingModelElasticity,
    direction: Direction,
    throughput_of: Callable[[QueuePlacement], float],
    max_steps: int = 200,
) -> Tuple[AdjustDecision, QueuePlacement, List[QueuePlacement]]:
    """Run one full phase; returns (decision, final placement, trials)."""
    baseline = throughput_of(controller.placement())
    step = controller.begin_phase(direction, baseline)
    trials = []
    for _ in range(max_steps):
        if step.done:
            return step.decision, step.placement, trials
        trials.append(step.placement)
        step = controller.step(throughput_of(step.placement))
    raise AssertionError("phase did not terminate")


def groups_of(*member_lists) -> List[ProfilingGroup]:
    return [
        ProfilingGroup(
            members=tuple(m), representative_metric=1000.0 / (gi + 1)
        )
        for gi, m in enumerate(member_lists)
    ]


class TestPhaseBasics:
    def test_begin_requires_direction(self):
        tm = ThreadingModelElasticity()
        tm.set_groups(groups_of([1, 2, 3]))
        with pytest.raises(ValueError):
            tm.begin_phase(Direction.NONE, 100.0)

    def test_step_outside_phase_raises(self):
        tm = ThreadingModelElasticity()
        tm.set_groups(groups_of([1, 2]))
        with pytest.raises(RuntimeError):
            tm.step(1.0)

    def test_up_with_everything_saturated_stays(self):
        tm = ThreadingModelElasticity()
        tm.set_groups(
            groups_of([1, 2]),
            current_placement=QueuePlacement.of([1, 2]),
        )
        step = tm.begin_phase(Direction.UP, 100.0)
        assert step.done
        assert step.decision is AdjustDecision.STAY

    def test_down_with_no_queues_stays(self):
        tm = ThreadingModelElasticity()
        tm.set_groups(groups_of([1, 2]))
        step = tm.begin_phase(Direction.DOWN, 100.0)
        assert step.done
        assert step.decision is AdjustDecision.STAY

    def test_no_groups_stays(self):
        tm = ThreadingModelElasticity()
        tm.set_groups([])
        step = tm.begin_phase(Direction.UP, 100.0)
        assert step.done


class TestUpSearch:
    def test_monotone_gain_queues_whole_group_and_continues(self):
        """More queues always better -> both groups fully dynamic."""
        tm = ThreadingModelElasticity(seed=1)
        tm.set_groups(groups_of([1, 2, 3, 4], [5, 6]))
        decision, placement, _trials = drive_phase(
            tm, Direction.UP, lambda p: 100.0 * (1 + len(p))
        )
        assert decision is AdjustDecision.CHANGE
        assert len(placement) == 6

    def test_no_gain_reverts_to_start(self):
        tm = ThreadingModelElasticity(seed=1)
        tm.set_groups(groups_of([1, 2, 3, 4, 5, 6, 7, 8]))
        decision, placement, trials = drive_phase(
            tm, Direction.UP, lambda p: 100.0
        )
        assert decision is AdjustDecision.STAY
        assert len(placement) == 0
        assert trials  # it did explore before reverting

    def test_degradation_reverts_to_start(self):
        tm = ThreadingModelElasticity(seed=1)
        tm.set_groups(groups_of([1, 2, 3, 4, 5, 6, 7, 8]))
        decision, placement, _ = drive_phase(
            tm, Direction.UP, lambda p: 100.0 / (1 + len(p))
        )
        assert decision is AdjustDecision.STAY
        assert len(placement) == 0

    def test_interior_optimum_found(self):
        """Unimodal in queue count: peak at 4 of 16."""
        tm = ThreadingModelElasticity(seed=1)
        tm.set_groups(groups_of(list(range(1, 17))))

        def curve(p):
            k = len(p)
            return float(min(k, max(1, 8 - k)) * 100 + 100)

        decision, placement, _ = drive_phase(tm, Direction.UP, curve)
        assert decision is AdjustDecision.CHANGE
        assert 3 <= len(placement) <= 5

    def test_first_group_explored_first(self):
        tm = ThreadingModelElasticity(seed=1)
        tm.set_groups(groups_of([1, 2], [3, 4]))
        _d, _p, trials = drive_phase(
            tm, Direction.UP, lambda p: 100.0 * (1 + len(p))
        )
        first = trials[0]
        assert set(first.queued) <= {1, 2}

    def test_selection_within_group_is_nested(self):
        """Growing counts reuse previously queued members (subsets)."""
        tm = ThreadingModelElasticity(seed=3)
        tm.set_groups(groups_of(list(range(1, 11))))
        _d, _p, trials = drive_phase(
            tm, Direction.UP, lambda p: 100.0 * (1 + len(p))
        )
        for a, b in zip(trials, trials[1:]):
            small, big = (
                (a, b) if len(a) <= len(b) else (b, a)
            )
            assert small.queued <= big.queued


class TestDownSearch:
    def _saturated(self, *member_lists):
        tm = ThreadingModelElasticity(seed=1)
        all_members = [m for ml in member_lists for m in ml]
        tm.set_groups(
            groups_of(*member_lists),
            current_placement=QueuePlacement.of(all_members),
        )
        return tm

    def test_removal_helps_everything_removed(self):
        tm = self._saturated([1, 2, 3], [4, 5])
        decision, placement, _ = drive_phase(
            tm, Direction.DOWN, lambda p: 100.0 * (10 - len(p))
        )
        assert decision is AdjustDecision.CHANGE
        assert len(placement) == 0

    def test_removal_hurts_stays_full(self):
        tm = self._saturated([1, 2, 3], [4, 5])
        decision, placement, _ = drive_phase(
            tm, Direction.DOWN, lambda p: 100.0 * (1 + len(p))
        )
        assert decision is AdjustDecision.STAY
        assert len(placement) == 5

    def test_down_starts_with_lightest_group(self):
        tm = self._saturated([1, 2], [3, 4])
        _d, _p, trials = drive_phase(
            tm, Direction.DOWN, lambda p: 100.0 * (10 - len(p))
        )
        # The first trial must remove members of the *lightest* group
        # (3, 4) while the heavy group stays queued.
        first = trials[0]
        assert {1, 2} <= first.queued

    def test_interior_optimum_from_above(self):
        tm = self._saturated(list(range(1, 17)))

        def curve(p):
            # Strictly unimodal with peak at 4 queues; no plateaus
            # (two-point trend search cannot cross flat regions).
            k = len(p)
            if k <= 4:
                return 100.0 + 100.0 * k
            return max(50.0, 500.0 - 50.0 * (k - 4))

        decision, placement, _ = drive_phase(tm, Direction.DOWN, curve)
        assert decision is AdjustDecision.CHANGE
        assert 3 <= len(placement) <= 5


class TestNoiseRobustness:
    def test_flat_with_small_noise_stays(self):
        """Noise below SENS must not produce a CHANGE decision."""
        import numpy as np

        rng = np.random.default_rng(42)
        tm = ThreadingModelElasticity(seed=1, sens=0.05)
        tm.set_groups(groups_of(list(range(1, 21))))
        decision, placement, _ = drive_phase(
            tm,
            Direction.UP,
            lambda p: 100.0 * (1 + rng.normal(0, 0.01)),
        )
        assert decision is AdjustDecision.STAY
        assert len(placement) == 0


class TestSetGroups:
    def test_existing_placement_preserved(self):
        tm = ThreadingModelElasticity(seed=1)
        placement = QueuePlacement.of([2, 5])
        tm.set_groups(groups_of([1, 2, 3], [4, 5, 6]), placement)
        assert tm.placement().queued == placement.queued
        assert tm.counts == (1, 1)

    def test_placement_property_matches_counts(self):
        tm = ThreadingModelElasticity(seed=1)
        tm.set_groups(groups_of([1, 2, 3]))
        assert len(tm.placement()) == 0
