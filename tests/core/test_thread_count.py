"""Tests for the thread-count elastic controller.

The controller is driven against synthetic throughput curves; a small
driver loop feeds it the curve value for its current level until it
settles, recording the visited levels.
"""

from __future__ import annotations

import math

import pytest

from repro.core import ThreadCountElasticity


def drive(controller, curve, max_steps=100):
    """Feed `curve(level)` to the controller until it settles."""
    visited = [controller.current]
    for _ in range(max_steps):
        proposal = controller.propose(curve(controller.current))
        if proposal is not None:
            visited.append(proposal)
        elif controller.settled:
            break
    return visited


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ThreadCountElasticity(min_threads=0)
        with pytest.raises(ValueError):
            ThreadCountElasticity(min_threads=8, max_threads=4)
        with pytest.raises(ValueError):
            ThreadCountElasticity(
                min_threads=1, max_threads=4, initial_threads=8
            )

    def test_rejects_negative_observation(self):
        c = ThreadCountElasticity(max_threads=8)
        with pytest.raises(ValueError):
            c.propose(-1.0)


class TestMonotoneCurves:
    def test_climbs_to_max_when_linear(self):
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        drive(c, lambda n: float(n))
        assert c.settled
        assert c.current == 64

    def test_explores_geometrically(self):
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        visited = drive(c, lambda n: float(n))
        assert visited[:7] == [1, 2, 4, 8, 16, 32, 64]

    def test_stays_at_min_when_flat(self):
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        drive(c, lambda n: 100.0)
        assert c.settled
        # Flat curve: the first doubling shows no improvement and the
        # refinement collapses back to the minimum (overshoot
        # avoidance).
        assert c.current <= 2

    def test_single_level_settles_immediately(self):
        c = ThreadCountElasticity(min_threads=4, max_threads=4,
                                  initial_threads=4)
        assert c.propose(10.0) is None
        assert c.settled


class TestUnimodalCurves:
    @pytest.mark.parametrize("peak", [6, 12, 24, 48])
    def test_finds_neighborhood_of_peak(self, peak):
        # Tent curve: strong relative gains while climbing, clear
        # degradation past the peak -- the shape real scaling has.
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        drive(c, lambda n: float(min(n, max(1, 2 * peak - n))))
        assert c.settled
        # Within the refinement granularity of the peak.
        assert abs(c.current - peak) <= max(2, round(0.25 * peak))

    def test_settles_on_best_measured(self):
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        curve = lambda n: float(min(n, max(1, 32 - n)))
        drive(c, curve)
        best_measured = max(
            (lv for lv in range(1, 65) if c.measurement(lv) is not None),
            key=lambda lv: c.measurement(lv),
        )
        assert c.current == best_measured


class TestRebaseAndReset:
    def test_rebase_overwrites_measurement(self):
        c = ThreadCountElasticity(max_threads=8)
        c.propose(100.0)
        c.rebase(500.0)
        assert c.measurement(c.current) is not None

    def test_reset_restarts_exploration(self):
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        drive(c, lambda n: float(n))
        assert c.settled
        c.reset()
        assert not c.settled

    def test_reset_explores_upward_first(self):
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        drive(c, lambda n: float(min(n, max(1, 16 - n))))
        level_before = c.current
        c.reset()
        proposal = c.propose(100.0)
        assert proposal is not None and proposal > level_before

    def test_reset_can_adapt_downward(self):
        """After a workload shrink the optimum may be below the anchor."""
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        drive(c, lambda n: float(min(n, max(1, 64 - n))))
        anchor = c.current
        assert anchor >= 24
        c.reset()
        # New workload peaks at 4 threads.
        drive(c, lambda n: max(1.0, 1000.0 - (n - 4) ** 2))
        assert c.settled
        assert c.current < anchor


class TestSensitivity:
    def test_small_gains_below_sens_do_not_drive_up(self):
        # 1% gain per doubling is below the 5% SENS threshold.
        c = ThreadCountElasticity(min_threads=1, max_threads=64, sens=0.05)
        drive(c, lambda n: 100.0 * (1.0 + 0.01 * math.log2(n or 1)))
        assert c.current <= 2

    def test_lower_sens_chases_small_gains(self):
        c = ThreadCountElasticity(
            min_threads=1, max_threads=64, sens=0.001
        )
        drive(c, lambda n: 100.0 + n * 0.5)
        assert c.current == 64
