"""Tests for the rejected threading-model-primary coordinator (§3.2)."""

from __future__ import annotations

import pytest

from repro.core.alt_coordinator import AltMode, ThreadingPrimaryCoordinator
from repro.core.binning import ProfilingGroup
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import (
    ElasticityConfig,
    ProcessingElement,
    QueuePlacement,
    RuntimeConfig,
)
from repro.runtime.executor import AdaptationExecutor


def _groups(*member_lists):
    return [
        ProfilingGroup(
            members=tuple(m), representative_metric=1000.0 / (gi + 1)
        )
        for gi, m in enumerate(member_lists)
    ]


class SyntheticDriver:
    def __init__(self, coordinator, throughput_of):
        self.c = coordinator
        self.f = throughput_of
        self.placement = QueuePlacement.empty()
        self.threads = coordinator.current_threads
        self.thread_history = []

    def run(self, periods):
        for _ in range(periods):
            observed = self.f(self.placement, self.threads)
            action = self.c.step(observed)
            if action.set_placement is not None:
                self.placement = action.set_placement
            if action.set_threads is not None:
                self.threads = action.set_threads
            self.thread_history.append(self.threads)
        return self


def make(groups, max_threads=16):
    return ThreadingPrimaryCoordinator(
        config=ElasticityConfig(),
        max_threads=max_threads,
        profile_provider=lambda: groups,
        seed=0,
    )


class TestFlow:
    def test_first_action_opens_outer_trial_and_inner_search(self):
        c = make(_groups([1, 2, 3, 4]))
        action = c.step(100.0)
        # The rejected design restarts the inner thread search for the
        # first trial placement.
        assert action.set_placement is not None
        assert action.set_threads is not None
        assert c.mode is AltMode.INNER_THREADS

    def test_reaches_stable(self):
        c = make(_groups([1, 2, 3, 4]))
        driver = SyntheticDriver(
            c,
            lambda p, t: 100.0 * (1 + len(p)) * (1 + min(t, len(p) + 1)),
        )
        driver.run(200)
        assert c.is_stable

    def test_inner_search_climbs_to_degradation(self):
        """The paper's objection: the inner loop repeatedly explores up
        to the point of degradation, holding many threads."""
        c = make(_groups([1, 2, 3, 4, 5, 6, 7, 8]), max_threads=32)
        driver = SyntheticDriver(
            c,
            lambda p, t: 100.0
            * (1 + len(p))
            * (1 + min(t, 4) - 0.2 * max(0, t - 4)),
        )
        driver.run(200)
        # The inner search visited thread counts well beyond the
        # optimum (4) at least once.
        assert max(driver.thread_history) >= 8

    def test_converges_on_scalable_workload(self):
        c = make(_groups([1, 2, 3, 4, 5, 6]), max_threads=8)
        driver = SyntheticDriver(
            c, lambda p, t: 100.0 * (1 + len(p)) * (1 + min(t, len(p)))
        )
        driver.run(300)
        assert c.is_stable
        assert len(driver.placement) >= 3


class TestWithExecutor:
    def test_drives_simulated_pe(self, small_machine):
        graph = pipeline(16, cost_flops=5000.0, payload_bytes=128)
        config = RuntimeConfig(cores=8, seed=1)
        pe = ProcessingElement(graph, small_machine, config)
        manual = pe.true_throughput()
        coordinator = ThreadingPrimaryCoordinator(
            config=config.elasticity,
            max_threads=8,
            profile_provider=pe.profiling_groups,
            seed=1,
        )
        executor = AdaptationExecutor(pe, coordinator=coordinator)
        result = executor.run(6000, stop_after_stable_periods=12)
        # The rejected design still works; it is just slower/noisier.
        assert result.converged_throughput > 1.3 * manual
