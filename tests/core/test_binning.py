"""Tests for logarithmic binning into profiling groups."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SamplingProfiler, build_groups, validate_groups
from repro.core.profiler import CostProfile
from repro.graph import assign_costs, pipeline, skewed
from repro.perfmodel import laptop


def _profile_from(counts):
    return CostProfile(
        counts=tuple(sorted(counts.items())),
        n_samples=sum(counts.values()),
    )


class TestBuildGroups:
    def test_rejects_bad_base(self):
        g = pipeline(3)
        profile = _profile_from({1: 1, 2: 1, 3: 1, 4: 1})
        with pytest.raises(ValueError):
            build_groups(g, profile, base=1.0)

    def test_same_decade_one_group(self):
        g = pipeline(4)  # queueable: ops 1-4 and sink 5
        profile = _profile_from({1: 50, 2: 30, 3: 70, 4: 55, 5: 20})
        groups = build_groups(g, profile)
        # All within 10x of the max (70) -> single group.
        assert len(groups) == 1
        assert len(groups[0]) == 5

    def test_decade_separation(self):
        g = pipeline(4)
        profile = _profile_from({1: 1000, 2: 900, 3: 50, 4: 40, 5: 2})
        groups = build_groups(g, profile)
        assert [sorted(gr.members) for gr in groups] == [
            [1, 2],
            [3, 4],
            [5],
        ]

    def test_groups_ordered_by_descending_cost(self):
        g = pipeline(4)
        profile = _profile_from({1: 1, 2: 1000, 3: 50, 4: 1, 5: 1})
        groups = build_groups(g, profile)
        metrics = [gr.representative_metric for gr in groups]
        assert metrics == sorted(metrics, reverse=True)

    def test_zero_metric_operators_form_lightest_group(self):
        g = pipeline(4)
        profile = _profile_from({1: 100, 2: 100, 3: 0, 4: 0, 5: 0})
        groups = build_groups(g, profile)
        assert sorted(groups[-1].members) == [3, 4, 5]
        assert groups[-1].representative_metric == 0.0

    def test_scale_invariance(self):
        """Multiplying every count by a constant must not change groups."""
        g = pipeline(6)
        base = {1: 500, 2: 450, 3: 40, 4: 35, 5: 3, 6: 2, 7: 1}
        a = build_groups(g, _profile_from(base))
        scaled = {k: v * 17 for k, v in base.items()}
        b = build_groups(g, _profile_from(scaled))
        assert [gr.members for gr in a] == [gr.members for gr in b]

    def test_groups_partition_queueable(self):
        g = pipeline(10)
        machine = laptop(4)
        profile = SamplingProfiler(machine, n_samples=300, seed=0).profile(g)
        groups = build_groups(g, profile)
        validate_groups(g, groups)  # raises on failure

    def test_skewed_distribution_forms_three_main_groups(self):
        g = assign_costs(
            pipeline(100), skewed(), rng=np.random.default_rng(0)
        )
        machine = laptop(4)
        profile = SamplingProfiler(
            machine, n_samples=50_000, seed=1
        ).profile(g)
        groups = build_groups(g, profile)
        # Heavy ops: 10 operators at 10000 FLOPs must land together in
        # the top group.
        heavy = [
            op.index for op in g if op.cost_flops == 10_000.0
        ]
        assert set(heavy) <= set(groups[0].members)


class TestValidateGroups:
    def test_detects_overlap(self):
        g = pipeline(3)
        profile = _profile_from({1: 10, 2: 10, 3: 10, 4: 10})
        groups = build_groups(g, profile)
        bad = groups + [groups[0]]
        with pytest.raises(ValueError, match="appears in groups"):
            validate_groups(g, bad)

    def test_detects_omission(self):
        g = pipeline(3)
        from repro.core.binning import ProfilingGroup

        groups = [ProfilingGroup(members=(1, 2), representative_metric=1)]
        with pytest.raises(ValueError, match="partition"):
            validate_groups(g, groups)

    def test_group_dunder_methods(self):
        from repro.core.binning import ProfilingGroup

        gr = ProfilingGroup(members=(1, 2, 3), representative_metric=5.0)
        assert len(gr) == 3
        assert 2 in gr
        assert 9 not in gr
