"""Hypothesis property tests on the elastic controllers.

Invariants that must hold for *any* throughput response, not just the
benchmark curves: bounds are respected, termination happens, placements
remain consistent with group state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Direction, ThreadCountElasticity
from repro.core.binning import ProfilingGroup
from repro.core.threading_model import ThreadingModelElasticity


class TestThreadCountProperties:
    @given(
        seed=st.integers(0, 10_000),
        min_threads=st.integers(1, 4),
        max_threads=st.integers(8, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_levels_always_within_bounds(
        self, seed, min_threads, max_threads
    ):
        rng = np.random.default_rng(seed)
        c = ThreadCountElasticity(
            min_threads=min_threads, max_threads=max_threads
        )
        for _ in range(120):
            assert min_threads <= c.current <= max_threads
            proposal = c.propose(float(rng.uniform(0, 1000)))
            if proposal is not None:
                assert min_threads <= proposal <= max_threads

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_terminates_on_random_responses(self, seed):
        """Even with adversarially random throughput, the search settles
        within a bounded number of periods."""
        rng = np.random.default_rng(seed)
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        for step in range(200):
            if c.settled:
                break
            c.propose(float(rng.uniform(0, 1000)))
        assert c.settled

    @given(
        peak=st.integers(2, 60),
        noise_seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_settles_on_significantly_suboptimal_measured_level(
        self, peak, noise_seed
    ):
        """The settled level is within SENS of the best *measured* one."""
        c = ThreadCountElasticity(min_threads=1, max_threads=64)
        curve = lambda n: float(min(n, max(1, 2 * peak - n)))
        for _ in range(100):
            if c.settled:
                break
            c.propose(curve(c.current))
        assert c.settled
        measured = {
            lv: c.measurement(lv)
            for lv in range(1, 65)
            if c.measurement(lv) is not None
        }
        best = max(measured.values())
        assert measured[c.current] >= best / (1 + c.sens) - 1e-9


def _groups_of_sizes(sizes):
    groups = []
    next_idx = 1
    for gi, size in enumerate(sizes):
        members = tuple(range(next_idx, next_idx + size))
        next_idx += size
        groups.append(
            ProfilingGroup(
                members=members,
                representative_metric=1000.0 / (gi + 1),
            )
        )
    return groups


class TestThreadingModelProperties:
    @given(
        sizes=st.lists(st.integers(1, 12), min_size=1, max_size=4),
        seed=st.integers(0, 10_000),
        direction=st.sampled_from([Direction.UP, Direction.DOWN]),
    )
    @settings(max_examples=60, deadline=None)
    def test_phase_terminates_and_placement_is_subset(
        self, sizes, seed, direction
    ):
        rng = np.random.default_rng(seed)
        groups = _groups_of_sizes(sizes)
        all_members = {m for g in groups for m in g.members}
        tm = ThreadingModelElasticity(seed=seed)
        if direction is Direction.DOWN:
            from repro.runtime import QueuePlacement

            tm.set_groups(
                groups, QueuePlacement.of(sorted(all_members))
            )
        else:
            tm.set_groups(groups)
        step = tm.begin_phase(direction, float(rng.uniform(1, 100)))
        for _ in range(300):
            if step.done:
                break
            assert set(step.placement.queued) <= all_members
            step = tm.step(float(rng.uniform(1, 100)))
        assert step.done
        assert set(step.placement.queued) <= all_members

    @given(
        sizes=st.lists(st.integers(1, 10), min_size=1, max_size=3),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_always_match_placement(self, sizes, seed):
        rng = np.random.default_rng(seed)
        groups = _groups_of_sizes(sizes)
        tm = ThreadingModelElasticity(seed=seed)
        tm.set_groups(groups)
        step = tm.begin_phase(Direction.UP, 50.0)
        for _ in range(200):
            assert sum(tm.counts) == len(tm.placement())
            if step.done:
                break
            step = tm.step(float(rng.uniform(1, 100)))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_flat_response_is_stay(self, seed):
        """With a perfectly flat objective, every phase must STAY."""
        from repro.core.threading_model import AdjustDecision

        groups = _groups_of_sizes([8, 4])
        tm = ThreadingModelElasticity(seed=seed)
        tm.set_groups(groups)
        step = tm.begin_phase(Direction.UP, 100.0)
        for _ in range(100):
            if step.done:
                break
            step = tm.step(100.0)
        assert step.decision is AdjustDecision.STAY
        assert len(step.placement) == 0
