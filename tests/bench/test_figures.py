"""Tests for the per-figure experiment definitions (small parameters).

The full grids run under ``benchmarks/``; these tests exercise the
experiment *code paths* and result invariants quickly.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    fig01_motivation,
    fig06_adaptation,
    fig10_data_parallel,
    fig12_bushy,
    fig13_phase_change,
    sec311_period_sweep,
)


class TestFig01:
    @pytest.fixture(scope="class")
    def results(self):
        return fig01_motivation(
            payloads=(1024,),
            cores=(16,),
            n_operators=50,
            fractions=(0.0, 0.2, 0.5, 1.0),
        )

    def test_one_result_per_config(self, results):
        assert len(results) == 1

    def test_sweep_covers_fractions(self, results):
        assert [row[0] for row in results[0].sweep] == [
            0.0, 0.2, 0.5, 1.0,
        ]

    def test_derived_properties(self, results):
        r = results[0]
        assert r.manual_throughput == r.sweep[0][2]
        assert r.full_dynamic_throughput == r.sweep[-1][2]
        assert r.best_sweep_throughput == max(t for _f, _n, t in r.sweep)
        assert 0.0 <= r.auto_fraction <= 1.0


class TestFig06:
    def test_four_variants(self):
        results = fig06_adaptation(n_operators=60, duration_s=4000.0)
        assert [r.variant for r in results] == [
            "no-opt",
            "history",
            "history+sf0.6",
            "history+sf0",
        ]
        for r in results:
            assert r.converged_throughput > 0
            assert r.trace.observations


class TestFig10:
    def test_small_grid(self):
        comps = fig10_data_parallel(widths=(10,), payloads=(1024,))
        assert len(comps) == 1
        c = comps[0]
        assert c.manual.throughput > 0
        assert c.workload == "dp(10) 1024B"


class TestFig12:
    def test_small_grid(self):
        comps = fig12_bushy(cores=(16,), costs=(100.0,))
        assert len(comps) == 1
        assert "bushy82" in comps[0].workload


class TestFig13:
    def test_phase_change_result_fields(self):
        r = fig13_phase_change(
            n_operators=40,
            change_time_s=400.0,
            total_duration_s=1500.0,
        )
        assert r.change_time_s == 400.0
        assert r.threads_before >= 1
        assert r.threads_after >= 1
        assert r.trace.duration_s == pytest.approx(1500.0)


class TestSec311:
    def test_period_sweep_keys(self):
        out = sec311_period_sweep(
            periods_s=(5.0, 20.0), n_operators=40
        )
        assert set(out) == {5.0, 20.0}
        assert all(v > 0 for v in out.values())
