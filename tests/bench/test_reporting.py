"""Tests for ASCII reporting."""

from __future__ import annotations

import math

from repro.bench import app_table, comparison_table, format_table
from repro.bench.harness import BaselineResult, Comparison


def _result(label, throughput, threads=1, queues=0, ratio=0.0):
    return BaselineResult(
        label=label,
        throughput=throughput,
        threads=threads,
        n_queues=queues,
        dynamic_ratio=ratio,
    )


def _comparison(with_hand=False):
    return Comparison(
        workload="w",
        manual=_result("manual", 100.0),
        dynamic=_result("dynamic", 300.0, threads=8, queues=10, ratio=1.0),
        multi_level=_result(
            "multi-level", 500.0, threads=4, queues=3, ratio=0.3
        ),
        hand_optimized=(
            _result("hand", 250.0, threads=9, queues=9) if with_hand else None
        ),
    )


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(
            ["a", "bb"], [[1, 2.5], [30, 4444.0]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [[1234.5], [0.567], [12.34], [0.0]])
        assert "1,234" in out
        assert "0.57" in out
        assert "12.3" in out

    def test_handles_strings(self):
        out = format_table(["x"], [["hello"]])
        assert "hello" in out


class TestComparisonTable:
    def test_contains_speedups(self):
        out = comparison_table([_comparison()], title="Fig")
        assert "Fig" in out
        assert "5.00" in out  # multi/manual speedup
        assert "3.00" in out  # dynamic/manual speedup

    def test_multi_over_dynamic(self):
        c = _comparison()
        assert c.multi_over_dynamic == 500.0 / 300.0


class TestAppTable:
    def test_includes_hand_columns(self):
        out = app_table([_comparison(with_hand=True)])
        assert "hand" in out
        assert "2.00" in out  # multi/hand = 500/250

    def test_missing_hand_is_nan(self):
        out = app_table([_comparison(with_hand=False)])
        assert "nan" in out
