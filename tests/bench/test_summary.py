"""Tests for the results-summary generator."""

from __future__ import annotations

import pytest

from repro.bench.summary import collect_summary, main


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig01_motivation.txt").write_text("table A\n")
    (d / "custom_extra.txt").write_text("table B\n")
    return d


class TestCollectSummary:
    def test_known_files_in_order(self, results_dir):
        text = collect_summary(results_dir)
        assert text.index("fig01_motivation") < text.index("custom_extra")
        assert "table A" in text
        assert "table B" in text

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_summary(tmp_path / "nope")

    def test_explicit_names_filter(self, results_dir):
        text = collect_summary(
            results_dir, names=["fig01_motivation"]
        )
        assert "table A" in text
        # Unknown-but-present files are still appended.
        assert "custom_extra" in text

    def test_main_writes_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "summary.md"
        code = main([str(results_dir), str(out)])
        assert code == 0
        assert out.exists()
        assert "table A" in out.read_text()

    def test_main_prints_without_output(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "table A" in capsys.readouterr().out
