"""Tests for the ablation experiment implementations (small scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.ablations import (
    AblationResult,
    ablate_binning,
    ablate_coordination,
    ablate_primary_order,
    ablate_sens,
    ablate_start_direction,
)
from repro.graph import assign_costs, pipeline, skewed
from repro.perfmodel import xeon_176


@pytest.fixture(scope="module")
def graph():
    return assign_costs(
        pipeline(60, payload_bytes=1024),
        skewed(),
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="module")
def machine():
    return xeon_176().with_cores(16)


class TestStartDirection:
    def test_two_arms(self, graph, machine):
        results = ablate_start_direction(graph, machine)
        assert [r.arm for r in results] == [
            "start-minimum",
            "start-maximum",
        ]
        for r in results:
            assert r.converged_throughput > 0

    def test_maximum_start_begins_fully_dynamic(self, graph, machine):
        results = ablate_start_direction(graph, machine)
        maximum = results[1]
        # Started at full placement; the trace should include periods
        # with a large queue count.
        assert maximum.final_n_queues >= 0  # sanity
        assert maximum.saso.max_threads_used == machine.logical_cores


class TestCoordination:
    def test_iterative_beats_one_shot(self, graph, machine):
        results = ablate_coordination(graph, machine)
        by_arm = {r.arm: r for r in results}
        assert (
            by_arm["iterative"].converged_throughput
            >= by_arm["one-shot"].converged_throughput
        )


class TestBinning:
    def test_two_arms_complete(self, graph, machine):
        results = ablate_binning(graph, machine)
        assert {r.arm for r in results} == {
            "log-binning",
            "per-operator",
        }


class TestPrimaryOrder:
    def test_metrics_populated(self, graph, machine):
        results = ablate_primary_order(graph, machine)
        by_arm = {r.arm: r for r in results}
        adopted = by_arm["thread-count-primary"]
        rejected = by_arm["threading-model-primary"]
        assert adopted.mean_threads > 0
        assert rejected.mean_threads > 0
        assert adopted.converged_throughput > 0
        assert rejected.converged_throughput > 0


class TestSensSweep:
    def test_keys_match_requested(self, graph, machine):
        out = ablate_sens(
            graph, machine, sens_values=(0.05, 0.2), noise_std=0.02
        )
        assert set(out) == {0.05, 0.2}
        for r in out.values():
            assert isinstance(r, AblationResult)
            assert r.converged_throughput > 0
