"""Tests for the ASCII adaptation-timeline renderer."""

from __future__ import annotations

import pytest

from repro.bench.timeline import render_timeline
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import (
    AdaptationTrace,
    Observation,
    ProcessingElement,
    RuntimeConfig,
)
from repro.runtime.executor import AdaptationExecutor


@pytest.fixture
def trace(small_machine, fast_config):
    pe = ProcessingElement(
        pipeline(10, cost_flops=2000.0), small_machine, fast_config
    )
    return AdaptationExecutor(pe).run(800).trace


class TestRenderTimeline:
    def test_contains_three_series(self, trace):
        out = render_timeline(trace, title="T")
        assert out.startswith("T")
        assert "threads" in out
        assert "throughput" in out
        assert "queues" in out
        assert "settling" in out

    def test_empty_trace(self):
        out = render_timeline(AdaptationTrace.empty())
        assert "empty trace" in out

    def test_width_respected(self, trace):
        out = render_timeline(trace, width=40)
        for line in out.splitlines():
            if line.startswith("throughput"):
                # "throughput " prefix + <=40 chars + suffix annotation
                bar = line.split("  ")[0][len("throughput "):]
                assert len(bar) <= 40

    def test_peak_annotations(self, trace):
        out = render_timeline(trace)
        assert "peak" in out

    def test_thread_labels_present(self, trace):
        out = render_timeline(trace)
        threads_line = next(
            l for l in out.splitlines() if l.startswith("threads")
        )
        # The initial thread count (1) must be labelled.
        assert "1" in threads_line

    def test_long_trace_downsampled(self, small_machine, fast_config):
        pe = ProcessingElement(
            pipeline(10, cost_flops=2000.0), small_machine, fast_config
        )
        long_trace = AdaptationExecutor(pe).run(50_000).trace
        out = render_timeline(long_trace, width=60)
        for line in out.splitlines():
            assert len(line) < 130
