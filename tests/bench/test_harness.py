"""Tests for the benchmark harness baselines."""

from __future__ import annotations

import pytest

from repro.bench import (
    compare,
    oracle_sweep,
    run_dynamic_only,
    run_hand_optimized,
    run_manual,
    run_multi_level,
)
from repro.graph import pipeline
from repro.perfmodel import laptop
from repro.runtime import QueuePlacement, RuntimeConfig


@pytest.fixture
def graph():
    return pipeline(20, cost_flops=2000.0, payload_bytes=256)


@pytest.fixture
def machine():
    return laptop(8)


class TestBaselines:
    def test_manual_uses_source_threads_only(self, graph, machine):
        r = run_manual(graph, machine)
        assert r.label == "manual"
        assert r.threads == 1
        assert r.n_queues == 0
        assert r.dynamic_ratio == 0.0
        assert r.throughput > 0

    def test_hand_optimized_fixed_config(self, graph, machine):
        placement = QueuePlacement.of([5, 10, 15])
        r = run_hand_optimized(graph, machine, placement, 3)
        assert r.threads == 3
        assert r.n_queues == 3

    def test_dynamic_only_full_placement(self, graph, machine):
        r = run_dynamic_only(graph, machine)
        assert r.dynamic_ratio == 1.0
        assert r.n_queues == 21
        assert 1 <= r.threads <= machine.logical_cores

    def test_dynamic_only_beats_manual_on_parallel_graph(
        self, graph, machine
    ):
        manual = run_manual(graph, machine)
        dynamic = run_dynamic_only(graph, machine)
        assert dynamic.throughput > manual.throughput

    def test_multi_level_returns_trace(self, graph, machine):
        r = run_multi_level(
            graph, machine, RuntimeConfig(cores=8, seed=1)
        )
        assert r.trace is not None
        assert r.trace.observations

    def test_multi_level_beats_manual(self, graph, machine):
        manual = run_manual(graph, machine)
        multi = run_multi_level(
            graph, machine, RuntimeConfig(cores=8, seed=1)
        )
        assert multi.throughput > 1.5 * manual.throughput


class TestCompare:
    def test_compare_bundles_everything(self, graph, machine):
        c = compare(
            graph,
            machine,
            RuntimeConfig(cores=8, seed=1),
            hand=(QueuePlacement.of([5, 10, 15]), 3),
            workload="test",
        )
        assert c.workload == "test"
        assert c.hand_optimized is not None
        assert c.multi_level_speedup > 1.0
        assert c.dynamic_speedup > 0
        assert c.multi_over_dynamic > 0

    def test_speedup_ratios(self, graph, machine):
        c = compare(graph, machine, RuntimeConfig(cores=8, seed=1))
        assert c.multi_level_speedup == pytest.approx(
            c.multi_level.throughput / c.manual.throughput
        )


class TestOracleSweep:
    def test_rows_cover_fractions(self, graph, machine):
        rows = oracle_sweep(graph, machine, fractions=(0.0, 0.5, 1.0))
        assert [r[0] for r in rows] == [0.0, 0.5, 1.0]

    def test_zero_fraction_matches_manual(self, graph, machine):
        rows = oracle_sweep(graph, machine, fractions=(0.0,))
        manual = run_manual(graph, machine)
        assert rows[0][2] == pytest.approx(manual.throughput)

    def test_best_interior_beats_extremes(self):
        g = pipeline(100, payload_bytes=1024)
        machine = laptop(16)
        rows = oracle_sweep(
            g, machine, fractions=(0.0, 0.1, 0.2, 0.5, 1.0)
        )
        by_frac = {f: t for f, _n, t in rows}
        best = max(by_frac.values())
        assert best > by_frac[0.0]
        assert best > by_frac[1.0]
