"""Measurement memoization (repro.bench.cache)."""

from __future__ import annotations

import pytest

from repro.bench import cache
from repro.bench.harness import compare, oracle_sweep
from repro.des.adaptation import DesAdaptationRunner
from repro.graph.topologies import pipeline
from repro.perfmodel.machine import laptop
from repro.runtime.config import RuntimeConfig


@pytest.fixture(autouse=True)
def _isolated_cache():
    """Each test starts and ends with an empty, enabled cache."""
    cache.clear()
    with cache.override(True):
        yield
    cache.clear()


def _runner(seed=3, **kwargs):
    return DesAdaptationRunner(
        pipeline(6, cost_flops=2000.0, payload_bytes=128),
        laptop(4),
        RuntimeConfig(cores=4, seed=seed),
        warmup_s=0.001,
        measure_s=0.003,
        **kwargs,
    )


class TestFingerprints:
    def test_graph_fingerprint_stable_and_cost_sensitive(self):
        g1 = pipeline(6, cost_flops=2000.0, payload_bytes=128)
        g2 = pipeline(6, cost_flops=2000.0, payload_bytes=128)
        assert cache.graph_fingerprint(g1) == cache.graph_fingerprint(g2)
        heavier = g1.replace_costs({2: 9999.0})
        assert cache.graph_fingerprint(heavier) != cache.graph_fingerprint(
            g1
        )

    def test_machine_fingerprint_distinguishes_cores(self):
        assert cache.machine_fingerprint(laptop(4)) != (
            cache.machine_fingerprint(laptop(8))
        )

    def test_fingerprint_is_deterministic(self):
        assert cache.fingerprint("a", 1, (2.0,)) == cache.fingerprint(
            "a", 1, (2.0,)
        )
        assert cache.fingerprint("a") != cache.fingerprint("b")


class TestStore:
    def test_lookup_miss_then_hit(self):
        key = ("k", 1)
        hit, value = cache.lookup(key)
        assert not hit and value is None
        cache.store(key, "v")
        hit, value = cache.lookup(key)
        assert hit and value == "v"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_disabled_never_hits_or_stores(self):
        with cache.override(False):
            cache.store(("k",), "v")
            hit, _ = cache.lookup(("k",))
            assert not hit
        # Nothing leaked into the store while disabled.
        assert cache.stats()["entries"] == 0

    def test_eviction_resets_at_capacity(self):
        for i in range(cache.MAX_ENTRIES):
            cache.store(("k", i), i)
        assert cache.stats()["entries"] == cache.MAX_ENTRIES
        cache.store(("overflow",), 1)
        assert cache.stats()["entries"] == 1

    def test_snapshot_install_round_trip(self):
        cache.store(("a",), 1)
        cache.store(("b",), (2, "x"))
        cache.store(("unpicklable",), lambda: None)
        exported = cache.snapshot()
        assert ("a",) in exported and ("b",) in exported
        assert ("unpicklable",) not in exported
        cache.clear()
        cache.install(exported)
        assert cache.lookup(("a",)) == (True, 1)
        assert cache.lookup(("b",)) == (True, (2, "x"))


class TestMeasureMemoization:
    def test_hit_returns_identical_measurement(self):
        r1 = _runner()
        first = r1.measure()
        events_first = r1.sim_events
        assert events_first > 0
        # Same configuration in a fresh runner: pure cache hit.
        r2 = _runner()
        second = r2.measure()
        assert second == first
        assert r2.sim_events == 0
        assert cache.stats()["hits"] >= 1

    def test_seed_change_misses(self):
        r1 = _runner(seed=3)
        r1.measure()
        r2 = _runner(seed=4)
        r2.measure()
        assert r2.sim_events > 0  # keyed on seed: re-simulated

    def test_profiled_hit_replays_profile(self):
        r1 = _runner(profile_from_execution=True)
        r1.measure()
        groups_live = r1._profile_groups()
        r2 = _runner(profile_from_execution=True)
        r2.measure()
        assert r2.sim_events == 0
        groups_cached = r2._profile_groups()
        assert [g.members for g in groups_cached] == [
            g.members for g in groups_live
        ]

    def test_adaptation_run_unchanged_by_memoization(self):
        """Memo hits replay identical measurements, so the decision
        trajectory is untouched."""
        with cache.override(False):
            cold = _runner().run(
                max_periods=20, stop_after_stable_periods=None
            )
        warm = _runner().run(
            max_periods=20, stop_after_stable_periods=None
        )
        assert warm.final_threads == cold.final_threads
        assert warm.final_placement.queued == cold.final_placement.queued
        assert [o.throughput for o in warm.trace.observations] == [
            o.throughput for o in cold.trace.observations
        ]


class TestHarnessMemoization:
    def test_compare_hit_skips_rerun(self):
        graph = pipeline(6, cost_flops=500.0, payload_bytes=128)
        machine = laptop(4)
        config = RuntimeConfig(cores=4, seed=1)
        first = compare(graph, machine, config)
        before = cache.stats()["hits"]
        second = compare(graph, machine, config)
        assert cache.stats()["hits"] == before + 1
        # Identical payload (wall_s reflects the skipped work).
        assert second.multi_level.throughput == (
            first.multi_level.throughput
        )
        assert second.manual == first.manual
        assert second.wall_s <= first.wall_s

    def test_oracle_sweep_hit_returns_equal_rows(self):
        graph = pipeline(6, cost_flops=500.0, payload_bytes=128)
        machine = laptop(4)
        fractions = (0.0, 0.5, 1.0)
        first = oracle_sweep(graph, machine, fractions)
        before = cache.stats()["hits"]
        second = oracle_sweep(graph, machine, fractions)
        assert cache.stats()["hits"] == before + 1
        assert second == first
        assert second is not first  # defensive copy, not the cached list


class TestDiskTier:
    """The optional on-disk tier (REPRO_MEMO_DIR / explicit directory)."""

    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEMO_DIR", raising=False)
        assert cache.disk_dir() is None
        assert cache.disk_lookup("memo", ("k",)) == (False, None)
        # store is a value-returning no-op
        assert cache.disk_store("memo", ("k",), 42) == 42

    def test_round_trip_survives_memory_clear(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path))
        key = ("measure", "abc", 3)
        cache.store(key, {"throughput": 123.0})
        cache.clear()  # wipe the in-memory tier only
        hit, value = cache.lookup(key)
        assert hit and value == {"throughput": 123.0}
        # the disk hit was promoted back into memory
        hit2, _ = cache.lookup(key)
        assert hit2

    def test_explicit_directory_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MEMO_DIR", str(tmp_path / "env"))
        explicit = tmp_path / "explicit"
        cache.disk_store("memo", ("k",), 7, directory=str(explicit))
        assert cache.disk_lookup(
            "memo", ("k",), directory=str(explicit)
        ) == (True, 7)
        assert cache.disk_lookup("memo", ("k",)) == (False, None)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        key = ("k", 1)
        cache.disk_store("memo", key, "good", directory=str(tmp_path))
        path = tmp_path / "memo" / f"{cache.fingerprint(key)}.pkl"
        path.write_bytes(b"\x80garbage not a pickle")
        assert cache.disk_lookup(
            "memo", key, directory=str(tmp_path)
        ) == (False, None)

    def test_version_mismatch_is_a_miss(self, tmp_path):
        import pickle

        key = ("k", 2)
        path = tmp_path / "memo" / f"{cache.fingerprint(key)}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps((cache.DISK_FORMAT_VERSION + 1, key, "stale"))
        )
        assert cache.disk_lookup(
            "memo", key, directory=str(tmp_path)
        ) == (False, None)

    def test_digest_collision_payload_is_a_miss(self, tmp_path):
        """An entry whose stored key differs from the requested one
        (hash collision, or a renamed file) must not be served."""
        import pickle

        key = ("k", 3)
        path = tmp_path / "memo" / f"{cache.fingerprint(key)}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps((cache.DISK_FORMAT_VERSION, ("other",), "wrong"))
        )
        assert cache.disk_lookup(
            "memo", key, directory=str(tmp_path)
        ) == (False, None)

    def test_unpicklable_value_is_swallowed(self, tmp_path):
        cache.disk_store(
            "memo", ("k",), lambda: None, directory=str(tmp_path)
        )
        assert cache.disk_lookup(
            "memo", ("k",), directory=str(tmp_path)
        ) == (False, None)
        # no temp litter left behind
        leftovers = list((tmp_path / "memo").glob("*.tmp.*"))
        assert leftovers == []
