"""The scenario zoo: every shipped config validates, runs, and the
fig07 scenario reproduces the reference decision trace byte for byte."""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench import figures
from repro.scenarios import (
    compile_scenario,
    find_scenario,
    load_compiled,
    load_scenario,
    run_scenario,
    scenario_dir,
)
from repro.scenarios.cli import validate_one
from repro.scenarios.schema import ArrivalKind, ArrivalSpec, ScenarioError
from repro.scenarios.zoo import scenario_files

ZOO = scenario_files(None)


class TestZooIntegrity:
    def test_zoo_has_at_least_15_scenarios(self):
        assert len(ZOO) >= 15

    @pytest.mark.parametrize("path", ZOO, ids=lambda p: p.stem)
    def test_config_validates_and_round_trips(self, path):
        assert validate_one(path) == []

    def test_names_match_file_stems(self):
        for path in ZOO:
            assert load_scenario(path).name == path.stem

    def test_zoo_covers_every_shape_and_modulation(self):
        scenarios = [load_scenario(p) for p in ZOO]
        shapes = {s.topology.shape.value for s in scenarios}
        assert shapes >= {
            "pipeline",
            "data_parallel",
            "mixed",
            "tree",
            "diamond",
            "custom",
        }
        modulations = {
            s.workload.arrivals.modulation.kind.value for s in scenarios
        }
        assert modulations >= {"none", "diurnal", "onoff", "flash_crowd", "ramp"}

    def test_find_scenario_by_name(self):
        path = find_scenario("pipeline-smoke", None)
        assert path.stem == "pipeline-smoke"

    def test_find_scenario_unknown_lists_names(self):
        with pytest.raises(ScenarioError) as err:
            find_scenario("no-such-scenario", None)
        msg = str(err.value)
        assert "pipeline-smoke" in msg
        assert str(scenario_dir(None)) in msg


class TestZooExecution:
    def test_smoke_scenario_runs_on_both_backends(self):
        results = run_scenario(
            load_compiled(find_scenario("pipeline-smoke", None))
        )
        assert [r.backend for r in results] == ["des", "perfmodel"]
        for r in results:
            assert r.converged_throughput > 0
            assert r.periods > 0
            assert not r.open_loop

    def test_fig07_scenario_matches_reference_decisions(self):
        # The zoo's fig07 config must reproduce the exact R1-R5 trace
        # of the hand-built benchmark — byte-identical decisions.
        ref = figures.fig07_des_adaptation()
        res = run_scenario(
            load_compiled(find_scenario("fig07-pipeline-saturated", None))
        )[0]
        assert res.decisions == tuple(ref.decisions)
        assert res.final_threads == ref.final_threads

    def test_open_loop_saturating_schedule_matches_closed_loop(self):
        # An open-loop schedule that outruns the PE must produce the
        # same decision sequence as the implicit saturated source: the
        # due-backlog batching reproduces the closed-loop event timing.
        base = load_scenario(find_scenario("fig07-pipeline-saturated", None))
        short = dataclasses.replace(
            base, run=dataclasses.replace(base.run, max_periods=60)
        )
        closed = run_scenario(compile_scenario(short))[0]
        saturating = dataclasses.replace(
            short,
            workload=dataclasses.replace(
                short.workload,
                arrivals=ArrivalSpec(
                    kind=ArrivalKind.DETERMINISTIC, rate=5e7
                ),
            ),
        )
        open_res = run_scenario(compile_scenario(saturating))[0]
        assert open_res.open_loop
        assert open_res.offered_utilization == pytest.approx(1.0)
        assert open_res.decisions == closed.decisions

    def test_burst_scenario_overflows_bounded_queues(self):
        # Acceptance: the ON/OFF burst scenario must demonstrably shed
        # load at full queues — nonzero drop metrics.
        res = run_scenario(
            load_compiled(find_scenario("onoff-burst-overflow", None))
        )[0]
        assert res.open_loop
        assert res.dropped_tuples > 0

    def test_scenario_bench_helper(self):
        results = figures.scenario_bench(
            "pipeline-smoke", backend="perfmodel"
        )
        assert len(results) == 1
        assert results[0].backend == "perfmodel"
        assert results[0].converged_throughput > 0
