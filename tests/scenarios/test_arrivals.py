"""Arrival generators: seed determinism and rate-envelope fidelity."""

from __future__ import annotations

import pytest

from repro.scenarios.arrivals import ArrivalProcess
from repro.scenarios.schema import (
    ArrivalKind,
    ArrivalSpec,
    ModulationKind,
    ModulationSpec,
)


def _proc(arrival_kind, rate, seed=0, **mod):
    modulation = ModulationSpec(**mod) if mod else ModulationSpec()
    return ArrivalProcess(
        ArrivalSpec(kind=arrival_kind, rate=rate, modulation=modulation),
        seed=seed,
    )


class TestDeterminism:
    def test_saturated_has_no_schedule(self):
        with pytest.raises(ValueError):
            ArrivalProcess(ArrivalSpec(kind=ArrivalKind.SATURATED))

    def test_poisson_same_seed_same_stream(self):
        a = _proc(ArrivalKind.POISSON, 500.0, seed=3).times(0.0, 2.0)
        b = _proc(ArrivalKind.POISSON, 500.0, seed=3).times(0.0, 2.0)
        assert a == b

    def test_poisson_different_seed_different_stream(self):
        a = _proc(ArrivalKind.POISSON, 500.0, seed=3).times(0.0, 2.0)
        b = _proc(ArrivalKind.POISSON, 500.0, seed=4).times(0.0, 2.0)
        assert a != b

    def test_deterministic_stream_is_evenly_spaced(self):
        times = _proc(ArrivalKind.DETERMINISTIC, 1000.0).times(0.0, 1.0)
        assert len(times) == 999  # first arrival lands at 1/rate
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(g - 0.001) < 1e-9 for g in gaps)

    def test_streams_are_sorted_and_start_after_t0(self):
        for kind in (ArrivalKind.DETERMINISTIC, ArrivalKind.POISSON):
            times = _proc(kind, 2000.0, seed=1).times(5.0, 1.0)
            assert times == sorted(times)
            assert all(t >= 5.0 for t in times)


class TestEnvelopes:
    def test_deterministic_count_matches_rate_integral(self):
        times = _proc(ArrivalKind.DETERMINISTIC, 1000.0).times(0.0, 10.0)
        assert abs(len(times) - 10_000) <= 1

    def test_poisson_count_within_envelope_tolerance(self):
        times = _proc(ArrivalKind.POISSON, 500.0, seed=0).times(0.0, 2.0)
        # mean 1000, sd ~32: 5 sigma tolerance
        assert abs(len(times) - 1000) < 160

    def test_onoff_arrivals_only_in_on_phase(self):
        proc = _proc(
            ArrivalKind.DETERMINISTIC,
            1000.0,
            kind=ModulationKind.ONOFF,
            on_s=1.0,
            off_s=1.0,
        )
        times = proc.times(0.0, 4.0)
        assert abs(len(times) - 2000) <= 2
        for t in times:
            assert (t % 2.0) <= 1.0 + 1e-9

    def test_onoff_many_cycles_terminates(self):
        # Regression: cycle-indexed segments; an accumulated-float
        # implementation stalls (t + tiny == t) after enough 2ms
        # cycles and never terminates.
        proc = _proc(
            ArrivalKind.DETERMINISTIC,
            5_000_000.0,
            kind=ModulationKind.ONOFF,
            on_s=0.002,
            off_s=0.002,
        )
        times = proc.times(600.0, 0.012)
        assert abs(len(times) - 30_000) <= 2

    def test_diurnal_mean_and_peak(self):
        proc = _proc(
            ArrivalKind.DETERMINISTIC,
            1000.0,
            kind=ModulationKind.DIURNAL,
            period_s=10.0,
            low_factor=0.2,
            high_factor=1.0,
            steps=16,
        )
        assert proc.mean_rate() == pytest.approx(600.0, rel=0.01)
        assert proc.peak_rate() <= 1000.0
        times = proc.times(0.0, 10.0)  # one full period
        assert abs(len(times) - 6000) < 80

    def test_diurnal_starts_in_trough(self):
        proc = _proc(
            ArrivalKind.DETERMINISTIC,
            1000.0,
            kind=ModulationKind.DIURNAL,
            period_s=10.0,
            low_factor=0.2,
            high_factor=1.0,
            steps=16,
        )
        assert proc.rate_at(0.0) < proc.rate_at(5.0)

    def test_flash_crowd_phases(self):
        proc = _proc(
            ArrivalKind.DETERMINISTIC,
            100.0,
            kind=ModulationKind.FLASH_CROWD,
            at_s=10.0,
            ramp_s=2.0,
            hold_s=5.0,
            factor=5.0,
        )
        before = proc.times(0.0, 10.0)
        hold = proc.times(12.0, 5.0)
        after = proc.times(30.0, 10.0)
        assert abs(len(before) - 1000) <= 2
        assert abs(len(hold) - 2500) <= 3
        assert abs(len(after) - 1000) <= 2
        assert proc.peak_rate() == pytest.approx(500.0)
        assert proc.mean_rate() == pytest.approx(100.0)

    def test_ramp_transitions_low_to_high(self):
        proc = _proc(
            ArrivalKind.DETERMINISTIC,
            1000.0,
            kind=ModulationKind.RAMP,
            at_s=5.0,
            ramp_s=5.0,
            low_factor=0.2,
            high_factor=1.0,
        )
        low = proc.times(0.0, 5.0)
        high = proc.times(20.0, 5.0)
        assert abs(len(low) - 1000) <= 2
        assert abs(len(high) - 5000) <= 2
        assert proc.mean_rate() == pytest.approx(1000.0)

    def test_rate_at_agrees_with_segments(self):
        proc = _proc(
            ArrivalKind.POISSON,
            1000.0,
            seed=0,
            kind=ModulationKind.DIURNAL,
            period_s=8.0,
            steps=8,
        )
        for t in (0.0, 1.0, 3.9, 4.1, 7.99, 123.4):
            seg_rate = proc.segments(t, 1e-9)[0][2]
            assert proc.rate_at(t) == seg_rate


class TestRestart:
    def test_mid_phase_restart_preserves_envelope(self):
        # Restarting inside an off phase: first arrival appears at the
        # start of the next on phase.
        proc = _proc(
            ArrivalKind.DETERMINISTIC,
            1000.0,
            kind=ModulationKind.ONOFF,
            on_s=0.5,
            off_s=0.5,
        )
        times = proc.times(0.75, 1.0)
        assert times[0] >= 1.0
        assert abs(len(times) - 500) <= 2

    def test_restart_from_arbitrary_t0_deterministic(self):
        proc = _proc(ArrivalKind.POISSON, 800.0, seed=9)
        a = proc.times(42.0, 1.0)
        b = proc.times(42.0, 1.0)
        assert a == b

    def test_key_is_hashable_and_spec_sensitive(self):
        a = _proc(ArrivalKind.POISSON, 100.0, seed=0)
        b = _proc(ArrivalKind.POISSON, 100.0, seed=1)
        c = _proc(ArrivalKind.POISSON, 200.0, seed=0)
        assert hash(a.key())
        assert a.key() != b.key()
        assert a.key() != c.key()
