"""Schema validation: errors name the offending field, round-trips hold."""

from __future__ import annotations

import pytest

from repro.scenarios.schema import (
    ArrivalKind,
    Backend,
    ModulationKind,
    OverflowPolicy,
    Scenario,
    ScenarioError,
    TopologyShape,
    scenario_from_dict,
    scenario_to_dict,
)


def _minimal(**overrides):
    data = {"name": "t"}
    data.update(overrides)
    return data


class TestFieldErrors:
    def test_unknown_top_level_field(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(_minimal(wokload={}))
        assert str(err.value).startswith("wokload: unknown field")

    def test_unknown_enum_value_lists_alternatives(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(workload={"arrivals": {"kind": "poison"}})
            )
        msg = str(err.value)
        assert msg.startswith("workload.arrivals.kind: unknown value 'poison'")
        assert "'poisson'" in msg and "'saturated'" in msg

    def test_negative_rate_names_field(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(
                    workload={
                        "arrivals": {"kind": "poisson", "rate": -5.0}
                    }
                )
            )
        assert str(err.value) == "workload.arrivals.rate: must be > 0, got -5.0"

    def test_open_loop_requires_rate(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(workload={"arrivals": {"kind": "deterministic"}})
            )
        assert "workload.arrivals.rate" in str(err.value)

    def test_saturated_rejects_nonzero_rate(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(
                    workload={
                        "arrivals": {"kind": "saturated", "rate": 100.0}
                    }
                )
            )
        assert "saturated arrivals take no rate" in str(err.value)

    def test_saturated_accepts_zero_rate(self):
        # scenario_to_dict emits every field, including rate=0.0 for
        # saturated arrivals; the parser must accept its own output.
        s = scenario_from_dict(
            _minimal(
                workload={"arrivals": {"kind": "saturated", "rate": 0.0}}
            )
        )
        assert s.workload.arrivals.kind is ArrivalKind.SATURATED

    def test_unknown_edge_operator_named(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(
                    topology={
                        "shape": "custom",
                        "nodes": [
                            {"name": "a", "kind": "source"},
                            {"name": "b", "kind": "sink"},
                        ],
                        "edges": [["a", "zz"]],
                    }
                )
            )
        msg = str(err.value)
        assert msg.startswith("topology.edges[0][1]: unknown operator name 'zz'")
        assert "known: a, b" in msg

    def test_self_loop_rejected(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(
                    topology={
                        "shape": "custom",
                        "nodes": [
                            {"name": "a", "kind": "source"},
                            {"name": "b", "kind": "sink"},
                        ],
                        "edges": [["a", "b"], ["b", "b"]],
                    }
                )
            )
        assert "self loops" in str(err.value)

    def test_nodes_invalid_for_generated_shape(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(
                    topology={
                        "shape": "pipeline",
                        "nodes": [{"name": "a"}],
                    }
                )
            )
        assert "only valid for shape 'custom'" in str(err.value)

    def test_bad_version_rejected(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(_minimal(version=99))
        assert "version" in str(err.value)

    def test_modulation_unknown_field(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(
                    workload={
                        "arrivals": {
                            "kind": "poisson",
                            "rate": 10.0,
                            "modulation": {"kind": "onoff", "onn_s": 1.0},
                        }
                    }
                )
            )
        assert "workload.arrivals.modulation.onn_s" in str(err.value)

    def test_cost_fractions_bounded(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(
                    topology={
                        "cost": {
                            "kind": "skewed",
                            "heavy_fraction": 0.7,
                            "medium_fraction": 0.6,
                        }
                    }
                )
            )
        assert "must be <= 1" in str(err.value)

    def test_payload_mix_requires_entries(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(
                _minimal(workload={"payload": {"kind": "mix"}})
            )
        assert "workload.payload.mix" in str(err.value)


class TestRoundTrip:
    def test_default_scenario_round_trips(self):
        s = scenario_from_dict({"name": "defaults"})
        assert scenario_from_dict(scenario_to_dict(s)) == s

    def test_rich_scenario_round_trips(self):
        s = scenario_from_dict(
            {
                "name": "rich",
                "description": "everything set",
                "topology": {
                    "shape": "custom",
                    "payload_bytes": 512,
                    "nodes": [
                        {"name": "src", "kind": "source"},
                        {"name": "mid", "selectivity": 0.5},
                        {"name": "snk", "kind": "sink", "uses_lock": True},
                    ],
                    "edges": [["src", "mid"], ["mid", "snk"]],
                },
                "workload": {
                    "arrivals": {
                        "kind": "poisson",
                        "rate": 1000.0,
                        "modulation": {
                            "kind": "flash_crowd",
                            "at_s": 5.0,
                            "ramp_s": 2.0,
                            "hold_s": 4.0,
                            "factor": 3.0,
                        },
                        "seed": 7,
                    },
                    "payload": {
                        "kind": "mix",
                        "mix": [
                            {"payload_bytes": 64, "weight": 3.0},
                            {"payload_bytes": 1024, "weight": 1.0},
                        ],
                    },
                },
                "machine": {"profile": "xeon", "cores": 16},
                "run": {
                    "backend": "des",
                    "seed": 5,
                    "overflow": "drop",
                    "queue_capacity": 8,
                    "stop_after_stable_periods": None,
                },
            }
        )
        again = scenario_from_dict(scenario_to_dict(s))
        assert again == s
        assert again.run.overflow is OverflowPolicy.DROP
        assert again.run.backend is Backend.DES
        assert again.topology.shape is TopologyShape.CUSTOM
        assert (
            again.workload.arrivals.modulation.kind
            is ModulationKind.FLASH_CROWD
        )

    def test_to_dict_emits_every_field(self):
        data = scenario_to_dict(Scenario(name="full"))
        assert data["version"] == 1
        assert set(data) == {
            "version",
            "name",
            "description",
            "topology",
            "workload",
            "channel",
            "machine",
            "pes",
            "partition",
            "run",
        }
        # nested specs are fully expanded, not elided
        assert "queue_capacity" in data["run"]
        assert "modulation" in data["workload"]["arrivals"]


class TestRunJobs:
    """The run.jobs knob: multi-PE worker-pool width."""

    def test_jobs_parses_and_round_trips(self):
        s = scenario_from_dict(_minimal(run={"jobs": 4}))
        assert s.run.jobs == 4
        again = scenario_from_dict(scenario_to_dict(s))
        assert again.run.jobs == 4

    def test_jobs_defaults_to_none(self):
        s = scenario_from_dict(_minimal())
        assert s.run.jobs is None
        # None round-trips too (the flag/env fallback stays live).
        assert scenario_from_dict(scenario_to_dict(s)).run.jobs is None

    def test_jobs_must_be_a_positive_integer(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(_minimal(run={"jobs": 0}))
        assert "run.jobs" in str(err.value)
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(_minimal(run={"jobs": 2.5}))
        assert "run.jobs" in str(err.value)


class TestRunWarmStart:
    """The run.warm_start knob: coordinator seeding policy."""

    def test_warm_start_parses_and_round_trips(self):
        for mode in ("off", "model", "history", "auto"):
            s = scenario_from_dict(_minimal(run={"warm_start": mode}))
            assert s.run.warm_start == mode
            again = scenario_from_dict(scenario_to_dict(s))
            assert again.run.warm_start == mode

    def test_warm_start_defaults_to_none(self):
        s = scenario_from_dict(_minimal())
        assert s.run.warm_start is None
        # None round-trips too (the flag/env fallback stays live).
        assert (
            scenario_from_dict(scenario_to_dict(s)).run.warm_start is None
        )

    def test_warm_start_rejects_unknown_modes(self):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(_minimal(run={"warm_start": "always"}))
        assert "run.warm_start" in str(err.value)
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(_minimal(run={"warm_start": 1}))
        assert "run.warm_start" in str(err.value)
