"""Scenario -> graph/machine/config compilation."""

from __future__ import annotations

import pytest

from repro.scenarios.compile import compile_scenario, compile_topology
from repro.scenarios.schema import (
    ScenarioError,
    scenario_from_dict,
)


def _scenario(**overrides):
    data = {"name": "t"}
    data.update(overrides)
    return scenario_from_dict(data)


class TestShapes:
    @pytest.mark.parametrize(
        "topology,expected_ops",
        [
            ({"shape": "pipeline", "operators": 8}, 10),  # + src + snk
            ({"shape": "data_parallel", "width": 4}, 6),
            ({"shape": "mixed", "width": 2, "depth": 3}, 8),
            ({"shape": "diamond", "width": 4}, 8),
        ],
    )
    def test_generated_shapes_build(self, topology, expected_ops):
        graph = compile_topology(_scenario(topology=topology).topology)
        assert len(graph) == expected_ops
        assert graph.sources and graph.sinks

    def test_tree_builds(self):
        graph = compile_topology(
            _scenario(topology={"shape": "tree", "levels": 3}).topology
        )
        assert graph.sources and graph.sinks

    def test_diamond_head_broadcasts_to_all_branches(self):
        graph = compile_topology(
            _scenario(topology={"shape": "diamond", "width": 3}).topology
        )
        rates = graph.arrival_rates()
        branch_rates = [
            rates[op.index]
            for op in graph
            if op.name.startswith("branch")
        ]
        assert branch_rates == [1.0, 1.0, 1.0]

    def test_custom_topology_builds_named_operators(self):
        c = compile_scenario(
            _scenario(
                topology={
                    "shape": "custom",
                    "nodes": [
                        {"name": "src", "kind": "source"},
                        {"name": "work", "cost_flops": 900.0},
                        {"name": "snk", "kind": "sink"},
                    ],
                    "edges": [["src", "work"], ["work", "snk"]],
                }
            )
        )
        names = [op.name for op in c.graph]
        assert names == ["src", "work", "snk"]
        work = c.graph.operator(1)
        assert work.cost_flops == 900.0

    def test_structural_errors_become_scenario_errors(self):
        # A custom graph whose sink feeds another operator is invalid
        # at build time; the compiler must re-raise under 'topology'.
        scenario = _scenario(
            topology={
                "shape": "custom",
                "nodes": [
                    {"name": "a", "kind": "source"},
                    {"name": "b", "kind": "sink"},
                    {"name": "c", "kind": "sink"},
                ],
                "edges": [["a", "b"], ["b", "c"]],
            }
        )
        with pytest.raises(ScenarioError) as err:
            compile_scenario(scenario)
        assert err.value.path == "topology"

    def test_skewed_costs_are_seeded(self):
        topology = {
            "shape": "pipeline",
            "operators": 12,
            "cost": {"kind": "skewed", "seed": 5},
        }
        g1 = compile_topology(_scenario(topology=topology).topology)
        g2 = compile_topology(_scenario(topology=topology).topology)
        costs1 = [op.cost_flops for op in g1]
        assert costs1 == [op.cost_flops for op in g2]
        assert len(set(costs1)) > 1  # actually skewed


class TestPayloadAndMachine:
    def test_payload_mix_compiles_to_weighted_mean(self):
        c = compile_scenario(
            _scenario(
                workload={
                    "payload": {
                        "kind": "mix",
                        "mix": [
                            {"payload_bytes": 64, "weight": 3.0},
                            {"payload_bytes": 1024, "weight": 1.0},
                        ],
                    }
                }
            )
        )
        assert c.graph.tuple_spec.payload_bytes == 304

    def test_fixed_payload_overrides_topology(self):
        c = compile_scenario(
            _scenario(
                topology={"payload_bytes": 128},
                workload={"payload": {"payload_bytes": 4096}},
            )
        )
        assert c.graph.tuple_spec.payload_bytes == 4096

    def test_laptop_cores_exact_profile(self):
        c = compile_scenario(_scenario(machine={"profile": "laptop", "cores": 4}))
        assert c.machine.logical_cores == 4
        assert c.config.cores == 4

    def test_xeon_with_cores(self):
        c = compile_scenario(_scenario(machine={"profile": "xeon", "cores": 16}))
        assert c.machine.logical_cores == 16

    def test_adaptation_period_override(self):
        c = compile_scenario(_scenario(run={"adaptation_period_s": 2.5}))
        assert c.config.elasticity.adaptation_period_s == 2.5


class TestOpenLoopCompilation:
    def test_saturated_scenario_has_no_arrival_process(self):
        c = compile_scenario(_scenario())
        assert not c.open_loop
        assert c.arrivals_factory() is None
        assert c.arrivals_key() is None
        assert c.arrival_streams() == {}
        assert all(op.max_rate is None for op in c.graph.sources)

    def test_open_loop_caps_source_rates_at_mean(self):
        c = compile_scenario(
            _scenario(
                workload={
                    "arrivals": {
                        "kind": "deterministic",
                        "rate": 1000.0,
                        "modulation": {
                            "kind": "onoff",
                            "on_s": 1.0,
                            "off_s": 1.0,
                        },
                    }
                }
            )
        )
        assert c.open_loop
        assert c.mean_arrival_rate == pytest.approx(500.0)
        for op in c.graph.sources:
            assert op.max_rate == pytest.approx(500.0)

    def test_arrival_streams_are_window_relative(self):
        # The DES restarts its clock at 0 every measurement window;
        # streams must be offset by t0 while the envelope still tracks
        # absolute time.
        c = compile_scenario(
            _scenario(
                workload={
                    "arrivals": {"kind": "deterministic", "rate": 100.0}
                }
            )
        )
        (stream,) = c.arrival_streams(t0=50.0).values()
        first = next(stream)
        assert 0.0 <= first <= 0.011

    def test_arrival_seed_defaults_to_run_seed(self):
        a = compile_scenario(
            _scenario(
                workload={"arrivals": {"kind": "poisson", "rate": 100.0}},
                run={"seed": 3},
            )
        )
        b = compile_scenario(
            _scenario(
                workload={
                    "arrivals": {"kind": "poisson", "rate": 100.0, "seed": 3}
                },
            )
        )
        assert a.arrival_process.seed == 3
        assert b.arrival_process.seed == 3
        assert a.arrival_process.times(0.0, 1.0) == b.arrival_process.times(
            0.0, 1.0
        )
