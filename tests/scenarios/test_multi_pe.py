"""Multi-PE scenarios: schema, compilation, and the pass-through
equivalence guarantee.

The acceptance property of the job layer: cutting a pipeline into PEs
joined by forward (pass-through) channels with single replicas does
not perturb any PE's adaptation.  Each PE's R1-R5 decision trace
inside the job is byte-identical to a standalone DES run of its
extracted subgraph under the same derived seed.
"""

from __future__ import annotations

import pytest

from repro.bench import cache
from repro.des.adaptation import DesAdaptationRunner
from repro.job.executor import _PE_SEED_STRIDE, JobAdaptationRunner
from repro.obs.hub import ObservabilityHub
from repro.scenarios import (
    compile_scenario,
    load_scenario,
    run_scenario,
)
from repro.scenarios.schema import (
    PartitionStrategy,
    ScenarioError,
    scenario_from_dict,
    scenario_to_dict,
)

BASE = {
    "version": 1,
    "name": "t",
    "topology": {
        "shape": "pipeline",
        "operators": 4,
        "cost": {"flops": 1000.0},
    },
    "machine": {"profile": "laptop", "cores": 4},
    "run": {"backend": "des", "max_periods": 4},
}


def with_pes(pes, partition=None):
    doc = dict(BASE)
    doc["pes"] = pes
    if partition is not None:
        doc["partition"] = partition
    return doc


class TestSchema:
    def test_pes_round_trip(self):
        doc = with_pes(
            [
                {"name": "a", "operators": ["src", "op0", "op1"]},
                {
                    "name": "b",
                    "operators": ["op2", "op3", "snk"],
                    "replicas": 2,
                    "elastic": True,
                    "max_replicas": 4,
                },
            ],
            partition={"strategy": "shuffle", "seed": 5, "key_space": 32},
        )
        sc = scenario_from_dict(doc)
        assert sc.pes[1].elastic and sc.pes[1].replicas == 2
        assert sc.partition.strategy is PartitionStrategy.SHUFFLE
        assert scenario_from_dict(scenario_to_dict(sc)) == sc

    def test_duplicate_pe_name_rejected(self):
        doc = with_pes(
            [
                {"name": "a", "operators": ["src", "op0"]},
                {"name": "a", "operators": ["op1", "op2", "op3", "snk"]},
            ]
        )
        with pytest.raises(ScenarioError, match="duplicate PE name"):
            scenario_from_dict(doc)

    def test_operator_in_two_pes_rejected(self):
        doc = with_pes(
            [
                {"name": "a", "operators": ["src", "op0"]},
                {"name": "b", "operators": ["op0", "op1"]},
            ]
        )
        with pytest.raises(ScenarioError, match="assigned to both"):
            scenario_from_dict(doc)

    def test_pe_without_operators_rejected(self):
        doc = with_pes([{"name": "a"}])
        with pytest.raises(ScenarioError, match="operators"):
            scenario_from_dict(doc)

    def test_unknown_partition_strategy_rejected(self):
        doc = with_pes(
            [{"name": "a", "operators": ["src"]}],
            partition={"strategy": "teleport"},
        )
        with pytest.raises(ScenarioError):
            scenario_from_dict(doc)


class TestCompile:
    def test_single_pe_scenarios_have_no_job(self):
        compiled = compile_scenario(scenario_from_dict(BASE))
        assert not compiled.multi_pe
        assert compiled.job is None

    def test_pes_compile_to_a_job_graph(self):
        doc = with_pes(
            [
                {"name": "a", "operators": ["src", "op0", "op1"]},
                {"name": "b", "operators": ["op2", "op3", "snk"]},
            ]
        )
        compiled = compile_scenario(scenario_from_dict(doc))
        assert compiled.multi_pe
        assert [pe.name for pe in compiled.job.pes] == ["a", "b"]

    def test_pes_require_des_backend(self):
        doc = with_pes(
            [
                {"name": "a", "operators": ["src", "op0", "op1"]},
                {"name": "b", "operators": ["op2", "op3", "snk"]},
            ]
        )
        doc["run"] = dict(doc["run"], backend="perfmodel")
        with pytest.raises(ScenarioError, match="backend"):
            compile_scenario(scenario_from_dict(doc))

    def test_incomplete_partition_is_a_scenario_error(self):
        doc = with_pes([{"name": "a", "operators": ["src"]}])
        with pytest.raises(ScenarioError, match="pes"):
            compile_scenario(scenario_from_dict(doc))


def _signatures(hub, scope):
    return [
        (d.rule, d.set_threads, d.set_n_queues)
        for d in hub.decisions()
        if d.scope == scope
    ]


class TestPassThroughEquivalence:
    def test_fig07_2pe_traces_match_standalone(self):
        """Forward channels, single replicas: every PE adapts exactly
        as its extracted subgraph does standalone."""
        compiled = compile_scenario(
            load_scenario("scenarios/fig07-2pe-passthrough.yaml")
        )
        run = compiled.scenario.run
        periods = 12

        cache.clear()
        hub = ObservabilityHub()
        job_runner = JobAdaptationRunner(
            compiled.job,
            compiled.machine,
            compiled.config,
            warmup_s=run.warmup_s,
            measure_s=run.measure_s,
            queue_capacity=run.queue_capacity,
            profile_from_execution=run.profile_from_execution,
            obs=hub,
        )
        job_runner.run(
            max_periods=periods, stop_after_stable_periods=None
        )

        for i, pe in enumerate(compiled.job.pes):
            in_job = _signatures(hub, f"pe.{pe.name}")
            assert in_job, f"no decisions recorded for {pe.name}"

            cache.clear()
            solo_hub = ObservabilityHub()
            from dataclasses import replace

            solo = DesAdaptationRunner(
                pe.graph,
                compiled.machine,
                replace(
                    compiled.config,
                    seed=compiled.config.seed + _PE_SEED_STRIDE * i,
                ),
                warmup_s=run.warmup_s,
                measure_s=run.measure_s,
                queue_capacity=run.queue_capacity,
                profile_from_execution=run.profile_from_execution,
                obs=solo_hub,
            )
            solo.run(
                max_periods=periods, stop_after_stable_periods=None
            )
            standalone = _signatures(solo_hub, "")
            assert in_job == standalone, (
                f"PE {pe.name!r} adapted differently inside the job"
            )

    def test_pass_through_job_emits_no_job_decisions(self):
        compiled = compile_scenario(
            load_scenario("scenarios/fig07-2pe-passthrough.yaml")
        )
        cache.clear()
        hub = ObservabilityHub()
        (result,) = run_scenario(compiled, obs=hub)
        assert result.decisions == ()
        assert result.pe_replicas == (("back", 1), ("front", 1))
        assert [d for d in hub.decisions() if d.scope == "job"] == []


class TestRunDispatch:
    def test_multi_pe_scenario_reports_replicas(self):
        cache.clear()
        compiled = compile_scenario(
            load_scenario("scenarios/multi-pe-keyhash-scale.yaml")
        )
        (result,) = run_scenario(compiled)
        replicas = dict(result.pe_replicas)
        assert replicas["worker"] > 1
        assert any(r == "JOB-SCALE-OUT" for r, _t, _q in result.decisions)
