"""Command-line interface: run experiments without writing Python.

Usage (after ``pip install -e .``)::

    python -m repro list                      # available experiments
    python -m repro run fig09 --machine xeon  # one figure, print table
    python -m repro run fig15a
    python -m repro elastic --operators 100 --payload 1024 --cores 16
    python -m repro sweep --operators 100 --payload 1024 --cores 88

``run`` executes a figure experiment from :mod:`repro.bench.figures`
and prints the paper-style table.  ``elastic`` runs one multi-level
adaptation on a pipeline and reports the converged configuration.
``sweep`` prints the Fig. 1-style static oracle sweep for a pipeline.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from .bench import figures
from .bench.reporting import app_table, comparison_table, format_table

_FIGURES: Dict[str, str] = {
    "fig01": "Fig. 1 motivation sweep (100-op chain)",
    "fig06": "Fig. 6 adaptation-period optimizations",
    "fig09": "Fig. 9 pipeline graphs",
    "fig10": "Fig. 10 data-parallel graphs",
    "fig11": "Fig. 11 mixed graphs",
    "fig12": "Fig. 12 bushy graphs",
    "fig13": "Fig. 13 workload phase change",
    "fig15a": "Fig. 15(a) VWAP application",
    "fig15b": "Fig. 15(b) PacketAnalysis application",
}


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [[name, desc] for name, desc in sorted(_FIGURES.items())]
    print(format_table(["experiment", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    name = args.experiment
    if name not in _FIGURES:
        print(
            f"unknown experiment {name!r}; try: python -m repro list",
            file=sys.stderr,
        )
        return 2
    if name == "fig01":
        results = figures.fig01_motivation()
        rows = []
        for r in results:
            rows.append(
                [
                    f"{r.payload_bytes}B/{r.cores}c",
                    f"best frac {r.best_fraction:.2f}",
                    r.best_sweep_throughput,
                    f"auto {r.auto_fraction:.2f}",
                    r.auto_throughput,
                ]
            )
        print(
            format_table(
                ["config", "oracle", "oracle T/s", "auto", "auto T/s"],
                rows,
                title=_FIGURES[name],
            )
        )
    elif name == "fig06":
        results = figures.fig06_adaptation()
        print(
            format_table(
                ["variant", "settling s", "converged T/s", "thr", "q"],
                [
                    [
                        r.variant,
                        r.settling_time_s,
                        r.converged_throughput,
                        r.final_threads,
                        r.final_n_queues,
                    ]
                    for r in results
                ],
                title=_FIGURES[name],
            )
        )
    elif name == "fig09":
        comps = figures.fig09_pipeline(machine_name=args.machine)
        print(comparison_table(comps, title=_FIGURES[name]))
    elif name == "fig10":
        print(
            comparison_table(
                figures.fig10_data_parallel(machine_name=args.machine),
                title=_FIGURES[name],
            )
        )
    elif name == "fig11":
        print(
            comparison_table(
                figures.fig11_mixed(machine_name=args.machine),
                title=_FIGURES[name],
            )
        )
    elif name == "fig12":
        print(comparison_table(figures.fig12_bushy(), title=_FIGURES[name]))
    elif name == "fig13":
        r = figures.fig13_phase_change()
        print(
            format_table(
                ["metric", "before", "after"],
                [
                    ["threads", r.threads_before, r.threads_after],
                    ["queues", r.queues_before, r.queues_after],
                    [
                        "throughput",
                        r.throughput_before,
                        r.throughput_after,
                    ],
                    ["re-settle s", "-", r.re_settling_time_s],
                ],
                title=_FIGURES[name],
            )
        )
    elif name == "fig15a":
        print(app_table(figures.fig15a_vwap(), title=_FIGURES[name]))
    elif name == "fig15b":
        print(
            app_table(
                figures.fig15b_packet_analysis(), title=_FIGURES[name]
            )
        )
    return 0


def _machine(name: str, cores: Optional[int]):
    from .perfmodel import laptop, power8_184, xeon_176

    base = {
        "xeon": xeon_176,
        "power8": power8_184,
        "laptop": lambda: laptop(cores or 8),
    }[name]()
    if cores is not None and name != "laptop":
        base = base.with_cores(cores)
    return base


def _cmd_elastic(args: argparse.Namespace) -> int:
    from .graph import pipeline
    from .runtime import ProcessingElement, RuntimeConfig, run_elastic

    machine = _machine(args.machine, args.cores)
    graph = pipeline(
        args.operators,
        cost_flops=args.cost,
        payload_bytes=args.payload,
    )
    pe = ProcessingElement(
        graph,
        machine,
        RuntimeConfig(cores=machine.logical_cores, seed=args.seed),
    )
    manual = pe.true_throughput()
    result = run_elastic(pe, duration_s=args.duration)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["manual throughput T/s", manual],
                ["converged throughput T/s", result.converged_throughput],
                ["speedup", result.converged_throughput / manual],
                ["scheduler threads", result.final_threads],
                ["scheduler queues", result.final_n_queues],
                ["dynamic ratio", result.final_dynamic_ratio],
                ["last change at s", result.trace.last_change_time()],
            ],
            title=(
                f"multi-level elasticity on pipeline({args.operators}), "
                f"{args.payload}B, {machine.name}"
            ),
        )
    )
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from .bench.harness import oracle_sweep
    from .graph import pipeline
    from .perfmodel import PerformanceModel
    from .perfmodel.latency import estimate_latency
    from .runtime import QueuePlacement

    machine = _machine(args.machine, args.cores)
    graph = pipeline(
        args.operators,
        cost_flops=args.cost,
        payload_bytes=args.payload,
    )
    model = PerformanceModel(graph, machine)
    rows = []
    for fraction in (0.0, 0.1, 0.3, 1.0):
        (_f, threads, _t) = oracle_sweep(
            graph, machine, fractions=(fraction,)
        )[0]
        eligible = [op.index for op in graph if not op.is_source]
        k = int(round(fraction * len(eligible)))
        placement = (
            QueuePlacement.of(
                eligible[int(i * len(eligible) / k)] for i in range(k)
            )
            if k
            else QueuePlacement.empty()
        )
        capacity = model.estimate(placement, threads).throughput
        light = estimate_latency(model, placement, threads, 0.2)
        loaded = estimate_latency(model, placement, threads, 0.9)
        rows.append(
            [
                f"{fraction:.0%} dynamic",
                capacity,
                light.latency_ms,
                loaded.latency_ms,
            ]
        )
    print(
        format_table(
            [
                "configuration",
                "capacity T/s",
                "latency ms @20%",
                "latency ms @90%",
            ],
            rows,
            title=(
                f"latency profile: pipeline({args.operators}), "
                f"{args.payload}B, {machine.name}"
            ),
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .bench.harness import oracle_sweep
    from .graph import pipeline

    machine = _machine(args.machine, args.cores)
    graph = pipeline(
        args.operators,
        cost_flops=args.cost,
        payload_bytes=args.payload,
    )
    fractions = [i / 10 for i in range(11)]
    rows = oracle_sweep(graph, machine, fractions)
    print(
        format_table(
            ["fraction dynamic", "best threads", "throughput T/s"],
            rows,
            title=(
                f"static sweep: pipeline({args.operators}), "
                f"{args.payload}B, {machine.name}"
            ),
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Automating Multi-level Performance "
            "Elastic Components for IBM Streams' (Middleware '19)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    scenarios = sub.add_parser(
        "scenarios", help="inspect and validate the scenario zoo"
    )
    ssub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    slist = ssub.add_parser("list", help="list the scenario zoo")
    slist.add_argument(
        "--dir", default=None, help="scenario directory (default: zoo)"
    )
    svalidate = ssub.add_parser(
        "validate",
        help="validate scenario config files (schema + round-trip)",
    )
    svalidate.add_argument(
        "path", nargs="+", help="scenario file path or zoo name"
    )
    svalidate.add_argument(
        "--dir", default=None, help="scenario directory (default: zoo)"
    )

    bench = sub.add_parser(
        "bench", help="run a named scenario from the zoo"
    )
    bench.add_argument(
        "--scenario", required=True, help="scenario name or file path"
    )
    bench.add_argument(
        "--backend",
        default=None,
        choices=["des", "perfmodel", "both"],
        help="override the scenario's declared backend",
    )
    bench.add_argument(
        "--dir", default=None, help="scenario directory (default: zoo)"
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker-pool width for multi-PE scenarios (1 forces the "
            "sequential path; default: the scenario's run.jobs, then "
            "REPRO_JOB_WORKERS, then 1)"
        ),
    )
    bench.add_argument(
        "--warm-start",
        default=None,
        choices=["off", "model", "history", "auto"],
        help=(
            "coordinator warm-start policy: 'model' seeds from the "
            "analytical performance model, 'history' from the "
            "persistent phase store (REPRO_MEMO_DIR), 'auto' tries "
            "history then model (default: the scenario's "
            "run.warm_start, then REPRO_WARM_START, then off)"
        ),
    )

    run = sub.add_parser("run", help="run a figure experiment")
    run.add_argument("experiment", help="e.g. fig09, fig15a")
    run.add_argument(
        "--machine", default="xeon", choices=["xeon", "power8"]
    )

    trace = sub.add_parser(
        "trace",
        help="replay an experiment and export its decision trace",
    )
    from .obs.trace_cli import add_trace_arguments

    add_trace_arguments(trace)

    for cmd, helptext in [
        ("elastic", "run multi-level elasticity on a pipeline"),
        ("sweep", "static oracle sweep over the dynamic fraction"),
        ("latency", "latency profile across configurations"),
    ]:
        p = sub.add_parser(cmd, help=helptext)
        p.add_argument("--operators", type=int, default=100)
        p.add_argument("--payload", type=int, default=1024)
        p.add_argument("--cost", type=float, default=100.0)
        p.add_argument(
            "--machine",
            default="xeon",
            choices=["xeon", "power8", "laptop"],
        )
        p.add_argument("--cores", type=int, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--duration", type=float, default=10_000.0)
    return parser


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.trace_cli import run_trace

    return run_trace(args)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import cli as scenario_cli

    if args.scenarios_command == "list":
        return scenario_cli.cmd_list(args)
    return scenario_cli.cmd_validate(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .scenarios import cli as scenario_cli

    return scenario_cli.cmd_bench(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers: Dict[str, Callable[[argparse.Namespace], int]] = {
        "list": _cmd_list,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "elastic": _cmd_elastic,
        "sweep": _cmd_sweep,
        "latency": _cmd_latency,
        "scenarios": _cmd_scenarios,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
