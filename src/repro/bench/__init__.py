"""Benchmark harness: baselines, per-figure experiments, reporting."""

from .harness import (
    BaselineResult,
    Comparison,
    compare,
    oracle_sweep,
    run_dynamic_only,
    run_hand_optimized,
    run_manual,
    run_multi_level,
)
from .parallel import derive_seed, parallel_enabled, run_cells
from .timeline import render_timeline
from .reporting import (
    app_table,
    comparison_table,
    format_table,
)

__all__ = [
    "derive_seed",
    "parallel_enabled",
    "run_cells",
    "BaselineResult",
    "Comparison",
    "compare",
    "oracle_sweep",
    "run_dynamic_only",
    "run_hand_optimized",
    "run_manual",
    "run_multi_level",
    "render_timeline",
    "app_table",
    "comparison_table",
    "format_table",
]
