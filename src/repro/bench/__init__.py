"""Benchmark harness: baselines, per-figure experiments, reporting."""

from .harness import (
    BaselineResult,
    Comparison,
    compare,
    oracle_sweep,
    run_dynamic_only,
    run_hand_optimized,
    run_manual,
    run_multi_level,
)
from .timeline import render_timeline
from .reporting import (
    app_table,
    comparison_table,
    format_table,
)

__all__ = [
    "BaselineResult",
    "Comparison",
    "compare",
    "oracle_sweep",
    "run_dynamic_only",
    "run_hand_optimized",
    "run_manual",
    "run_multi_level",
    "render_timeline",
    "app_table",
    "comparison_table",
    "format_table",
]
