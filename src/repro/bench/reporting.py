"""ASCII reporting: render experiment results as the paper's tables.

The benchmark harness prints one table per figure with the same rows
and series the paper reports (speedups over manual, ratio of operators
under the dynamic model, thread counts), so EXPERIMENTS.md can record
paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .harness import Comparison


def throughput_rates(
    sink_tuples: float,
    measure_s: float,
    wall_s: float,
    cores: int = 1,
) -> Dict[str, float]:
    """Disambiguate the two normalizations of a sink-throughput number.

    A DES measurement has two clocks: the *simulated* clock (how fast
    the modeled system moves tuples) and the *wall* clock (how fast
    the simulator itself runs).  ``sink_tuples_per_s_sim`` is the
    quantity the paper's figures report; ``sink_tuples_per_s_wall`` is
    simulator performance, the number batching and fast-forwarding
    improve.  ``BENCH_des.json`` carries both, explicitly suffixed, so
    neither is mistaken for the other.
    """
    if measure_s <= 0 or wall_s <= 0 or cores < 1:
        raise ValueError(
            "measure_s and wall_s must be positive, cores >= 1"
        )
    per_wall = sink_tuples / wall_s
    return {
        "sink_tuples": round(float(sink_tuples), 1),
        "sink_tuples_per_s_sim": round(sink_tuples / measure_s, 1),
        "sink_tuples_per_s_wall": round(per_wall, 1),
        "sink_tuples_per_s_wall_per_core": round(per_wall / cores, 1),
    }


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a padded ASCII table."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


COMPARISON_HEADERS = [
    "workload",
    "manual T/s",
    "dynamic T/s",
    "multi T/s",
    "dyn x",
    "multi x",
    "multi/dyn",
    "dyn ratio",
    "threads",
]


def comparison_row(c: Comparison) -> List[object]:
    """One table row for a :class:`Comparison` (paper Figs. 9-12)."""
    return [
        c.workload,
        c.manual.throughput,
        c.dynamic.throughput,
        c.multi_level.throughput,
        c.dynamic_speedup,
        c.multi_level_speedup,
        c.multi_over_dynamic,
        c.multi_level.dynamic_ratio,
        c.multi_level.threads,
    ]


def comparison_table(
    comparisons: Sequence[Comparison], title: Optional[str] = None
) -> str:
    return format_table(
        COMPARISON_HEADERS,
        [comparison_row(c) for c in comparisons],
        title=title,
    )


APP_HEADERS = [
    "workload",
    "manual T/s",
    "hand T/s",
    "dynamic T/s",
    "multi T/s",
    "multi/hand",
    "hand thr",
    "multi thr",
]


def app_row(c: Comparison) -> List[object]:
    """Application table row (paper Fig. 15, includes hand-optimized)."""
    hand = c.hand_optimized
    hand_throughput = hand.throughput if hand else float("nan")
    hand_threads = hand.threads if hand else 0
    ratio = (
        c.multi_level.throughput / hand_throughput
        if hand and hand_throughput > 0
        else float("nan")
    )
    return [
        c.workload,
        c.manual.throughput,
        hand_throughput,
        c.dynamic.throughput,
        c.multi_level.throughput,
        ratio,
        hand_threads,
        c.multi_level.threads,
    ]


def app_table(
    comparisons: Sequence[Comparison], title: Optional[str] = None
) -> str:
    return format_table(
        APP_HEADERS, [app_row(c) for c in comparisons], title=title
    )
