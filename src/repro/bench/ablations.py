"""Ablation experiments for the paper's design choices (§3.2, §3.1.1).

The paper argues for several design decisions qualitatively; these
ablations make each argument measurable:

- :func:`ablate_start_direction` — "adjustment direction": start from
  minimum parallelism (the paper's choice) vs. fully dynamic.  Starting
  fully dynamic removes queues from the *least* expensive operators
  first, a signal "often indistinguishable from system noise", so the
  search terminates early at a worse configuration.
- :func:`ablate_coordination` — iterative refinement vs. a one-shot
  sequence (one threading-model pass, then thread count alone).  Shows
  why the components must keep triggering each other.
- :func:`ablate_binning` — logarithmic group binning (O2) vs.
  per-operator groups: same destination, far longer settling.
- :func:`ablate_primary_order` — the paper's §3.2 "primary adjustment"
  decision: thread count primary (adopted) vs. threading model primary
  (rejected).  The rejected ordering re-runs a full thread-count climb
  to degradation for every threading-model trial, oversubscribing the
  system far more often during adaptation.
- :func:`ablate_sens` — the SENS threshold: too small chases noise
  (stability suffers), too large under-explores (accuracy suffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.binning import ProfilingGroup
from ..core.coordinator import MultiLevelCoordinator
from ..core.history import Direction
from ..core.saso import SasoReport, analyze
from ..graph.analysis import queueable_indices
from ..graph.model import StreamGraph
from ..perfmodel.machine import MachineProfile
from ..runtime.config import ElasticityConfig, RuntimeConfig
from ..runtime.executor import AdaptationExecutor
from ..runtime.pe import ProcessingElement
from ..runtime.queues import QueuePlacement


@dataclass(frozen=True)
class AblationResult:
    """Outcome of one ablation arm."""

    arm: str
    converged_throughput: float
    settling_time_s: float
    final_threads: int
    final_n_queues: int
    saso: SasoReport
    mean_threads: float = 0.0
    periods_at_max_threads: int = 0


def _run(
    graph: StreamGraph,
    machine: MachineProfile,
    config: RuntimeConfig,
    arm: str,
    initial_placement: Optional[QueuePlacement] = None,
    coordinator: Optional[MultiLevelCoordinator] = None,
    duration_s: float = 30_000.0,
) -> AblationResult:
    pe = ProcessingElement(graph, machine, config)
    if initial_placement is not None:
        pe.set_placement(initial_placement)
    executor = AdaptationExecutor(pe, coordinator=coordinator)
    if coordinator is not None and initial_placement is not None:
        # Seed the coordinator's threading-model state with the actual
        # starting placement so DOWN phases see the queues.
        groups = pe.profiling_groups()
        executor.coordinator.threading_model.set_groups(
            groups, initial_placement
        )
    result = executor.run(duration_s, stop_after_stable_periods=24)
    trace = result.trace
    return AblationResult(
        arm=arm,
        converged_throughput=result.converged_throughput,
        settling_time_s=trace.last_change_time(),
        final_threads=result.final_threads,
        final_n_queues=result.final_n_queues,
        saso=analyze(trace),
    )


# ----------------------------------------------------------------------
def ablate_start_direction(
    graph: StreamGraph,
    machine: MachineProfile,
    seed: int = 0,
) -> List[AblationResult]:
    """Start from no parallelism (paper) vs. full parallelism."""
    config = RuntimeConfig(cores=machine.logical_cores, seed=seed)
    minimum = _run(graph, machine, config, arm="start-minimum")

    # Fully dynamic start: every queue placed, maximum threads.
    full = QueuePlacement.full(graph)
    elasticity = ElasticityConfig(
        initial_threads=machine.logical_cores,
    )
    config_full = RuntimeConfig(
        cores=machine.logical_cores, seed=seed, elasticity=elasticity
    )
    pe = ProcessingElement(graph, machine, config_full)
    pe.set_placement(full)
    coordinator = MultiLevelCoordinator(
        config=elasticity,
        max_threads=machine.logical_cores,
        profile_provider=pe.profiling_groups,
        seed=seed,
    )
    coordinator.threading_model.set_groups(pe.profiling_groups(), full)
    executor = AdaptationExecutor(pe, coordinator=coordinator)
    result = executor.run(30_000.0, stop_after_stable_periods=24)
    maximum = AblationResult(
        arm="start-maximum",
        converged_throughput=result.converged_throughput,
        settling_time_s=result.trace.last_change_time(),
        final_threads=result.final_threads,
        final_n_queues=result.final_n_queues,
        saso=analyze(result.trace),
    )
    return [minimum, maximum]


# ----------------------------------------------------------------------
def ablate_coordination(
    graph: StreamGraph,
    machine: MachineProfile,
    seed: int = 0,
) -> List[AblationResult]:
    """Iterative refinement vs. one-shot (no re-triggering).

    The one-shot arm runs a single threading-model phase at the minimum
    thread count and then lets thread count elasticity run alone — the
    naive way to combine the two components.
    """
    config = RuntimeConfig(cores=machine.logical_cores, seed=seed)
    iterative = _run(graph, machine, config, arm="iterative")

    # One-shot: drive the components manually.
    from ..core.thread_count import ThreadCountElasticity
    from ..core.threading_model import ThreadingModelElasticity
    from ..perfmodel.noise import NoiseModel
    from ..perfmodel.throughput import PerformanceModel

    pe = ProcessingElement(graph, machine, config)
    model = PerformanceModel(graph, machine)
    noise = NoiseModel(std=config.noise_std, seed=seed)
    tm = ThreadingModelElasticity(
        seed=seed, sens=config.elasticity.sens
    )
    tm.set_groups(pe.profiling_groups())
    threads = config.elasticity.initial_threads
    periods = 0

    def observe(placement):
        return noise.observe(model.sink_throughput(placement, threads))

    placement = QueuePlacement.empty()
    step = tm.begin_phase(Direction.UP, observe(placement))
    while not step.done and periods < 500:
        periods += 1
        placement = step.placement
        step = tm.step(observe(placement))
    placement = step.placement

    tc = ThreadCountElasticity(
        min_threads=config.elasticity.min_threads,
        max_threads=machine.logical_cores,
        initial_threads=threads,
        sens=config.elasticity.sens,
    )
    while not tc.settled and periods < 1000:
        periods += 1
        proposal = tc.propose(
            noise.observe(model.sink_throughput(placement, tc.current))
        )
        if proposal is not None:
            threads = proposal
    one_shot_throughput = model.sink_throughput(placement, tc.current)
    one_shot = AblationResult(
        arm="one-shot",
        converged_throughput=one_shot_throughput,
        settling_time_s=periods * config.elasticity.adaptation_period_s,
        final_threads=tc.current,
        final_n_queues=placement.n_queues,
        saso=analyze(
            iterative_trace_placeholder(),
        ),
    )
    return [iterative, one_shot]


def iterative_trace_placeholder():
    """Empty trace for arms driven outside the executor."""
    from ..runtime.events import AdaptationTrace

    return AdaptationTrace.empty()


# ----------------------------------------------------------------------
def ablate_primary_order(
    graph: StreamGraph,
    machine: MachineProfile,
    seed: int = 0,
) -> List[AblationResult]:
    """Thread count primary (paper) vs. threading model primary."""
    from ..core.alt_coordinator import ThreadingPrimaryCoordinator

    config = RuntimeConfig(cores=machine.logical_cores, seed=seed)

    def _stats(result) -> AblationResult:
        trace = result.trace
        threads = [o.threads for o in trace.observations]
        at_max = sum(
            1 for t in threads if t >= machine.logical_cores
        )
        return AblationResult(
            arm="",
            converged_throughput=result.converged_throughput,
            settling_time_s=trace.last_change_time(),
            final_threads=result.final_threads,
            final_n_queues=result.final_n_queues,
            saso=analyze(trace),
            mean_threads=sum(threads) / len(threads) if threads else 0.0,
            periods_at_max_threads=at_max,
        )

    from dataclasses import replace as _replace

    pe = ProcessingElement(graph, machine, config)
    executor = AdaptationExecutor(pe)
    primary_threads = _replace(
        _stats(executor.run(30_000.0, stop_after_stable_periods=24)),
        arm="thread-count-primary",
    )

    pe2 = ProcessingElement(graph, machine, config)
    alt = ThreadingPrimaryCoordinator(
        config=config.elasticity,
        max_threads=machine.logical_cores,
        profile_provider=pe2.profiling_groups,
        seed=seed,
    )
    executor2 = AdaptationExecutor(pe2, coordinator=alt)
    primary_model = _replace(
        _stats(executor2.run(30_000.0, stop_after_stable_periods=24)),
        arm="threading-model-primary",
    )
    return [primary_threads, primary_model]


# ----------------------------------------------------------------------
def ablate_binning(
    graph: StreamGraph,
    machine: MachineProfile,
    seed: int = 0,
) -> List[AblationResult]:
    """Logarithmic groups (O2) vs. one group per operator."""
    config = RuntimeConfig(cores=machine.logical_cores, seed=seed)
    grouped = _run(graph, machine, config, arm="log-binning")

    pe = ProcessingElement(graph, machine, config)

    def per_operator_groups() -> Sequence[ProfilingGroup]:
        profile = pe.profile()
        metrics = profile.as_dict()
        singles = [
            ProfilingGroup(
                members=(idx,),
                representative_metric=float(metrics.get(idx, 0)),
            )
            for idx in queueable_indices(graph)
        ]
        singles.sort(
            key=lambda g: g.representative_metric, reverse=True
        )
        return singles

    coordinator = MultiLevelCoordinator(
        config=config.elasticity,
        max_threads=machine.logical_cores,
        profile_provider=per_operator_groups,
        seed=seed,
    )
    executor = AdaptationExecutor(pe, coordinator=coordinator)
    result = executor.run(60_000.0, stop_after_stable_periods=24)
    per_op = AblationResult(
        arm="per-operator",
        converged_throughput=result.converged_throughput,
        settling_time_s=result.trace.last_change_time(),
        final_threads=result.final_threads,
        final_n_queues=result.final_n_queues,
        saso=analyze(result.trace),
    )
    return [grouped, per_op]


# ----------------------------------------------------------------------
def ablate_sens(
    graph: StreamGraph,
    machine: MachineProfile,
    sens_values: Sequence[float] = (0.01, 0.05, 0.20),
    noise_std: float = 0.03,
    seed: int = 0,
) -> Dict[float, AblationResult]:
    """Sweep the sensitivity threshold under elevated noise."""
    out: Dict[float, AblationResult] = {}
    for sens in sens_values:
        config = RuntimeConfig(
            cores=machine.logical_cores,
            seed=seed,
            noise_std=noise_std,
            elasticity=ElasticityConfig(sens=sens),
        )
        out[sens] = _run(graph, machine, config, arm=f"sens={sens}")
    return out
