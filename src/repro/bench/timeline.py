"""ASCII rendering of adaptation timelines (the paper's Fig. 6 plots).

Figure 6 plots throughput (left axis), scheduler queues (right axis)
and the current thread count (top axis) against time.  This module
renders the same three series from an :class:`AdaptationTrace` as
aligned text rows, so benchmark outputs and examples can show *how* a
run adapted, not just where it ended.
"""

from __future__ import annotations

from typing import List, Sequence

from ..runtime.events import AdaptationTrace

_BLOCKS = " _.:-=+*#%@"


def _scale_row(values: Sequence[float], width: int) -> List[float]:
    """Downsample ``values`` to ``width`` buckets (max within bucket)."""
    if not values:
        return []
    if len(values) <= width:
        return list(values)
    out = []
    bucket = len(values) / width
    for i in range(width):
        lo = int(i * bucket)
        hi = max(lo + 1, int((i + 1) * bucket))
        out.append(max(values[lo:hi]))
    return out


def _spark(values: Sequence[float], width: int) -> str:
    scaled = _scale_row(values, width)
    top = max(scaled) if scaled and max(scaled) > 0 else 1.0
    return "".join(
        _BLOCKS[
            min(len(_BLOCKS) - 1, int(v / top * (len(_BLOCKS) - 1)))
        ]
        for v in scaled
    )


def _thread_segments(trace: AdaptationTrace, width: int) -> str:
    """Top-axis style thread-count labels at their change positions."""
    if not trace.observations:
        return ""
    duration = trace.duration_s
    row = [" "] * width
    last_label_end = -2
    threads = None
    for obs in trace.observations:
        if obs.threads != threads:
            threads = obs.threads
            pos = (
                int(obs.time_s / duration * (width - 1))
                if duration
                else 0
            )
            label = str(threads)
            if pos > last_label_end + 1 and pos + len(label) <= width:
                for i, ch in enumerate(label):
                    row[pos + i] = ch
                last_label_end = pos + len(label) - 1
    return "".join(row)


def render_timeline(
    trace: AdaptationTrace, width: int = 76, title: str = ""
) -> str:
    """Render throughput / queues / threads rows for a trace."""
    throughput = [o.true_throughput for o in trace.observations]
    queues = [float(o.n_queues) for o in trace.observations]
    lines = []
    if title:
        lines.append(title)
    if not trace.observations:
        lines.append("  (empty trace)")
        return "\n".join(lines)
    peak = max(throughput)
    peak_queues = max(queues) if queues else 0
    lines.append(f"threads    {_thread_segments(trace, width)}")
    lines.append(f"throughput {_spark(throughput, width)}  "
                 f"(peak {peak:,.0f} t/s)")
    lines.append(f"queues     {_spark(queues, width)}  "
                 f"(peak {int(peak_queues)})")
    duration = trace.duration_s
    lines.append(
        f"time       0s{' ' * (width - 12)}{duration:,.0f}s"
    )
    lines.append(
        f"settling: last change at {trace.last_change_time():,.0f}s; "
        f"converged {trace.final_throughput():,.0f} t/s with "
        f"{trace.final_threads()} threads / {trace.final_n_queues()} queues"
    )
    return "\n".join(lines)
