"""Experiment definitions: one entry point per paper table/figure.

Each ``figNN_*`` function runs the corresponding experiment and returns
structured results; the ``benchmarks/`` suite wraps these in
pytest-benchmark targets, prints the paper-style tables and asserts the
qualitative shapes.  Parameter grids default to a scaled-down version of
the paper's (for tractable run time) and accept the full grids via
arguments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.packet_analysis import (
    build_packet_analysis,
    hand_optimized as packet_hand_optimized,
)
from ..apps.vwap import build_vwap, hand_optimized as vwap_hand_optimized
from ..apps.workloads import phase_change
from ..core.saso import SasoReport, analyze
from ..graph.cost import CostDistribution, assign_costs, balanced, skewed
from ..graph.model import StreamGraph
from ..graph.topologies import bushy_82, data_parallel, mixed, pipeline
from ..perfmodel.machine import (
    MachineProfile,
    laptop,
    power8_184,
    xeon_176,
)
from ..runtime.config import ElasticityConfig, RuntimeConfig
from ..runtime.events import AdaptationTrace
from ..runtime.executor import AdaptationExecutor
from ..runtime.pe import ProcessingElement
from .harness import (
    Comparison,
    compare,
    oracle_sweep,
    run_multi_level,
)
from .parallel import run_cells

MACHINES = {"xeon": xeon_176, "power8": power8_184}


def _config(
    machine: MachineProfile,
    seed: int = 0,
    elasticity: Optional[ElasticityConfig] = None,
) -> RuntimeConfig:
    return RuntimeConfig(
        cores=machine.logical_cores,
        seed=seed,
        elasticity=elasticity or ElasticityConfig(),
    )


# ----------------------------------------------------------------------
# Figure 1 — motivation: throughput vs fraction of dynamic operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig01Result:
    payload_bytes: int
    cores: int
    sweep: Tuple[Tuple[float, int, float], ...]
    auto_throughput: float
    auto_fraction: float
    auto_threads: int

    @property
    def best_sweep_throughput(self) -> float:
        return max(t for _f, _n, t in self.sweep)

    @property
    def best_fraction(self) -> float:
        return max(self.sweep, key=lambda row: row[2])[0]

    @property
    def manual_throughput(self) -> float:
        return next(t for f, _n, t in self.sweep if f == 0.0)

    @property
    def full_dynamic_throughput(self) -> float:
        return next(t for f, _n, t in self.sweep if f == 1.0)


def _fig01_cell(
    payload: int,
    n_cores: int,
    n_operators: int,
    fractions: Tuple[float, ...],
    seed: int,
) -> Fig01Result:
    graph = pipeline(n_operators, cost_flops=100.0, payload_bytes=payload)
    machine = xeon_176().with_cores(n_cores)
    sweep = oracle_sweep(graph, machine, fractions)
    auto = run_multi_level(graph, machine, _config(machine, seed=seed))
    return Fig01Result(
        payload_bytes=payload,
        cores=n_cores,
        sweep=tuple(sweep),
        auto_throughput=auto.throughput,
        auto_fraction=auto.dynamic_ratio,
        auto_threads=auto.threads,
    )


def fig01_motivation(
    payloads: Sequence[int] = (1, 1024),
    cores: Sequence[int] = (16, 88),
    n_operators: int = 100,
    fractions: Sequence[float] = (
        0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0,
    ),
    seed: int = 0,
    parallel: Optional[bool] = None,
) -> List[Fig01Result]:
    """100-operator chain, 100 FLOPs/op: the motivating sweep.

    Cells (one per payload x cores point) are independent and fan out
    across a process pool (see :mod:`repro.bench.parallel`).
    """
    cells = [
        (payload, n_cores, n_operators, tuple(fractions), seed)
        for payload in payloads
        for n_cores in cores
    ]
    return run_cells(_fig01_cell, cells, parallel=parallel)


# ----------------------------------------------------------------------
# Figure 6 — adaptation-period optimizations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig06Result:
    variant: str
    trace: AdaptationTrace
    settling_time_s: float
    converged_throughput: float
    final_threads: int
    final_n_queues: int


def _fig06_graph(n_operators: int, payload: int, seed: int) -> StreamGraph:
    graph = pipeline(n_operators, payload_bytes=payload)
    return assign_costs(
        graph, skewed(), rng=np.random.default_rng(seed)
    )


def fig06_adaptation(
    n_operators: int = 500,
    payload_bytes: int = 1024,
    cores: int = 88,
    duration_s: float = 20_000.0,
    seed: int = 0,
) -> List[Fig06Result]:
    """Four variants: (a) no optimizations, (b) history, (c) history +
    sf=0.6, (d) history + sf=0."""
    graph = _fig06_graph(n_operators, payload_bytes, seed)
    machine = xeon_176().with_cores(cores)
    base = ElasticityConfig()
    variants = [
        ("no-opt", base.without_optimizations()),
        ("history", base.with_history_only()),
        ("history+sf0.6", base.with_satisfaction(0.6)),
        ("history+sf0", base.with_satisfaction(0.0)),
    ]
    results = []
    for name, elasticity in variants:
        config = _config(machine, seed=seed, elasticity=elasticity)
        pe = ProcessingElement(graph, machine, config)
        executor = AdaptationExecutor(pe)
        run = executor.run(duration_s, stop_after_stable_periods=24)
        results.append(
            Fig06Result(
                variant=name,
                trace=run.trace,
                settling_time_s=run.trace.last_change_time(),
                converged_throughput=run.converged_throughput,
                final_threads=run.final_threads,
                final_n_queues=run.final_n_queues,
            )
        )
    return results


# ----------------------------------------------------------------------
# Figure 7 (DES substrate) — the profiled adaptation scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesAdaptationScenario:
    """One DES-driven adaptation run with its full decision record.

    ``decisions`` is the per-period ``(rule, set_threads, set_n_queues)``
    sequence from the coordinator's Fig. 7 state machine, so two runs
    can be checked for behavioural equivalence (the sampled-profiling
    fast path must walk the same R1-R5 decisions as the fine-grained
    dedicated-run design it replaces).  ``sim_events`` counts only DES
    kernel events actually executed — measurement memo hits add none.
    """

    wall_s: float
    sim_events: int
    final_threads: int
    final_queues: Tuple[int, ...]
    converged_throughput: float
    decisions: Tuple[Tuple[str, Optional[int], Optional[int]], ...]
    cache_hits: int
    cache_misses: int


def fig07_des_adaptation(
    sampled_profiling: bool = True,
    memoize: bool = True,
    max_periods: int = 160,
    n_operators: int = 8,
    cost_flops: float = 4000.0,
    payload_bytes: int = 128,
    cores: int = 4,
    seed: int = 8,
    warmup_s: float = 0.001,
    measure_s: float = 0.004,
) -> DesAdaptationScenario:
    """Tuple-level adaptation with execution profiling (§3.1 + Fig. 7).

    Runs the multi-level coordinator against the DES engine with the
    profile coming from actual execution.  ``sampled_profiling=True``
    is the continuous-sampling fast path (the profiler rides inside
    each measurement run via sampled accounting); ``False`` is the
    previous design — unprofiled measurements plus a dedicated
    fine-grained profiling run per coordinator request.  ``memoize``
    toggles measurement memoization; the benchmark suite times
    ``(False, False)`` against ``(True, True)`` as the before/after of
    the profiled-fast-path work.

    The run uses a fixed-length trace (no stable-stop) so the two
    variants walk the same number of periods, like the paper's Fig. 7
    timelines which plot fixed durations.
    """
    from ..des.adaptation import DesAdaptationRunner
    from ..obs.hub import ObservabilityHub
    from . import cache

    graph = pipeline(
        n_operators, cost_flops=cost_flops, payload_bytes=payload_bytes
    )
    machine = laptop(cores)
    hub = ObservabilityHub()
    with cache.override(memoize):
        cache.clear()
        before = cache.stats()
        runner = DesAdaptationRunner(
            graph,
            machine,
            RuntimeConfig(cores=cores, seed=seed),
            warmup_s=warmup_s,
            measure_s=measure_s,
            profile_from_execution=True,
            sampled_profiling=sampled_profiling,
            obs=hub,
        )
        t0 = time.perf_counter()
        result = runner.run(
            max_periods=max_periods, stop_after_stable_periods=None
        )
        wall = time.perf_counter() - t0
        after = cache.stats()
        cache.clear()
    return DesAdaptationScenario(
        wall_s=wall,
        sim_events=runner.sim_events,
        final_threads=result.final_threads,
        final_queues=tuple(sorted(result.final_placement.queued)),
        converged_throughput=result.converged_throughput,
        decisions=tuple(
            (d.rule, d.set_threads, d.set_n_queues)
            for d in hub.decisions()
        ),
        cache_hits=after["hits"] - before["hits"],
        cache_misses=after["misses"] - before["misses"],
    )


# ----------------------------------------------------------------------
# Figures 9-12 — benchmark graph comparisons
# ----------------------------------------------------------------------
def _fig09_cell(
    machine_name: str,
    distribution: CostDistribution,
    n_ops: int,
    payload: int,
    seed: int,
) -> Comparison:
    machine = MACHINES[machine_name]()
    graph = pipeline(n_ops, payload_bytes=payload)
    graph = assign_costs(
        graph, distribution, rng=np.random.default_rng(seed)
    )
    return compare(
        graph,
        machine,
        _config(machine, seed=seed),
        workload=f"pipe({n_ops}) {payload}B",
    )


def fig09_pipeline(
    machine_name: str = "xeon",
    distribution: Optional[CostDistribution] = None,
    operator_counts: Sequence[int] = (100, 500, 1000),
    payloads: Sequence[int] = (128, 1024, 16384),
    seed: int = 0,
    parallel: Optional[bool] = None,
) -> List[Comparison]:
    """Pipeline graphs (Fig. 9): speedups over manual threading."""
    distribution = distribution or balanced(100.0)
    cells = [
        (machine_name, distribution, n_ops, payload, seed)
        for n_ops in operator_counts
        for payload in payloads
    ]
    return run_cells(_fig09_cell, cells, parallel=parallel)


def _fig10_cell(
    machine_name: str,
    width: int,
    payload: int,
    cost_flops: float,
    seed: int,
) -> Comparison:
    machine = MACHINES[machine_name]()
    graph = data_parallel(
        width, cost_flops=cost_flops, payload_bytes=payload
    )
    return compare(
        graph,
        machine,
        _config(machine, seed=seed),
        workload=f"dp({width}) {payload}B",
    )


def fig10_data_parallel(
    machine_name: str = "xeon",
    widths: Sequence[int] = (50, 100),
    payloads: Sequence[int] = (128, 1024, 16384),
    cost_flops: float = 100.0,
    seed: int = 0,
    parallel: Optional[bool] = None,
) -> List[Comparison]:
    """Pure data-parallel graphs (Fig. 10): sink-lock contention."""
    cells = [
        (machine_name, width, payload, cost_flops, seed)
        for width in widths
        for payload in payloads
    ]
    return run_cells(_fig10_cell, cells, parallel=parallel)


def _fig11_cell(
    machine_name: str,
    width: int,
    depth: int,
    payload: int,
    seed: int,
) -> Comparison:
    machine = MACHINES[machine_name]()
    graph = mixed(width, depth, payload_bytes=payload)
    return compare(
        graph,
        machine,
        _config(machine, seed=seed),
        workload=f"mixed({width}x{depth}) {payload}B",
    )


def fig11_mixed(
    machine_name: str = "xeon",
    depths: Sequence[int] = (50, 100),
    payloads: Sequence[int] = (128, 1024, 16384),
    width: int = 10,
    seed: int = 0,
    parallel: Optional[bool] = None,
) -> List[Comparison]:
    """Mixed pipeline/data-parallel graphs (Fig. 11)."""
    cells = [
        (machine_name, width, depth, payload, seed)
        for depth in depths
        for payload in payloads
    ]
    return run_cells(_fig11_cell, cells, parallel=parallel)


def _fig12_cell(
    n_cores: int, cost: float, payload_bytes: int, seed: int
) -> Comparison:
    machine = xeon_176().with_cores(n_cores)
    graph = bushy_82(cost_flops=cost, payload_bytes=payload_bytes)
    return compare(
        graph,
        machine,
        _config(machine, seed=seed),
        workload=f"bushy82 {n_cores}c {cost:g}F",
    )


def fig12_bushy(
    cores: Sequence[int] = (16, 88),
    costs: Sequence[float] = (1.0, 100.0, 10_000.0),
    payload_bytes: int = 1024,
    seed: int = 0,
    parallel: Optional[bool] = None,
) -> List[Comparison]:
    """Bushy graphs (Fig. 12): 82 operators, varying cores and cost."""
    cells = [
        (n_cores, cost, payload_bytes, seed)
        for n_cores in cores
        for cost in costs
    ]
    return run_cells(_fig12_cell, cells, parallel=parallel)


# ----------------------------------------------------------------------
# Figure 13 — adaptation to workload phase change
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig13Result:
    trace: AdaptationTrace
    change_time_s: float
    re_settling_time_s: float
    threads_before: int
    threads_after: int
    queues_before: int
    queues_after: int
    throughput_before: float
    throughput_after: float


def fig13_phase_change(
    n_operators: int = 100,
    cores: int = 88,
    change_time_s: float = 1200.0,
    total_duration_s: float = 4000.0,
    payload_bytes: int = 1024,
    seed: int = 0,
) -> Fig13Result:
    """Heavy ratio 10 % -> 90 % mid-run; measure re-adaptation."""
    workload = phase_change(
        n_operators=n_operators,
        change_time_s=change_time_s,
        payload_bytes=payload_bytes,
        seed=seed,
    )
    machine = xeon_176().with_cores(cores)
    config = _config(machine, seed=seed)
    pe = ProcessingElement(workload.initial, machine, config)
    executor = AdaptationExecutor(pe, workload_events=workload.events())
    run = executor.run(total_duration_s)
    trace = run.trace

    before = [o for o in trace.observations if o.time_s < change_time_s]
    after = [o for o in trace.observations if o.time_s >= change_time_s]
    changes_after = [
        c.time_s
        for c in trace.thread_changes + trace.placement_changes
        if c.time_s >= change_time_s
    ]
    re_settle = (max(changes_after) - change_time_s) if changes_after else 0.0
    return Fig13Result(
        trace=trace,
        change_time_s=change_time_s,
        re_settling_time_s=re_settle,
        threads_before=before[-1].threads if before else 0,
        threads_after=after[-1].threads if after else 0,
        queues_before=before[-1].n_queues if before else 0,
        queues_after=after[-1].n_queues if after else 0,
        throughput_before=(
            sum(o.true_throughput for o in before[-8:]) / len(before[-8:])
            if before
            else 0.0
        ),
        throughput_after=(
            sum(o.true_throughput for o in after[-8:]) / len(after[-8:])
            if after
            else 0.0
        ),
    )


# ----------------------------------------------------------------------
# Figure 15 — applications
# ----------------------------------------------------------------------
def fig15a_vwap(
    cores: Sequence[int] = (4, 16, 88), seed: int = 0
) -> List[Comparison]:
    """VWAP on 4/16/88 cores with all four strategies."""
    comparisons = []
    for n_cores in cores:
        machine = xeon_176().with_cores(n_cores)
        graph = build_vwap()
        hand = vwap_hand_optimized(graph)
        comparisons.append(
            compare(
                graph,
                machine,
                _config(machine, seed=seed),
                hand=hand,
                workload=f"VWAP {n_cores}c",
            )
        )
    return comparisons


def fig15b_packet_analysis(
    source_counts: Sequence[int] = (1, 8), seed: int = 0
) -> List[Comparison]:
    """PacketAnalysis with 1 and 8 DPDK sources on the Xeon system."""
    machine = xeon_176()
    comparisons = []
    for n_sources in source_counts:
        graph = build_packet_analysis(n_sources)
        hand = packet_hand_optimized(graph)
        comparisons.append(
            compare(
                graph,
                machine,
                _config(machine, seed=seed),
                hand=hand,
                workload=f"PacketAnalysis {n_sources}src",
            )
        )
    return comparisons


# ----------------------------------------------------------------------
# §3.1.1 — adaptation period / SENS robustness, and SASO
# ----------------------------------------------------------------------
def sec311_period_sweep(
    periods_s: Sequence[float] = (5.0, 10.0, 20.0, 30.0),
    n_operators: int = 100,
    cores: int = 88,
    payload_bytes: int = 1024,
    seed: int = 0,
) -> Dict[float, float]:
    """Converged throughput under different adaptation periods.

    The paper: periods of 5-30 s show no significant performance impact.
    """
    machine = xeon_176().with_cores(cores)
    graph = pipeline(n_operators, payload_bytes=payload_bytes)
    out: Dict[float, float] = {}
    for period in periods_s:
        elasticity = ElasticityConfig(adaptation_period_s=period)
        result = run_multi_level(
            graph,
            machine,
            _config(machine, seed=seed, elasticity=elasticity),
        )
        out[period] = result.throughput
    return out


def saso_analysis(
    n_operators: int = 500,
    payload_bytes: int = 1024,
    cores: int = 88,
    seed: int = 0,
) -> Tuple[SasoReport, AdaptationTrace]:
    """SASO report for a multi-level run against the oracle reference."""
    graph = _fig06_graph(n_operators, payload_bytes, seed)
    machine = xeon_176().with_cores(cores)
    result = run_multi_level(graph, machine, _config(machine, seed=seed))
    assert result.trace is not None
    reference = max(
        t
        for _f, _n, t in oracle_sweep(
            graph, machine, fractions=(0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0)
        )
    )
    report = analyze(result.trace, reference_throughput=reference)
    return report, result.trace


def scenario_bench(
    name: str,
    backend: Optional[str] = None,
    scenario_dir: Optional[str] = None,
):
    """Run a named zoo scenario and return its per-backend results.

    The bench-level entry point behind ``repro bench --scenario X``:
    resolves ``name`` against the scenario zoo (or takes a file path),
    compiles it and runs the adaptation loop on the requested
    backend(s).  Returns a tuple of
    :class:`~repro.scenarios.run.ScenarioRunResult`.
    """
    from ..scenarios import find_scenario, load_compiled, run_scenario

    path = find_scenario(name, scenario_dir)
    compiled = load_compiled(path)
    return run_scenario(compiled, backend=backend)
