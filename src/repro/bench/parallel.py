"""Parallel experiment runner: fan independent sweep cells to processes.

The figure experiments are sweeps over independent configuration cells
(payload x cores, operator-count x payload, ...).  Each cell is pure —
it builds its own graph and machine from picklable arguments and
returns picklable results — so the sweep fans out across a
:class:`~concurrent.futures.ProcessPoolExecutor`, one task per cell,
preserving cell order in the returned list.

Determinism: a cell's random state is fully determined by the seed in
its argument tuple (every cell builds its own ``numpy`` generator from
it), so results are identical whether the sweep runs serially, in a
pool, or in a pool of different width.  :func:`derive_seed` produces
decorrelated per-cell seeds from a base seed and the cell's identity
for sweeps that want distinct streams per cell; it hashes with BLAKE2
so it is stable across processes and interpreter launches (unlike
``hash()``, which is salted).

Environments without POSIX semaphores or ``fork``/``spawn`` support
(tight sandboxes) cannot host a process pool at all; pool
*infrastructure* failures therefore degrade to an in-process serial
run of the same cells.  Genuine worker errors are re-raised, not
swallowed: the serial fallback re-executes cells from the start, so an
error raised by the workload itself surfaces either way.

``REPRO_PARALLEL=0`` forces serial execution (useful when profiling a
sweep or debugging a cell); any other value, or an unset variable,
enables the pool whenever a sweep has more than one cell.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from . import cache

__all__ = ["derive_seed", "parallel_enabled", "run_cells"]

# Pool-infrastructure failures that mean "this environment cannot run
# a process pool", as opposed to errors raised by the workload itself.
_POOL_INFRA_ERRORS = (
    BrokenProcessPool,
    OSError,
    PermissionError,
    ImportError,
    pickle.PicklingError,
)


def derive_seed(base_seed: int, *key: Any) -> int:
    """Stable, decorrelated seed for one sweep cell.

    Hashes ``base_seed`` together with the cell's identifying values
    (``repr``-encoded) into a 63-bit integer.  Unlike ``hash()``, the
    result does not depend on ``PYTHONHASHSEED``, so a cell gets the
    same seed in the parent, in a pool worker, and across runs.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(struct.pack("<q", base_seed))
    for part in key:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") & 0x7FFFFFFFFFFFFFFF


def parallel_enabled(override: Optional[bool] = None) -> bool:
    """Whether sweeps should fan out to a process pool.

    ``override`` wins when given; otherwise ``REPRO_PARALLEL=0`` (or
    ``false``/``no``/``off``) disables, and anything else enables.
    """
    if override is not None:
        return override
    flag = os.environ.get("REPRO_PARALLEL", "1").strip().lower()
    return flag not in ("0", "false", "no", "off")


def _invoke(task: Tuple[Callable[..., Any], Tuple[Any, ...]]) -> Any:
    worker, cell = task
    return worker(*cell)


def run_cells(
    worker: Callable[..., Any],
    cells: Iterable[Sequence[Any]],
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Run ``worker(*cell)`` for every cell, results in cell order.

    ``worker`` must be a module-level (picklable) callable and each
    cell a tuple of picklable arguments.  Falls back to an in-process
    serial loop when the pool cannot be created or torn up mid-sweep
    (see module docstring); worker errors propagate unchanged.
    """
    cell_list = [tuple(cell) for cell in cells]
    if len(cell_list) < 2 or not parallel_enabled(parallel):
        return [worker(*cell) for cell in cell_list]
    workers = max_workers or min(len(cell_list), os.cpu_count() or 1)
    # Seed workers with the parent's memoized measurement cells
    # (repro.bench.cache): a sweep re-running a grid the parent has
    # already (partially) computed skips those cells in every worker.
    seed_cache = cache.snapshot() if cache.memo_enabled() else {}
    pool_kwargs = (
        {"initializer": cache.install, "initargs": (seed_cache,)}
        if seed_cache
        else {}
    )
    try:
        with ProcessPoolExecutor(max_workers=workers, **pool_kwargs) as pool:
            return list(
                pool.map(_invoke, [(worker, c) for c in cell_list])
            )
    except _POOL_INFRA_ERRORS:
        return [worker(*cell) for cell in cell_list]
