"""Compatibility shim: the parallel runner moved to
:mod:`repro.runtime.pool`.

The sweep fan-out started life here as a bench-only helper; the
multi-PE job executor now shares the same process-pool machinery, so
the canonical home is the runtime layer.  Importers of the historical
names keep working unchanged.
"""

from __future__ import annotations

from ..runtime.pool import (  # noqa: F401
    _POOL_INFRA_ERRORS,
    derive_seed,
    parallel_enabled,
    run_cells,
)

__all__ = ["derive_seed", "parallel_enabled", "run_cells"]
