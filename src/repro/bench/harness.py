"""Experiment harness: baselines and converged-throughput comparisons.

The paper compares four executions of the same graph:

- **manual** — no scheduler queues, no scheduler threads; the source
  operator threads execute everything (the benchmarks' manual model
  "uses only one thread to execute all operators" per source);
- **hand-optimized** — developer-chosen queue placement and thread
  count, fixed for the whole run (only for the applications);
- **dynamic / thread count elasticity** — every operator under the
  dynamic threading model, thread count tuned by the existing elastic
  component ("all throughputs are measured after thread elasticity has
  settled");
- **multi-level** — the full coordinated system of this paper.

All comparisons use *converged* throughput, mirroring "we only compare
the converged throughput to other baselines".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from . import cache
from ..core.thread_count import ThreadCountElasticity
from ..graph.model import StreamGraph
from ..obs.hub import Obs, ensure_hub
from ..perfmodel.machine import MachineProfile
from ..perfmodel.noise import NoiseModel
from ..perfmodel.throughput import PerformanceModel
from ..runtime.config import RuntimeConfig
from ..runtime.events import AdaptationTrace
from ..runtime.executor import AdaptationExecutor
from ..runtime.pe import ProcessingElement
from ..runtime.queues import QueuePlacement

DEFAULT_DURATION_S = 20_000.0
STABLE_PERIODS_TO_STOP = 24


@dataclass(frozen=True)
class BaselineResult:
    """Converged outcome of one execution strategy."""

    label: str
    throughput: float
    threads: int
    n_queues: int
    dynamic_ratio: float
    trace: Optional[AdaptationTrace] = None


@dataclass(frozen=True)
class Comparison:
    """All strategies on one workload, with derived speedups."""

    workload: str
    manual: BaselineResult
    dynamic: BaselineResult
    multi_level: BaselineResult
    hand_optimized: Optional[BaselineResult] = None
    # Wall-clock seconds spent computing this comparison (all
    # strategies), for the perf-tracking artifacts (BENCH_des.json).
    wall_s: float = 0.0

    @property
    def dynamic_speedup(self) -> float:
        """Dynamic (thread count elasticity) over manual."""
        return _ratio(self.dynamic.throughput, self.manual.throughput)

    @property
    def multi_level_speedup(self) -> float:
        """Multi-level elasticity over manual."""
        return _ratio(self.multi_level.throughput, self.manual.throughput)

    @property
    def multi_over_dynamic(self) -> float:
        """The number printed on top of the paper's black bars."""
        return _ratio(self.multi_level.throughput, self.dynamic.throughput)


def _ratio(a: float, b: float) -> float:
    return a / b if b > 0 else float("inf")


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
def run_manual(
    graph: StreamGraph, machine: MachineProfile
) -> BaselineResult:
    """No queues: each source's operator thread executes its region."""
    model = PerformanceModel(graph, machine)
    placement = QueuePlacement.empty()
    throughput = model.sink_throughput(placement, 0)
    return BaselineResult(
        label="manual",
        throughput=throughput,
        threads=len(graph.sources),
        n_queues=0,
        dynamic_ratio=0.0,
    )


def run_hand_optimized(
    graph: StreamGraph,
    machine: MachineProfile,
    placement: QueuePlacement,
    threads: int,
) -> BaselineResult:
    """Fixed developer-tuned placement and thread count."""
    model = PerformanceModel(graph, machine)
    throughput = model.sink_throughput(placement, threads)
    return BaselineResult(
        label="hand-optimized",
        throughput=throughput,
        threads=threads,
        n_queues=placement.n_queues,
        dynamic_ratio=placement.dynamic_ratio(graph),
    )


def run_dynamic_only(
    graph: StreamGraph,
    machine: MachineProfile,
    config: Optional[RuntimeConfig] = None,
    max_periods: int = 400,
    obs: Optional[Obs] = None,
) -> BaselineResult:
    """Full dynamic placement + thread count elasticity alone.

    Reproduces Streams 4.2 behaviour: scheduler queues in front of every
    (non-source) operator, and the elastic thread scheduler searching
    for the best count.  The search runs on noisy observations like the
    real system.
    """
    config = config or RuntimeConfig(cores=machine.logical_cores)
    hub = ensure_hub(obs)
    hub.registry.counter(
        "bench.runs.dynamic", "dynamic-only baseline runs"
    ).inc()
    model = PerformanceModel(graph, machine)
    placement = QueuePlacement.full(graph)
    noise = NoiseModel(std=config.noise_std, seed=config.seed + 7)
    controller = ThreadCountElasticity(
        min_threads=config.elasticity.min_threads,
        max_threads=config.effective_max_threads,
        initial_threads=config.elasticity.initial_threads,
        sens=config.elasticity.sens,
        obs=hub,
    )
    threads = controller.current
    for _ in range(max_periods):
        observed = noise.observe(model.sink_throughput(placement, threads))
        proposal = controller.propose(observed)
        if proposal is not None:
            threads = proposal
        elif controller.settled:
            break
    throughput = model.sink_throughput(placement, threads)
    return BaselineResult(
        label="dynamic",
        throughput=throughput,
        threads=threads,
        n_queues=placement.n_queues,
        dynamic_ratio=1.0,
    )


def run_multi_level(
    graph: StreamGraph,
    machine: MachineProfile,
    config: Optional[RuntimeConfig] = None,
    duration_s: float = DEFAULT_DURATION_S,
    obs: Optional[Obs] = None,
) -> BaselineResult:
    """The full coordinated multi-level elasticity run."""
    config = config or RuntimeConfig(cores=machine.logical_cores)
    hub = ensure_hub(obs)
    hub.registry.counter(
        "bench.runs.multi_level", "multi-level elasticity runs"
    ).inc()
    pe = ProcessingElement(graph, machine, config)
    executor = AdaptationExecutor(pe, obs=hub)
    result = executor.run(
        duration_s, stop_after_stable_periods=STABLE_PERIODS_TO_STOP
    )
    return BaselineResult(
        label="multi-level",
        throughput=result.converged_throughput,
        threads=result.final_threads,
        n_queues=result.final_n_queues,
        dynamic_ratio=result.final_dynamic_ratio,
        trace=result.trace,
    )


def compare(
    graph: StreamGraph,
    machine: MachineProfile,
    config: Optional[RuntimeConfig] = None,
    hand: Optional[Tuple[QueuePlacement, int]] = None,
    workload: str = "",
    obs: Optional[Obs] = None,
) -> Comparison:
    """Run every strategy on one workload.

    Memoized (:mod:`repro.bench.cache`): the outcome is deterministic
    in the graph, machine, config and hand-tuned configuration, so a
    repeated cell — the same workload compared again across a sweep's
    fractions or adaptation periods — returns the cached
    :class:`Comparison` (with ``wall_s`` reflecting the skipped work)
    instead of re-running all strategies.
    """
    t0 = time.perf_counter()
    config = config or RuntimeConfig(cores=machine.logical_cores)
    key = (
        "bench.compare",
        cache.graph_fingerprint(graph),
        cache.machine_fingerprint(machine),
        cache.config_fingerprint(config),
        hand,
        workload,
    )
    hit, cached = cache.lookup(key, obs=obs)
    if hit:
        return replace(cached, wall_s=time.perf_counter() - t0)
    manual = run_manual(graph, machine)
    dynamic = run_dynamic_only(graph, machine, config, obs=obs)
    multi = run_multi_level(graph, machine, config, obs=obs)
    hand_result = None
    if hand is not None:
        hand_result = run_hand_optimized(graph, machine, hand[0], hand[1])
    return cache.store(
        key,
        Comparison(
            workload=workload or graph.name,
            manual=manual,
            dynamic=dynamic,
            multi_level=multi,
            hand_optimized=hand_result,
            wall_s=time.perf_counter() - t0,
        ),
    )


# ----------------------------------------------------------------------
# oracle sweep (reference for accuracy / Fig. 1 black lines)
# ----------------------------------------------------------------------
def oracle_sweep(
    graph: StreamGraph,
    machine: MachineProfile,
    fractions: Sequence[float],
    thread_candidates: Optional[Iterable[int]] = None,
) -> List[Tuple[float, int, float]]:
    """Best throughput per fraction of operators under dynamic threading.

    For each fraction, place queues on the most expensive operators (by
    rate-weighted cost, descending — the best static heuristic) and
    sweep the thread count, keeping the best.  Returns
    ``(fraction, best_threads, throughput)`` rows — the paper's black
    lines in Fig. 1, where "all throughputs are measured after thread
    elasticity has settled on the best number of threads".

    Memoized (:mod:`repro.bench.cache`): the sweep is deterministic in
    its arguments, and the same reference grid is recomputed across
    figures (Fig. 1 cells, SASO analysis), so repeated sweeps return
    the cached rows.
    """
    candidates_key = (
        tuple(thread_candidates) if thread_candidates is not None else None
    )
    if candidates_key is not None:
        thread_candidates = candidates_key
    key = (
        "bench.oracle_sweep",
        cache.graph_fingerprint(graph),
        cache.machine_fingerprint(machine),
        tuple(fractions),
        candidates_key,
    )
    hit, cached = cache.lookup(key)
    if hit:
        return list(cached)
    model = PerformanceModel(graph, machine)
    weighted = graph.weighted_cost_flops()
    topo_pos = {
        idx: pos for pos, idx in enumerate(graph.topological_order())
    }
    # Rank operators by rate-weighted cost; operators of equal weight
    # (e.g. every stage of a balanced pipeline) are interleaved evenly
    # by topological position rather than taken as a contiguous prefix:
    # a cluster of adjacent queues buys almost no pipeline parallelism,
    # and the oracle is supposed to be a strong static reference.
    buckets: dict = {}
    for op in graph:
        if op.is_source:
            continue
        buckets.setdefault(weighted[op.index], []).append(op.index)
    eligible: List[int] = []
    for weight in sorted(buckets, reverse=True):
        members = sorted(buckets[weight], key=lambda i: topo_pos[i])
        # Even interleave: repeatedly halve the index stride so the
        # first k of the resulting order are spread across the bucket.
        order: List[int] = []
        added = [False] * len(members)
        step = len(members)
        while step >= 1:
            i = 0
            while i < len(members):
                if not added[i]:
                    order.append(members[i])
                    added[i] = True
                i += step
            step //= 2
        eligible.extend(order)
    if thread_candidates is None:
        cores = machine.logical_cores
        thread_candidates = sorted(
            {1, 2, 4, 8, *range(0, cores + 1, max(1, cores // 16)), cores}
        )
    candidates = [t for t in thread_candidates if t >= 0]
    rows: List[Tuple[float, int, float]] = []
    for fraction in fractions:
        k = int(round(fraction * len(eligible)))
        placement = QueuePlacement.of(eligible[:k])
        best_threads, best = 0, 0.0
        for threads in candidates:
            throughput = model.sink_throughput(placement, threads)
            if throughput > best:
                best, best_threads = throughput, threads
        rows.append((fraction, best_threads, best))
    return list(cache.store(key, tuple(rows)))
