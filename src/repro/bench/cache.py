"""Measurement memoization: skip re-running identical experiment cells.

The figure and adaptation experiments re-evaluate identical
configuration cells constantly: an adaptation trace re-measures the
same ``(graph, placement, threads, machine, seed)`` cell every period
the coordinator holds a configuration (and again across Fig. 6's four
variants on the same graph); ``oracle_sweep`` and ``compare`` recompute
whole reference grids across fractions and periods.  Every one of those
computations is **deterministic** in its cell key — the DES kernel is
seedless-deterministic and all stochastic components derive their
generators from the seed in the key — so the second run of a cell is
pure waste.

This module provides the process-local memo store those layers share:

- :func:`fingerprint` hashes arbitrary printable components into a
  stable digest; :func:`graph_fingerprint` / :func:`machine_fingerprint`
  / :func:`config_fingerprint` build the standard key components
  (graphs hash their full serialized document, so any cost, edge,
  selectivity or payload change misses);
- :func:`lookup` / :func:`store` are the cache primitives, with
  ``bench.cache_hits`` / ``bench.cache_misses`` metrics recorded on the
  caller's observability hub and process-local counters for tests;
- :func:`snapshot` / :func:`install` export and import picklable cache
  state so :func:`repro.bench.parallel.run_cells` can seed pool workers
  with the parent's already-computed cells;
- :func:`disk_lookup` / :func:`disk_store` are an **optional on-disk
  tier** rooted at ``REPRO_MEMO_DIR`` (or an explicit directory):
  entries are pickled under versioned keys and survive across
  processes and sessions.  Loads are corruption-safe — an unreadable,
  truncated or stale-format entry is a miss, never an exception — so
  a shared cache directory can be populated concurrently and carried
  between runs without ceremony.  The warm-start phase store
  (:mod:`repro.core.warmstart`) persists through this tier.

Only immutable (or never-mutated) values belong in the cache —
``DesResult``, ``Comparison``, ``CostProfile`` are frozen dataclasses;
list-shaped results must be stored as tuples and copied on the way out
by the caller.  ``REPRO_MEMO=0`` disables memoization globally (every
lookup misses and nothing is stored), which keeps honest-timing
benchmark baselines one environment variable away.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from ..graph.model import StreamGraph
from ..graph.serialize import graph_to_dict
from ..obs.hub import Obs, ensure_hub

__all__ = [
    "DISK_FORMAT_VERSION",
    "config_fingerprint",
    "disk_dir",
    "disk_lookup",
    "disk_store",
    "fingerprint",
    "graph_fingerprint",
    "install",
    "lookup",
    "machine_fingerprint",
    "memo_enabled",
    "clear",
    "override",
    "snapshot",
    "stats",
    "store",
]

# Bounded store: adaptation traces explore O(tens) of cells and figure
# grids O(hundreds); well past that we assume a pathological caller and
# start over rather than grow without limit.
MAX_ENTRIES = 4096

_STORE: Dict[Tuple[Any, ...], Any] = {}
_HITS = 0
_MISSES = 0


# Programmatic enable/disable, scoped via the `override` context
# manager; wins over the environment flag when set.
_OVERRIDE: Optional[bool] = None


def memo_enabled(override: Optional[bool] = None) -> bool:
    """Whether measurement memoization is active.

    The ``override`` argument wins when given; next an active
    :func:`override` scope; otherwise ``REPRO_MEMO=0`` (or
    ``false``/``no``/``off``) disables, and anything else enables.
    """
    if override is not None:
        return override
    if _OVERRIDE is not None:
        return _OVERRIDE
    flag = os.environ.get("REPRO_MEMO", "1").strip().lower()
    return flag not in ("0", "false", "no", "off")


@contextmanager
def override(enabled: Optional[bool]) -> Iterator[None]:
    """Scope in which memoization is forced on/off (None = no forcing).

    Used by benchmarks to time an honest no-cache baseline against the
    memoized path in one process without touching the environment.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = enabled
    try:
        yield
    finally:
        _OVERRIDE = previous


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def fingerprint(*parts: Any) -> str:
    """Stable digest of ``repr``-encoded components.

    Like :func:`repro.bench.parallel.derive_seed`, hashing goes through
    BLAKE2 so the digest is identical across processes and interpreter
    launches (``hash()`` is salted).
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def graph_fingerprint(graph: StreamGraph) -> str:
    """Digest of the graph's full serialized document.

    Covers operators (costs, kinds, selectivities, locks, rate caps),
    edges and the tuple spec — any change that could alter a
    measurement changes the fingerprint.  Graphs are conceptually
    immutable (mutation goes through ``replace_costs``, which returns a
    new instance), so the digest is memoized on the instance.
    """
    cached = getattr(graph, "_memo_fingerprint", None)
    if cached is None:
        cached = fingerprint(graph_to_dict(graph))
        graph._memo_fingerprint = cached  # type: ignore[attr-defined]
    return cached


def machine_fingerprint(machine: Any) -> str:
    """Digest of a machine profile (frozen dataclass: repr is total)."""
    return fingerprint(machine)


def config_fingerprint(config: Any) -> str:
    """Digest of a runtime config (frozen dataclass: repr is total)."""
    return fingerprint(config)


# ----------------------------------------------------------------------
# the optional on-disk tier
# ----------------------------------------------------------------------
# Bumped whenever the meaning of cached payloads changes; entries
# written under any other version load as misses (stale-format safety).
DISK_FORMAT_VERSION = 1


def disk_dir(override: Optional[str] = None) -> Optional[str]:
    """Root of the on-disk tier, or None when it is disabled.

    An explicit ``override`` wins; otherwise the ``REPRO_MEMO_DIR``
    environment variable.  No directory means the tier is off and
    every disk lookup misses.
    """
    if override is not None:
        return override or None
    raw = os.environ.get("REPRO_MEMO_DIR", "").strip()
    return raw or None


def _disk_path(directory: str, kind: str, key: Any) -> str:
    return os.path.join(directory, kind, f"{fingerprint(key)}.pkl")


def disk_lookup(
    kind: str,
    key: Any,
    directory: Optional[str] = None,
    obs: Optional[Obs] = None,
) -> Tuple[bool, Any]:
    """Read one entry from the disk tier; ``(hit, value)``.

    Every failure mode — tier disabled, file absent, unreadable,
    truncated pickle, format-version mismatch, key-digest collision
    payload — degrades to a miss.  A shared cache directory can
    therefore never break a run, only fail to speed it up.
    """
    root = disk_dir(directory)
    if root is None:
        return False, None
    path = _disk_path(root, kind, key)
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        version, stored_key, value = payload
        if version != DISK_FORMAT_VERSION or stored_key != key:
            return False, None
    except Exception:
        return False, None
    hub = ensure_hub(obs)
    hub.registry.counter(
        "bench.cache_disk_hits", "lookups served from the on-disk tier"
    ).inc()
    return True, value


def disk_store(
    kind: str,
    key: Any,
    value: Any,
    directory: Optional[str] = None,
) -> Any:
    """Write one entry to the disk tier (no-op when it is disabled).

    Writes go through a temp file + ``os.replace`` so concurrent
    readers only ever see complete entries; unpicklable values and
    filesystem errors are swallowed (the tier is an accelerator, not
    a store of record).
    """
    root = disk_dir(directory)
    if root is None:
        return value
    path = _disk_path(root, kind, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(tmp, "wb") as fh:
            pickle.dump((DISK_FORMAT_VERSION, key, value), fh)
        os.replace(tmp, path)
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return value


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
_SENTINEL = object()


def lookup(key: Tuple[Any, ...], obs: Optional[Obs] = None) -> Tuple[bool, Any]:
    """Return ``(hit, value)`` for ``key``; records hit/miss metrics."""
    global _HITS, _MISSES
    hub = ensure_hub(obs)
    if not memo_enabled():
        _MISSES += 1
        hub.registry.counter(
            "bench.cache_misses", "measurement memo lookups that missed"
        ).inc()
        return False, None
    value = _STORE.get(key, _SENTINEL)
    if value is _SENTINEL:
        # Memory miss: fall through to the on-disk tier (when a
        # REPRO_MEMO_DIR is configured) and promote hits into memory.
        disk_hit, disk_value = disk_lookup("memo", key, obs=hub)
        if disk_hit:
            if len(_STORE) >= MAX_ENTRIES:
                _STORE.clear()
            _STORE[key] = disk_value
            value = disk_value
        else:
            _MISSES += 1
            hub.registry.counter(
                "bench.cache_misses",
                "measurement memo lookups that missed",
            ).inc()
            return False, None
    _HITS += 1
    hub.registry.counter(
        "bench.cache_hits", "measurement re-runs skipped by the memo cache"
    ).inc()
    return True, value


def store(key: Tuple[Any, ...], value: Any) -> Any:
    """Insert ``value`` under ``key`` (no-op when memoization is off)."""
    if memo_enabled():
        if len(_STORE) >= MAX_ENTRIES:
            _STORE.clear()
        _STORE[key] = value
        if disk_dir() is not None:
            disk_store("memo", key, value)
    return value


def stats() -> Dict[str, int]:
    """Process-local counters (tests and reporting)."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_STORE)}


def clear(reset_stats: bool = True) -> None:
    """Drop all cached cells (and, by default, the hit/miss counters)."""
    global _HITS, _MISSES
    _STORE.clear()
    if reset_stats:
        _HITS = 0
        _MISSES = 0


# ----------------------------------------------------------------------
# sharing with pool workers (repro.bench.parallel)
# ----------------------------------------------------------------------
def snapshot(limit: int = 256) -> Dict[Tuple[Any, ...], Any]:
    """Picklable export of up to ``limit`` cached cells.

    Entries that fail to pickle are dropped (a cell worth caching is a
    plain result dataclass; anything else is not worth shipping), so
    seeding a pool can never break it.
    """
    out: Dict[Tuple[Any, ...], Any] = {}
    for key, value in _STORE.items():
        if len(out) >= limit:
            break
        try:
            pickle.dumps((key, value))
        except Exception:
            continue
        out[key] = value
    return out


def install(entries: Dict[Tuple[Any, ...], Any]) -> None:
    """Merge exported cells into this process's store.

    Used as a :class:`~concurrent.futures.ProcessPoolExecutor`
    initializer so workers start with the parent's computed cells.
    """
    if not memo_enabled() or not entries:
        return
    if len(_STORE) + len(entries) > MAX_ENTRIES:
        _STORE.clear()
    _STORE.update(entries)
