"""Aggregate the recorded benchmark tables into one summary document.

``pytest benchmarks/ --benchmark-only`` persists every figure's table
under ``benchmarks/results/``; this module stitches them into a single
Markdown report (``collect_summary``) so the measured numbers behind
EXPERIMENTS.md can be regenerated with one call:

    python -m repro.bench.summary [results_dir] [output.md]
"""

from __future__ import annotations

import pathlib
import sys
from typing import List, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]

# Presentation order: paper figures first, supporting analyses, then
# ablations and extensions.
_ORDER = [
    "fig01_motivation",
    "fig06_adaptation",
    "fig06_timelines",
    "fig09_pipeline_xeon_balanced",
    "fig09_pipeline_xeon_skewed",
    "fig09_pipeline_power8_balanced",
    "fig09_pipeline_power8_skewed",
    "fig10_data_parallel",
    "fig11_mixed",
    "fig12_bushy",
    "fig13_phase_change",
    "fig15a_vwap",
    "fig15b_packet_analysis",
    "sec311_period_sweep",
    "sec311_sens_sweep",
    "saso_properties",
    "saso_variance",
    "ablation_start_direction",
    "ablation_coordination",
    "ablation_binning",
    "ablation_primary_order",
    "ext_latency",
    "ext_multi_pe",
]


def collect_summary(
    results_dir: PathLike,
    names: Optional[Sequence[str]] = None,
) -> str:
    """Render all recorded result tables as one Markdown document.

    Unknown files (not in the presentation order) are appended at the
    end so nothing recorded is silently dropped.
    """
    results = pathlib.Path(results_dir)
    if not results.is_dir():
        raise FileNotFoundError(
            f"no results directory at {results}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    available = {p.stem: p for p in sorted(results.glob("*.txt"))}
    order: List[str] = list(names) if names else list(_ORDER)
    order += [n for n in sorted(available) if n not in order]

    sections = ["# Measured results (generated)\n"]
    for name in order:
        path = available.get(name)
        if path is None:
            continue
        body = path.read_text().rstrip()
        sections.append(f"## {name}\n\n```\n{body}\n```\n")
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    results_dir = args[0] if args else "benchmarks/results"
    output = args[1] if len(args) > 1 else None
    text = collect_summary(results_dir)
    if output:
        pathlib.Path(output).write_text(text)
        print(f"wrote {output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
