"""Batched channel configuration for the DES engine.

The engine's scheduler queues are *channels*: tuples move through them
in coalesced batches so one kernel event carries a whole burst
end-to-end (the Ray streaming ``QueueConfig`` design — max size, batch
size, flush timeout — transplanted onto the simulator).  Batching is a
pure event-coalescing transform: every tuple still pays its full
per-tuple cost (scan, pop synchronization, operator work, push copy),
so simulated time — and therefore every measurement and every R1–R5
adaptation decision — is identical to moving tuples one at a time.
Only the number of simulator events changes.

:class:`ChannelConfig` bundles the knobs:

``batch_size``
    Tuples one coalesced event may carry.  Scheduler threads drain up
    to this many tuples per port claim; saturated sources emit bursts
    of this size.  Bursts are additionally capped by the core
    timeslice (a thread never stretches a burst across a core
    hand-off) and by the claimed queue's occupancy, so raising it past
    the timeslice (32 tuples) has no further effect.

``flush_timeout_s``
    Upper bound on the *simulated* span of one coalesced burst event.
    A burst is flushed early when carrying another tuple would advance
    the clock past this horizon, which bounds how coarse the engine's
    time quantization can get on expensive operators (e.g. so sampled
    profiler snapshots keep sub-burst resolution).  ``None`` (the
    default) leaves the batch size as the only bound.

``prefetch``
    Extra batches a scheduler thread may drain from a claimed port
    before rescanning the queue list.  Each prefetched batch still
    pays full per-tuple costs, but the thread skips the rescan that
    could have diverted it to another queue — this trades strict
    round-robin work-finding fidelity for fewer events, so it is
    **excluded from the batched-vs-unbatched equivalence guarantee**
    and defaults to off.

``fastforward``
    Enable analytic fast-forwarding (:mod:`repro.des.fastforward`):
    once a long closed-loop window demonstrably settles (consecutive
    event probes measure the same counter rates), its remainder is
    advanced analytically — one clock shift plus extrapolated
    counters — instead of event by event.  Off by default; window
    boundaries, transients, open-loop arrival schedules and attached
    profilers always fall back to event granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ChannelConfig:
    """Validated batching knobs for the DES engine's channels."""

    batch_size: int = 8
    flush_timeout_s: Optional[float] = None
    prefetch: int = 0
    fastforward: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ValueError(
                f"batch_size must be an integer >= 1, "
                f"got {self.batch_size!r}"
            )
        if self.flush_timeout_s is not None and not (
            self.flush_timeout_s > 0.0
        ):
            raise ValueError(
                f"flush_timeout_s must be > 0 (or None), "
                f"got {self.flush_timeout_s!r}"
            )
        if not isinstance(self.prefetch, int) or self.prefetch < 0:
            raise ValueError(
                f"prefetch must be an integer >= 0, got {self.prefetch!r}"
            )

    def key(self) -> Tuple:
        """Hashable identity for measurement-cache fingerprints."""
        return (
            self.batch_size,
            self.flush_timeout_s,
            self.prefetch,
            self.fastforward,
        )

    def max_burst(self, per_tuple_s: float) -> int:
        """Largest burst of tuples one event may carry at this cost.

        The flush timeout bounds the simulated span of a coalesced
        event; a burst always carries at least one tuple (flushing
        below one tuple would mean never making progress).
        """
        cap = self.batch_size
        if self.flush_timeout_s is not None and per_tuple_s > 0.0:
            cap = min(cap, int(self.flush_timeout_s / per_tuple_s))
        return max(1, cap)


#: The engine default: the fast-path claim batching shipped by the DES
#: fast-path rewrite (8 tuples per claim), no flush cap, no prefetch,
#: no analytic fast-forward — byte-compatible with historical runs.
DEFAULT_CHANNEL = ChannelConfig()
