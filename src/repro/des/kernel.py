"""A from-scratch discrete-event simulation kernel.

Implements the minimal process-interaction style needed by the PE
engine (:mod:`repro.des.engine`): processes are Python generators that
yield *requests* to the simulator —

- a bare ``float`` (or :class:`Timeout`) — advance this process by a
  simulated delay,
- :class:`Get` / :class:`Put` — blocking pop/push on a bounded
  :class:`SimQueue` (the scheduler queues),
- :class:`Acquire` / :class:`Release` — FIFO mutual exclusion on a
  :class:`SimLock` (operator-internal locks, core slots),
- :class:`ParkUntilNonEmpty` — suspend until one of a set of queues
  receives an item (event-driven idle parking for scheduler threads).

The kernel is deterministic: events at equal timestamps are ordered by
insertion sequence.  No wall-clock access anywhere.

Fast path
---------
The event heap stores ``(time, seq, task, value)`` tuples directly, so
scheduling a resumption allocates no closure, and dispatch in
:meth:`Simulator._advance` is a type-keyed jump (with the timeout case
— by far the most frequent — inlined as a bare-``float`` check before
any request-object handling).  Hot process bodies should ``yield dt``
rather than ``yield Timeout(dt)`` to skip the per-event dataclass
allocation; both spellings have identical semantics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Deque, Generator, List, Optional, Tuple
from collections import deque

Process = Generator["Request", Any, None]


class Request:
    """Base class of everything a process may yield (floats also work)."""


@dataclass(frozen=True)
class Timeout(Request):
    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout: {self.delay}")


@dataclass(frozen=True)
class Get(Request):
    queue: "SimQueue"


@dataclass(frozen=True)
class Put(Request):
    queue: "SimQueue"
    item: Any


@dataclass(frozen=True)
class Acquire(Request):
    lock: "SimLock"


@dataclass(frozen=True)
class Release(Request):
    lock: "SimLock"


@dataclass(frozen=True)
class ParkUntilNonEmpty(Request):
    """Park the yielding task until any of ``queues`` receives an item.

    Semantics:

    - if any queue already holds items when the request is handled, the
      task is resumed immediately (no wakeup can be lost between a scan
      and the park, because the kernel handles requests synchronously);
    - otherwise the task joins each queue's park set and is woken by
      the next :class:`Put` that lands an item in one of them; wakeups
      are FIFO in park order, one task per enqueued item, which
      staggers a pool of parked scheduler threads round-robin instead
      of thundering all of them.

    The request is immutable and holds no per-use state, so callers
    should construct it **once** and re-yield the same instance — the
    idle path then allocates nothing.
    """

    queues: Tuple["SimQueue", ...]


class SimQueue:
    """Bounded FIFO queue with blocking put/get.

    Backpressure is the point: a full queue blocks its producer, which
    is how the real runtime's finite scheduler queues throttle upstream
    regions.
    """

    def __init__(self, capacity: int = 64, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self.getters: Deque["_Task"] = deque()
        self.putters: Deque[Tuple["_Task", Any]] = deque()
        self.parked: Deque["_Task"] = deque()
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_empty(self) -> bool:
        return not self.items

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity


class SimLock:
    """FIFO lock."""

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.held_by: Optional["_Task"] = None
        self.waiters: Deque["_Task"] = deque()
        self.acquisitions = 0


@dataclass
class _Task:
    """Bookkeeping for one running process."""

    process: Process
    name: str
    alive: bool = True
    # Stable small integer identity (spawn order), used by the event
    # trace signatures (see Simulator.trace).
    idx: int = 0
    # Queues whose park set currently contains this task (None when
    # the task is runnable or blocked on something else).
    parked_on: Optional[Tuple["SimQueue", ...]] = field(
        default=None, repr=False
    )


# Trace signature codes (see Simulator.trace): how one dispatched event
# left its task.  Together with the task index and the yielded payload
# (timeout value, or target queue/lock identity) they fingerprint each
# event compactly — a diagnostic surface for tests and tooling that
# need to compare or characterize event streams.
_SIG_DEAD = 0
_SIG_TIMEOUT = 1
_SIG_GET_BLOCKED = 2
_SIG_PUT_BLOCKED = 3
_SIG_ACQ_BLOCKED = 4
_SIG_PARKED = 5
_SIG_PARK_READY = 6
_SIG_OTHER = 7


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        # Heap entries carry the resumption inline: (time, seq, task,
        # send_value).  seq is unique, so task/value never compare.
        self._heap: List[Tuple[float, int, _Task, Any]] = []
        self._seq = itertools.count()
        self._tasks: List[_Task] = []
        self.events_processed = 0
        # Events elided by analytic fast-forwarding (whole steady
        # cycles applied as counter arithmetic instead of dispatch);
        # never included in events_processed.
        self.events_fastforwarded = 0
        # When set (to a list), _advance appends one signature tuple
        # (task_idx, code, payload) per dispatched event — an event-
        # stream diagnostic for tests and tooling.  None (default)
        # keeps the dispatch loop allocation-free.
        self.trace: Optional[List[Tuple[int, int, Any]]] = None
        self.deadlocked = False
        self.deadlock_tasks: Tuple[str, ...] = ()
        self._current: Optional[_Task] = None
        self._handlers = {
            Timeout: self._handle_timeout,
            Get: self._handle_get_req,
            Put: self._handle_put_req,
            Acquire: self._handle_acquire_req,
            Release: self._handle_release_req,
            ParkUntilNonEmpty: self._handle_park_req,
        }

    # ------------------------------------------------------------------
    def spawn(self, process: Process, name: str = "proc") -> _Task:
        """Register a generator process; it starts at the current time."""
        task = _Task(process=process, name=name, idx=len(self._tasks))
        self._tasks.append(task)
        heapq.heappush(self._heap, (self.now, next(self._seq), task, None))
        return task

    def _schedule_task(
        self, delay: float, task: _Task, value: Any = None
    ) -> None:
        heapq.heappush(
            self._heap, (self.now + delay, next(self._seq), task, value)
        )

    # ------------------------------------------------------------------
    def run_until(
        self, t_end: float, max_events: Optional[int] = None
    ) -> int:
        """Process events until simulated time reaches ``t_end``.

        With ``max_events`` given, dispatch stops after that many
        events even if ``t_end`` has not been reached — the clock then
        stays at the last dispatched event rather than jumping to
        ``t_end``, so callers (the fast-forwarder) can interleave
        bounded strides with analysis.  Returns the number of events
        dispatched by this call.

        If the heap drains while live tasks remain (all of them blocked
        on queues, locks or parked — with no pending event that could
        ever unblock them), the run is **wedged**: ``deadlocked`` is
        latched and ``deadlock_tasks`` names the stuck processes, so a
        caller measuring throughput over the window can tell "nothing
        ran" apart from "ran and produced nothing".
        """
        heap = self._heap
        pop = heapq.heappop
        advance = self._advance
        n = 0
        if max_events is None:
            while heap and heap[0][0] <= t_end:
                time, _seq, task, value = pop(heap)
                self.now = time
                advance(task, value)
                n += 1
        else:
            while n < max_events and heap and heap[0][0] <= t_end:
                time, _seq, task, value = pop(heap)
                self.now = time
                advance(task, value)
                n += 1
        self.events_processed += n
        if heap and heap[0][0] <= t_end:
            # Stopped early on the event budget: leave the clock where
            # dispatch stopped.
            return n
        if not heap:
            stuck = tuple(t.name for t in self._tasks if t.alive)
            if stuck:
                self.deadlocked = True
                self.deadlock_tasks = stuck
        self.now = max(self.now, t_end)
        return n

    def shift_time(self, delta: float) -> None:
        """Advance the clock and every pending event by ``delta``.

        A uniform shift preserves heap order (times move together,
        tie-breaking sequence numbers are untouched), so the future of
        the simulation is exactly the future it had, ``delta`` seconds
        later.  This is the primitive analytic fast-forwarding uses to
        skip whole steady cycles.
        """
        if delta <= 0.0:
            raise ValueError(f"shift_time needs delta > 0, got {delta}")
        self.now += delta
        self._heap[:] = [
            (t + delta, seq, task, value)
            for (t, seq, task, value) in self._heap
        ]

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    # synchronous helpers (safe inside a single event callback)
    # ------------------------------------------------------------------
    def pop_nowait(self, queue: SimQueue) -> Any:
        """Pop an item the caller *knows* is present, without yielding.

        Needed by scheduler threads that scan queues while holding a
        core token: yielding a blocking Get while holding the core could
        starve producers of cores.  Raises ``IndexError`` on empty.
        """
        item = queue.items.popleft()
        queue.total_got += 1
        self._unblock_putter(queue)
        return item

    def put_nowait(self, queue: SimQueue, item: Any) -> bool:
        """Deliver ``item`` without yielding; ``False`` when full.

        Identical to a non-blocking :class:`Put`: hands off to a
        waiting getter, else appends and wakes a parked task.  Because
        the kernel runs one event at a time, the caller's prior
        fullness check is still valid when this executes.
        """
        if queue.getters:
            getter = queue.getters.popleft()
            queue.total_put += 1
            queue.total_got += 1
            self._schedule_task(0.0, getter, item)
            return True
        if len(queue.items) < queue.capacity:
            queue.items.append(item)
            queue.total_put += 1
            if queue.parked:
                self._wake_parked(queue)
            return True
        return False

    def acquire_nowait(self, lock: SimLock) -> bool:
        """Take ``lock`` for the currently running task if it is free.

        Returns ``False`` (without queueing as a waiter) when held.
        """
        if lock.held_by is None:
            lock.held_by = self._current
            lock.acquisitions += 1
            return True
        return False

    def release_nowait(self, lock: SimLock) -> None:
        """Release ``lock`` held by the currently running task.

        FIFO hand-off: the longest-waiting :class:`Acquire` (if any)
        becomes the holder and is scheduled to resume.
        """
        if lock.held_by is not self._current:
            name = self._current.name if self._current else "<none>"
            raise RuntimeError(
                f"{name} released {lock.name} it does not hold"
            )
        if lock.waiters:
            nxt = lock.waiters.popleft()
            lock.held_by = nxt
            lock.acquisitions += 1
            self._schedule_task(0.0, nxt, None)
        else:
            lock.held_by = None

    # ------------------------------------------------------------------
    # process advancement
    # ------------------------------------------------------------------
    def _advance(self, task: _Task, value: Any) -> None:
        """Resume ``task`` with ``value`` and run it to its next *wait*.

        This is a trampoline: a request that does not block (a Get on a
        non-empty queue, a Put into free capacity, an uncontended
        Acquire, any Release) is satisfied synchronously and the task
        is resumed immediately, without a round-trip through the event
        heap.  Only timeouts and genuinely blocking requests suspend
        the task.  Semantically this is the old behaviour with the
        zero-delay self-resumption events elided; processes woken *by*
        this task (a getter handed an item, a lock passed to a waiter)
        still go through the heap, preserving FIFO fairness and
        deterministic ordering.
        """
        if not task.alive:
            return
        self._current = task
        heap = self._heap
        seq = self._seq
        now = self.now
        push = heapq.heappush
        send = task.process.send
        trace = self.trace
        while True:
            try:
                request = send(value)
            except StopIteration:
                task.alive = False
                if trace is not None:
                    trace.append((task.idx, _SIG_DEAD, 0.0))
                return
            cls = request.__class__
            # Hot path: bare numeric timeout — no request object at all.
            if cls is float or cls is int:
                if request < 0:
                    raise ValueError(
                        f"negative timeout {request} from {task.name}"
                    )
                push(heap, (now + request, next(seq), task, None))
                if trace is not None:
                    trace.append((task.idx, _SIG_TIMEOUT, request))
                return
            if cls is Timeout:
                push(heap, (now + request.delay, next(seq), task, None))
                if trace is not None:
                    trace.append((task.idx, _SIG_TIMEOUT, request.delay))
                return
            if cls is Get:
                queue = request.queue
                if queue.items:
                    value = queue.items.popleft()
                    queue.total_got += 1
                    if queue.putters:
                        self._unblock_putter(queue)
                    continue
                queue.getters.append(task)
                if trace is not None:
                    trace.append((task.idx, _SIG_GET_BLOCKED, id(queue)))
                return
            if cls is Put:
                queue = request.queue
                if queue.getters:
                    getter = queue.getters.popleft()
                    queue.total_put += 1
                    queue.total_got += 1
                    push(heap, (now, next(seq), getter, request.item))
                    value = None
                    continue
                if len(queue.items) < queue.capacity:
                    queue.items.append(request.item)
                    queue.total_put += 1
                    if queue.parked:
                        self._wake_parked(queue)
                    value = None
                    continue
                queue.putters.append((task, request.item))
                if trace is not None:
                    trace.append((task.idx, _SIG_PUT_BLOCKED, id(queue)))
                return
            if cls is Acquire:
                lock = request.lock
                if lock.held_by is None:
                    lock.held_by = task
                    lock.acquisitions += 1
                    value = None
                    continue
                lock.waiters.append(task)
                if trace is not None:
                    trace.append((task.idx, _SIG_ACQ_BLOCKED, id(lock)))
                return
            if cls is Release:
                lock = request.lock
                if lock.held_by is not task:
                    raise RuntimeError(
                        f"{task.name} released {lock.name} it does "
                        "not hold"
                    )
                if lock.waiters:
                    nxt = lock.waiters.popleft()
                    lock.held_by = nxt
                    lock.acquisitions += 1
                    push(heap, (now, next(seq), nxt, None))
                else:
                    lock.held_by = None
                value = None
                continue
            if cls is ParkUntilNonEmpty:
                self._handle_park_req(task, request)
                if trace is not None:
                    trace.append(
                        (
                            task.idx,
                            _SIG_PARKED
                            if task.parked_on is not None
                            else _SIG_PARK_READY,
                            0.0,
                        )
                    )
                return
            # Tolerate subclasses of the request dataclasses (cold
            # path; resumption goes through the heap).
            for base, fallback in self._handlers.items():
                if isinstance(request, base):
                    fallback(task, request)
                    if trace is not None:
                        trace.append((task.idx, _SIG_OTHER, 0.0))
                    return
            raise TypeError(
                f"unknown request {request!r} from {task.name}"
            )

    # ------------------------------------------------------------------
    # per-type handlers (type-keyed; unpack the request, then act)
    # ------------------------------------------------------------------
    def _handle_timeout(self, task: _Task, request: Timeout) -> None:
        heapq.heappush(
            self._heap,
            (self.now + request.delay, next(self._seq), task, None),
        )

    def _handle_get_req(self, task: _Task, request: Get) -> None:
        self._handle_get(task, request.queue)

    def _handle_put_req(self, task: _Task, request: Put) -> None:
        self._handle_put(task, request.queue, request.item)

    def _handle_acquire_req(self, task: _Task, request: Acquire) -> None:
        self._handle_acquire(task, request.lock)

    def _handle_release_req(self, task: _Task, request: Release) -> None:
        self._handle_release(task, request.lock)

    def _handle_park_req(
        self, task: _Task, request: ParkUntilNonEmpty
    ) -> None:
        queues = request.queues
        for q in queues:
            if q.items:
                # Work appeared between the caller's scan and the park
                # (or the caller never scanned): resume immediately.
                self._schedule_task(0.0, task, True)
                return
        task.parked_on = queues
        for q in queues:
            q.parked.append(task)

    # ------------------------------------------------------------------
    def _wake_parked(self, queue: SimQueue) -> None:
        """Wake the longest-parked task watching ``queue``, if any."""
        if not queue.parked:
            return
        task = queue.parked.popleft()
        if task.parked_on:
            for q in task.parked_on:
                if q is not queue:
                    try:
                        q.parked.remove(task)
                    except ValueError:
                        pass
        task.parked_on = None
        self._schedule_task(0.0, task, True)

    # ------------------------------------------------------------------
    def _handle_get(self, task: _Task, queue: SimQueue) -> None:
        if queue.items:
            item = queue.items.popleft()
            queue.total_got += 1
            self._unblock_putter(queue)
            self._schedule_task(0.0, task, item)
        else:
            queue.getters.append(task)

    def _handle_put(self, task: _Task, queue: SimQueue, item: Any) -> None:
        if queue.getters:
            getter = queue.getters.popleft()
            queue.total_put += 1
            queue.total_got += 1
            self._schedule_task(0.0, getter, item)
            self._schedule_task(0.0, task, None)
        elif not queue.is_full:
            queue.items.append(item)
            queue.total_put += 1
            self._schedule_task(0.0, task, None)
            self._wake_parked(queue)
        else:
            queue.putters.append((task, item))

    def _unblock_putter(self, queue: SimQueue) -> None:
        if queue.putters and not queue.is_full:
            putter, item = queue.putters.popleft()
            queue.items.append(item)
            queue.total_put += 1
            self._schedule_task(0.0, putter, None)
            self._wake_parked(queue)

    # ------------------------------------------------------------------
    def _handle_acquire(self, task: _Task, lock: SimLock) -> None:
        if lock.held_by is None:
            lock.held_by = task
            lock.acquisitions += 1
            self._schedule_task(0.0, task, None)
        else:
            lock.waiters.append(task)

    def _handle_release(self, task: _Task, lock: SimLock) -> None:
        if lock.held_by is not task:
            raise RuntimeError(
                f"{task.name} released {lock.name} it does not hold"
            )
        if lock.waiters:
            nxt = lock.waiters.popleft()
            lock.held_by = nxt
            lock.acquisitions += 1
            self._schedule_task(0.0, nxt, None)
        else:
            lock.held_by = None
        self._schedule_task(0.0, task, None)
