"""A from-scratch discrete-event simulation kernel.

Implements the minimal process-interaction style needed by the PE
engine (:mod:`repro.des.engine`): processes are Python generators that
yield *requests* to the simulator —

- :class:`Timeout` — advance this process by a simulated delay,
- :class:`Get` / :class:`Put` — blocking pop/push on a bounded
  :class:`SimQueue` (the scheduler queues),
- :class:`Acquire` / :class:`Release` — FIFO mutual exclusion on a
  :class:`SimLock` (operator-internal locks, core slots).

The kernel is deterministic: events at equal timestamps are ordered by
insertion sequence.  No wall-clock access anywhere.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple
from collections import deque

Process = Generator["Request", Any, None]


class Request:
    """Base class of everything a process may yield."""


@dataclass(frozen=True)
class Timeout(Request):
    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout: {self.delay}")


@dataclass(frozen=True)
class Get(Request):
    queue: "SimQueue"


@dataclass(frozen=True)
class Put(Request):
    queue: "SimQueue"
    item: Any


@dataclass(frozen=True)
class Acquire(Request):
    lock: "SimLock"


@dataclass(frozen=True)
class Release(Request):
    lock: "SimLock"


class SimQueue:
    """Bounded FIFO queue with blocking put/get.

    Backpressure is the point: a full queue blocks its producer, which
    is how the real runtime's finite scheduler queues throttle upstream
    regions.
    """

    def __init__(self, capacity: int = 64, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self.getters: Deque["_Task"] = deque()
        self.putters: Deque[Tuple["_Task", Any]] = deque()
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_empty(self) -> bool:
        return not self.items

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity


class SimLock:
    """FIFO lock."""

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.held_by: Optional["_Task"] = None
        self.waiters: Deque["_Task"] = deque()
        self.acquisitions = 0


@dataclass
class _Task:
    """Bookkeeping for one running process."""

    process: Process
    name: str
    alive: bool = True


class Simulator:
    """The event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._tasks: List[_Task] = []

    # ------------------------------------------------------------------
    def spawn(self, process: Process, name: str = "proc") -> _Task:
        """Register a generator process; it starts at the current time."""
        task = _Task(process=process, name=name)
        self._tasks.append(task)
        self._schedule(0.0, lambda: self._advance(task, None))
        return task

    def _schedule(self, delay: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn))

    # ------------------------------------------------------------------
    def run_until(self, t_end: float) -> None:
        """Process events until simulated time reaches ``t_end``."""
        while self._heap and self._heap[0][0] <= t_end:
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
        self.now = max(self.now, t_end)

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    # synchronous helpers (safe inside a single event callback)
    # ------------------------------------------------------------------
    def pop_nowait(self, queue: SimQueue) -> Any:
        """Pop an item the caller *knows* is present, without yielding.

        Needed by scheduler threads that scan queues while holding a
        core token: yielding a blocking Get while holding the core could
        starve producers of cores.  Raises ``IndexError`` on empty.
        """
        item = queue.items.popleft()
        queue.total_got += 1
        self._unblock_putter(queue)
        return item

    # ------------------------------------------------------------------
    # process advancement
    # ------------------------------------------------------------------
    def _advance(self, task: _Task, value: Any) -> None:
        """Resume ``task`` with ``value``, handle its next request."""
        if not task.alive:
            return
        try:
            request = task.process.send(value)
        except StopIteration:
            task.alive = False
            return
        self._handle(task, request)

    def _handle(self, task: _Task, request: Request) -> None:
        if isinstance(request, Timeout):
            self._schedule(request.delay, lambda: self._advance(task, None))
        elif isinstance(request, Get):
            self._handle_get(task, request.queue)
        elif isinstance(request, Put):
            self._handle_put(task, request.queue, request.item)
        elif isinstance(request, Acquire):
            self._handle_acquire(task, request.lock)
        elif isinstance(request, Release):
            self._handle_release(task, request.lock)
        else:
            raise TypeError(f"unknown request {request!r} from {task.name}")

    # ------------------------------------------------------------------
    def _handle_get(self, task: _Task, queue: SimQueue) -> None:
        if queue.items:
            item = queue.items.popleft()
            queue.total_got += 1
            self._unblock_putter(queue)
            self._schedule(0.0, lambda: self._advance(task, item))
        else:
            queue.getters.append(task)

    def _handle_put(self, task: _Task, queue: SimQueue, item: Any) -> None:
        if queue.getters:
            getter = queue.getters.popleft()
            queue.total_put += 1
            queue.total_got += 1
            self._schedule(0.0, lambda: self._advance(getter, item))
            self._schedule(0.0, lambda: self._advance(task, None))
        elif not queue.is_full:
            queue.items.append(item)
            queue.total_put += 1
            self._schedule(0.0, lambda: self._advance(task, None))
        else:
            queue.putters.append((task, item))

    def _unblock_putter(self, queue: SimQueue) -> None:
        if queue.putters and not queue.is_full:
            putter, item = queue.putters.popleft()
            queue.items.append(item)
            queue.total_put += 1
            self._schedule(0.0, lambda: self._advance(putter, None))

    # ------------------------------------------------------------------
    def _handle_acquire(self, task: _Task, lock: SimLock) -> None:
        if lock.held_by is None:
            lock.held_by = task
            lock.acquisitions += 1
            self._schedule(0.0, lambda: self._advance(task, None))
        else:
            lock.waiters.append(task)

    def _handle_release(self, task: _Task, lock: SimLock) -> None:
        if lock.held_by is not task:
            raise RuntimeError(
                f"{task.name} released {lock.name} it does not hold"
            )
        if lock.waiters:
            nxt = lock.waiters.popleft()
            lock.held_by = nxt
            lock.acquisitions += 1
            self._schedule(0.0, lambda: self._advance(nxt, None))
        else:
            lock.held_by = None
        self._schedule(0.0, lambda: self._advance(task, None))
