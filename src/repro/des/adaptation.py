"""Adaptation loop driven by the discrete-event simulator.

Everything in :mod:`repro.core` is substrate-agnostic; this module
closes the loop on the *tuple-level* substrate: each adaptation period
is measured by actually executing the configured PE in the DES engine,
and the coordinator's configuration changes apply to the next period.

Reconfiguration semantics: the real runtime migrates queues in place;
here each period runs a freshly instantiated engine (with a short
warm-up excluded from measurement), which models the paper's
observation that measurements right after a change are transient —
the warm-up plays the role of the settling the adaptation period
allows before the throughput is read.

Profiling from execution follows §3.1's continuous sampling: with
``profile_from_execution=True`` and ``sampled_profiling=True`` (the
default) the measurement engine itself carries the profiler thread,
which snapshots every executing thread's per-thread state variable
during the period — the profile falls out of the run the coordinator
was measuring anyway, no dedicated profiling run needed.  This is only
sound because sampled accounting is *non-intrusive*: the engine keeps
its coalesced fast path, so the profiled run measures exactly what an
unprofiled run would.  ``sampled_profiling=False`` keeps the previous
design — measurements run unprofiled, and each profile request launches
a dedicated engine with fine-grained per-operator time advancement —
because a fine-grained profiler *inside* the measurement run would
perturb the very throughput it is measuring.

Measurement memoization: a period's outcome is deterministic in
``(graph, placement, threads, machine, seed, windows)``, and the
coordinator re-measures the same configuration every period it holds
one (and across Fig. 6/7 variants on the same scenario), so measured
periods are cached through :mod:`repro.bench.cache`.  ``sim_events``
counts only the DES kernel events actually executed (cache hits add
none), which is what the perf benchmarks report.

Because tuple-level simulation is orders of magnitude more expensive
than the analytical model, this runner is meant for small graphs
(tens of operators) — validation and demonstration, not the
large-scale figure sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..bench import cache
from ..core.binning import ProfilingGroup, build_groups
from ..core.coordinator import MultiLevelCoordinator
from ..core.profiler import CostProfile, SamplingProfiler
from ..core.warmstart import (
    WarmStartSpec,
    make_runner_session,
    quantize_rate,
)
from ..graph.model import StreamGraph
from ..obs.hub import Obs, ensure_hub
from ..perfmodel.machine import MachineProfile
from ..runtime.config import RuntimeConfig
from ..runtime.events import (
    AdaptationTrace,
    Observation,
    PlacementChange,
    ThreadCountChange,
)
from ..runtime.queues import QueuePlacement
from .channels import DEFAULT_CHANNEL, ChannelConfig
from .engine import DesEngine

# Profiler wake-ups per measured window: enough samples that every
# non-negligible operator is caught, few enough that the profiler
# process stays a rounding error next to the tuple events.
_PROFILER_SAMPLES_PER_WINDOW = 400.0


@dataclass(frozen=True)
class DesAdaptationResult:
    """Outcome of a DES-driven elastic run."""

    trace: AdaptationTrace
    final_placement: QueuePlacement
    final_threads: int
    converged_throughput: float

    @property
    def final_n_queues(self) -> int:
        """Queue count of the final placement (the
        :class:`~repro.runtime.backend.AdaptationBackend` shape —
        perfmodel results carry the same field)."""
        return self.final_placement.n_queues


class DesAdaptationRunner:
    """Runs the multi-level coordinator against the DES engine."""

    def __init__(
        self,
        graph: StreamGraph,
        machine: MachineProfile,
        config: Optional[RuntimeConfig] = None,
        warmup_s: float = 0.002,
        measure_s: float = 0.01,
        queue_capacity: int = 16,
        workload_events: Optional[
            List[tuple]
        ] = None,  # [(time_s, StreamGraph)]
        profile_from_execution: bool = False,
        sampled_profiling: bool = True,
        obs: Optional[Obs] = None,
        arrivals_factory=None,  # t0 -> {source_index: Iterator[float]}
        arrivals_key: Optional[Tuple] = None,
        overflow: str = "block",
        channel: Optional[ChannelConfig] = None,
        warm_start: Optional[WarmStartSpec] = None,
    ) -> None:
        """``arrivals_factory`` makes measurement periods *open-loop*:
        each period's engine gets fresh arrival streams starting at the
        period's wall-clock offset, so time-varying envelopes (diurnal,
        flash crowds) actually advance across the adaptation run.
        ``arrivals_key`` is the process's hashable identity for the
        measurement cache — without it open-loop periods are never
        memoized (two factories cannot be proven equivalent).
        ``overflow`` is the ingress policy and ``channel`` the batched
        channel configuration every period's engine runs under (see
        :class:`DesEngine`); the channel is part of the measurement
        cache key, so differently-batched runs never share cells.
        """
        self.graph = graph
        self._workload_events = sorted(
            workload_events or [], key=lambda ev: ev[0]
        )
        self.profile_from_execution = profile_from_execution
        self.sampled_profiling = sampled_profiling
        self.machine = machine
        self.config = config if config is not None else RuntimeConfig()
        self.warmup_s = warmup_s
        self.measure_s = measure_s
        self.queue_capacity = queue_capacity
        self._hub = ensure_hub(obs)
        self._profiler = SamplingProfiler(
            machine,
            n_samples=self.config.elasticity.profiling_samples,
            seed=self.config.seed + 1,
        )
        self.coordinator = MultiLevelCoordinator(
            config=self.config.elasticity,
            max_threads=self.config.effective_max_threads,
            profile_provider=self._profile_groups,
            seed=self.config.seed,
            obs=self._hub,
        )
        self.placement = QueuePlacement.empty()
        self.threads = self.config.elasticity.initial_threads
        # Execution profile of the most recently measured period (only
        # with profile_from_execution); the coordinator's
        # profile_provider reads it instead of launching a run.
        self._last_profile: Optional[CostProfile] = None
        # DES kernel events actually executed across the whole run —
        # memo hits contribute nothing (that is the point).
        self.sim_events = 0
        self._arrivals_factory = arrivals_factory
        self._arrivals_key = arrivals_key
        self._overflow = overflow
        self._channel = channel if channel is not None else DEFAULT_CHANNEL
        # Simulated start time of the period being measured; drives the
        # arrival envelope under open-loop workloads.
        self._period_t0 = 0.0
        # Offered-load utilization of the last measured period (1.0
        # when closed-loop); see DesResult.offered_utilization.
        self.last_offered_utilization = 1.0
        # Mean thread-busy fraction of the last measured period; the
        # job-level coordinator reads it to judge scale-in headroom.
        self.last_mean_utilization = 0.0
        # Admitted source rate (tuples/s) of the last measured period.
        # Under the ``block`` overflow policy the engine's own
        # offered_utilization is blind to backpressure (a stalled
        # source stops *pulling* the schedule, so offered ≈ admitted);
        # the job executor compares this rate against the ingress rate
        # it installed to recover the true shortfall.
        self.last_source_rate = 0.0
        # Warm-start policy: a disabled/absent spec leaves the
        # coordinator's stock cold start byte-identical.
        self._warm_spec: Optional[WarmStartSpec] = None
        if warm_start is not None:
            self.set_warm_start(warm_start)
        # Per-run stepping state (begin_run/step_period); run() drives
        # these, and the multi-PE job executor drives them directly to
        # interleave periods across PEs.
        self.trace = AdaptationTrace.empty()
        self._events_left: List[tuple] = []
        self._m_offered_util = self._hub.registry.gauge(
            "des.offered_utilization",
            "fraction of the offered open-loop load the PE admitted "
            "in the last measured period",
        )

    @property
    def _profiler_period_s(self) -> float:
        return self.measure_s / _PROFILER_SAMPLES_PER_WINDOW

    @property
    def _continuous_profiling(self) -> bool:
        """Whether measurement runs carry the profiler thread."""
        return self.profile_from_execution and self.sampled_profiling

    @property
    def _open_loop(self) -> bool:
        return self._arrivals_factory is not None

    @property
    def _cacheable(self) -> bool:
        """Open-loop periods are memoizable only when the arrival
        process declared a hashable identity."""
        return not self._open_loop or self._arrivals_key is not None

    def _measure_key(self, kind: str, profiled: bool) -> Tuple:
        key = (
            kind,
            cache.graph_fingerprint(self.graph),
            tuple(sorted(self.placement.queued)),
            self.threads,
            cache.machine_fingerprint(self.machine),
            self.config.seed,
            self.warmup_s,
            self.measure_s,
            self.queue_capacity,
            profiled,
            self.sampled_profiling if profiled else None,
            self._profiler_period_s if profiled else None,
            self._channel.key(),
        )
        if self._open_loop:
            # The same configuration under a different envelope phase
            # (or drop policy) is a different measurement.
            key += (self._arrivals_key, self._period_t0, self._overflow)
        return key

    def _make_engine(self) -> DesEngine:
        arrivals = None
        if self._arrivals_factory is not None:
            arrivals = self._arrivals_factory(self._period_t0)
        return DesEngine(
            self.graph,
            self.machine,
            self.placement,
            self.threads,
            queue_capacity=self.queue_capacity,
            obs=self._hub,
            arrivals=arrivals,
            overflow=self._overflow,
            channel=self._channel,
        )

    def _run_profiled(self, sampled: bool) -> Tuple[DesEngine, CostProfile]:
        """One profiled execution of the current configuration."""
        engine = self._make_engine()
        profiler = engine.attach_profiler(
            period_s=self._profiler_period_s,
            sampled=sampled,
        )
        result = engine.run(
            warmup_s=self.warmup_s, measure_s=self.measure_s
        )
        self.sim_events += engine.sim.events_processed
        return result, profiler.profile(len(self.graph))

    def _profile_groups(self) -> List[ProfilingGroup]:
        if not self.profile_from_execution:
            return build_groups(
                self.graph, self._profiler.profile(self.graph)
            )
        if self._continuous_profiling and self._last_profile is not None:
            # The paper's actual mechanism (§3.1): the profiler thread
            # snapshots the per-thread state variables *during normal
            # execution* — the measurement run the coordinator just
            # observed already carried it, so reuse that profile.
            return build_groups(self.graph, self._last_profile)
        # Dedicated profiling run: fine-grained profiling cannot ride
        # inside the measurement (it would perturb it), and a sampled
        # run may be asked for a profile before any period was measured.
        if self._cacheable:
            key = self._measure_key("des.profile", True)
            hit, cached = cache.lookup(key, obs=self._hub)
        else:
            hit, cached = False, None
        if hit:
            _result, profile = cached
        elif self._cacheable:
            profile = cache.store(
                key, self._run_profiled(self.sampled_profiling)
            )[1]
        else:
            profile = self._run_profiled(self.sampled_profiling)[1]
        if self._continuous_profiling:
            self._last_profile = profile
        return build_groups(self.graph, profile)

    # ------------------------------------------------------------------
    def measure(self) -> float:
        """One adaptation period: execute the current configuration.

        Memoized: the DES is deterministic in the cell key, so a
        configuration the run (or a sibling variant) has already
        measured returns the cached result — and, under
        ``profile_from_execution``, the cached execution profile —
        without simulating a single event.
        """
        profiled = self._continuous_profiling
        if self._cacheable:
            key = self._measure_key("des.measure", profiled)
            hit, cached = cache.lookup(key, obs=self._hub)
        else:
            key = None
            hit, cached = False, None
        if hit:
            result, profile = cached
        elif profiled:
            result, profile = self._run_profiled(sampled=True)
            if key is not None:
                cache.store(key, (result, profile))
        else:
            engine = self._make_engine()
            result = engine.run(
                warmup_s=self.warmup_s, measure_s=self.measure_s
            )
            self.sim_events += engine.sim.events_processed
            profile = None
            if key is not None:
                cache.store(key, (result, profile))
        if profiled:
            self._last_profile = profile
        # Open-loop honesty: an underloaded PE reports its offered-load
        # utilization rather than letting a low absolute throughput be
        # mistaken for contention by whoever reads the trace.
        self.last_offered_utilization = result.offered_utilization
        self.last_mean_utilization = result.mean_utilization
        self.last_source_rate = result.source_tuples_per_s
        if result.open_loop:
            self._m_offered_util.set(result.offered_utilization)
        return result.sink_tuples_per_s

    def _phase_token(self):
        """Workload-phase component of the warm-start store key.

        Closed-loop runs have exactly one phase ("saturated").  Open-
        loop runs key on the envelope rate at the current period's
        start, quantized so a phase revisited at a near-identical
        offered rate (the next diurnal cycle, the next ON burst)
        shares its store entry; without a rate oracle the arrival
        key's full identity is the conservative fallback.
        """
        if not self._open_loop:
            return "saturated"
        spec = self._warm_spec
        if spec is not None and spec.phase_rate is not None:
            return ("rate", quantize_rate(spec.phase_rate(self._period_t0)))
        return ("open", self._arrivals_key)

    def set_warm_start(self, spec: Optional[WarmStartSpec]) -> None:
        """Install (or clear, with None) the warm-start policy.

        Part of the :class:`~repro.runtime.backend.AdaptationBackend`
        surface: every substrate accepts the same picklable spec and
        builds its own session against its graph and phase clock.
        """
        self._warm_spec = spec
        self.coordinator.set_warm_start(
            make_runner_session(
                spec,
                graph_fn=lambda: self.graph,
                machine=self.machine,
                config=self.config,
                phase_token=self._phase_token,
                obs=self._hub,
            )
        )

    def set_arrivals(self, factory, key: Optional[Tuple]) -> None:
        """Swap the arrival schedule between periods.

        The job layer couples a downstream PE's offered load to its
        upstream's *measured* emission: before each period it derives a
        fresh constant-rate schedule and installs it here.  ``key``
        must identify the schedule for the measurement cache (pass
        None to disable memoization for unidentifiable schedules).
        """
        self._arrivals_factory = factory
        self._arrivals_key = key

    def begin_run(self) -> None:
        """Reset per-run state ahead of a sequence of
        :meth:`step_period` calls (``run`` calls this itself)."""
        self.trace = AdaptationTrace.empty()
        self._events_left = list(self._workload_events)

    def step_period(self, k: int) -> float:
        """Execute adaptation period ``k`` (1-based): pop due workload
        events, measure the current configuration, record the
        observation, and apply the coordinator's decision.  Returns the
        observed throughput.

        ``run`` drives this in a loop; the multi-PE job executor
        drives several runners' periods in lockstep instead, injecting
        fresh arrival schedules between calls (:meth:`set_arrivals`).
        """
        period_s = self.config.elasticity.adaptation_period_s
        time_s = k * period_s
        # Arrival envelopes advance with the adaptation clock: the
        # k-th period's engine sees the schedule from (k-1)·T on.
        self._period_t0 = (k - 1) * period_s
        events = self._events_left
        while events and events[0][0] <= time_s:
            _, new_graph = events.pop(0)
            self.placement.validate(new_graph)
            self.graph = new_graph
        observed = self.measure()
        self.trace.observations.append(
            Observation(
                time_s=time_s,
                throughput=observed,
                true_throughput=observed,
                threads=self.threads,
                n_queues=self.placement.n_queues,
                mode=self.coordinator.mode.value,
            )
        )
        action = self.coordinator.step(observed)
        if action.set_threads is not None and (
            action.set_threads != self.threads
        ):
            self.trace.thread_changes.append(
                ThreadCountChange(
                    time_s=time_s,
                    old_threads=self.threads,
                    new_threads=action.set_threads,
                )
            )
            self.threads = action.set_threads
        if action.set_placement is not None and (
            action.set_placement.queued != self.placement.queued
        ):
            self.trace.placement_changes.append(
                PlacementChange(
                    time_s=time_s,
                    old_n_queues=self.placement.n_queues,
                    new_n_queues=action.set_placement.n_queues,
                )
            )
            self.placement = action.set_placement
        return observed

    def result(self) -> DesAdaptationResult:
        """Package the run state accumulated so far."""
        return DesAdaptationResult(
            trace=self.trace,
            final_placement=self.placement,
            final_threads=self.threads,
            converged_throughput=self.trace.final_throughput(window=4),
        )

    def run(
        self,
        max_periods: int = 120,
        stop_after_stable_periods: Optional[int] = 8,
    ) -> DesAdaptationResult:
        """Drive the adaptation loop for up to ``max_periods`` periods."""
        self.begin_run()
        stable_streak = 0
        for k in range(1, max_periods + 1):
            self.step_period(k)
            if (
                stop_after_stable_periods is not None
                and not self._events_left
            ):
                if self.coordinator.is_stable:
                    stable_streak += 1
                    if stable_streak >= stop_after_stable_periods:
                        break
                else:
                    stable_streak = 0
        return self.result()
