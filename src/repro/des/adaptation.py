"""Adaptation loop driven by the discrete-event simulator.

Everything in :mod:`repro.core` is substrate-agnostic; this module
closes the loop on the *tuple-level* substrate: each adaptation period
is measured by actually executing the configured PE in the DES engine,
and the coordinator's configuration changes apply to the next period.

Reconfiguration semantics: the real runtime migrates queues in place;
here each period runs a freshly instantiated engine (with a short
warm-up excluded from measurement), which models the paper's
observation that measurements right after a change are transient —
the warm-up plays the role of the settling the adaptation period
allows before the throughput is read.

Because tuple-level simulation is orders of magnitude more expensive
than the analytical model, this runner is meant for small graphs
(tens of operators) — validation and demonstration, not the
large-scale figure sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.binning import ProfilingGroup, build_groups
from ..core.coordinator import MultiLevelCoordinator
from ..core.profiler import SamplingProfiler
from ..graph.model import StreamGraph
from ..perfmodel.machine import MachineProfile
from ..runtime.config import RuntimeConfig
from ..runtime.events import (
    AdaptationTrace,
    Observation,
    PlacementChange,
    ThreadCountChange,
)
from ..runtime.queues import QueuePlacement
from .engine import DesEngine


@dataclass(frozen=True)
class DesAdaptationResult:
    """Outcome of a DES-driven elastic run."""

    trace: AdaptationTrace
    final_placement: QueuePlacement
    final_threads: int
    converged_throughput: float


class DesAdaptationRunner:
    """Runs the multi-level coordinator against the DES engine."""

    def __init__(
        self,
        graph: StreamGraph,
        machine: MachineProfile,
        config: Optional[RuntimeConfig] = None,
        warmup_s: float = 0.002,
        measure_s: float = 0.01,
        queue_capacity: int = 16,
        workload_events: Optional[
            List[tuple]
        ] = None,  # [(time_s, StreamGraph)]
        profile_from_execution: bool = False,
    ) -> None:
        self.graph = graph
        self._workload_events = sorted(
            workload_events or [], key=lambda ev: ev[0]
        )
        self.profile_from_execution = profile_from_execution
        self.machine = machine
        self.config = config if config is not None else RuntimeConfig()
        self.warmup_s = warmup_s
        self.measure_s = measure_s
        self.queue_capacity = queue_capacity
        self._profiler = SamplingProfiler(
            machine,
            n_samples=self.config.elasticity.profiling_samples,
            seed=self.config.seed + 1,
        )
        self.coordinator = MultiLevelCoordinator(
            config=self.config.elasticity,
            max_threads=self.config.effective_max_threads,
            profile_provider=self._profile_groups,
            seed=self.config.seed,
        )
        self.placement = QueuePlacement.empty()
        self.threads = self.config.elasticity.initial_threads

    def _profile_groups(self) -> List[ProfilingGroup]:
        if self.profile_from_execution:
            # The paper's actual mechanism: run the current
            # configuration and let the profiler thread snapshot the
            # per-thread state variables during execution.
            engine = DesEngine(
                self.graph,
                self.machine,
                self.placement,
                self.threads,
                queue_capacity=self.queue_capacity,
            )
            profiler = engine.attach_profiler(
                period_s=self.measure_s / 400.0
            )
            engine.run(warmup_s=self.warmup_s, measure_s=self.measure_s)
            return build_groups(
                self.graph, profiler.profile(len(self.graph))
            )
        return build_groups(self.graph, self._profiler.profile(self.graph))

    # ------------------------------------------------------------------
    def measure(self) -> float:
        """One adaptation period: execute the current configuration."""
        engine = DesEngine(
            self.graph,
            self.machine,
            self.placement,
            self.threads,
            queue_capacity=self.queue_capacity,
        )
        result = engine.run(
            warmup_s=self.warmup_s, measure_s=self.measure_s
        )
        return result.sink_tuples_per_s

    def run(
        self,
        max_periods: int = 120,
        stop_after_stable_periods: Optional[int] = 8,
    ) -> DesAdaptationResult:
        """Drive the adaptation loop for up to ``max_periods`` periods."""
        period_s = self.config.elasticity.adaptation_period_s
        trace = AdaptationTrace.empty()
        stable_streak = 0
        events = list(self._workload_events)
        for k in range(1, max_periods + 1):
            time_s = k * period_s
            while events and events[0][0] <= time_s:
                _, new_graph = events.pop(0)
                self.placement.validate(new_graph)
                self.graph = new_graph
            observed = self.measure()
            trace.observations.append(
                Observation(
                    time_s=time_s,
                    throughput=observed,
                    true_throughput=observed,
                    threads=self.threads,
                    n_queues=self.placement.n_queues,
                    mode=self.coordinator.mode.value,
                )
            )
            action = self.coordinator.step(observed)
            if action.set_threads is not None and (
                action.set_threads != self.threads
            ):
                trace.thread_changes.append(
                    ThreadCountChange(
                        time_s=time_s,
                        old_threads=self.threads,
                        new_threads=action.set_threads,
                    )
                )
                self.threads = action.set_threads
            if action.set_placement is not None and (
                action.set_placement.queued != self.placement.queued
            ):
                trace.placement_changes.append(
                    PlacementChange(
                        time_s=time_s,
                        old_n_queues=self.placement.n_queues,
                        new_n_queues=action.set_placement.n_queues,
                    )
                )
                self.placement = action.set_placement
            if stop_after_stable_periods is not None and not events:
                if self.coordinator.is_stable:
                    stable_streak += 1
                    if stable_streak >= stop_after_stable_periods:
                        break
                else:
                    stable_streak = 0
        return DesAdaptationResult(
            trace=trace,
            final_placement=self.placement,
            final_threads=self.threads,
            converged_throughput=trace.final_throughput(window=4),
        )
