"""Tuple-level discrete-event simulation of a processing element.

This is the validation substrate: where :mod:`repro.perfmodel` computes
steady-state throughput analytically, the DES engine *executes* the PE
tuple by tuple — threads contend for cores, scheduler queues exert
backpressure, locks serialize, work-finding scans cost time — and
measures throughput at the sinks.  Tests use it to confirm the
analytical model's qualitative claims (ordering of configurations,
contention effects) on small graphs.

Execution semantics (mirroring §2.1):

- each **source** operator is driven by a dedicated operator thread that
  repeatedly executes the source's manual region, one source tuple per
  iteration;
- each **scheduler thread** loops: acquire a core, scan the queue list
  (cost grows with queue count), pop from the first non-empty queue
  (round-robin start), execute that queued region, release the core;
- executing a region advances time by the member operators' costs,
  acquires operator-internal locks where declared, and pushes tuples
  into downstream scheduler queues (copy + synchronization cost,
  blocking when the queue is full);
- cores are a token pool: at most ``machine.logical_cores`` threads make
  progress at once.

Fractional selectivities are handled in expectation: per entry tuple a
region charges ``rate/entry_rate`` executions of each member operator,
and accumulates fractional push credits, emitting whole tuples as the
credit crosses one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..graph.model import StreamGraph
from ..obs.hub import Obs, ensure_hub
from ..perfmodel.machine import MachineProfile
from ..runtime.queues import QueuePlacement
from ..runtime.regions import Region, decompose
from ..runtime.threads import SnapshotProfiler, ThreadRegistry
from .kernel import (
    Acquire,
    Get,
    Put,
    Release,
    Request,
    SimLock,
    SimQueue,
    Simulator,
    Timeout,
)

_TOKEN = object()
_IDLE_BACKOFF_S = 2.0e-6


@dataclass(frozen=True)
class DesResult:
    """Throughput measurement from one DES run."""

    sink_tuples_per_s: float
    source_tuples_per_s: float
    measured_window_s: float
    sink_tuples: float
    queue_occupancy: Tuple[Tuple[int, int], ...]
    thread_busy_fraction: Tuple[Tuple[str, float], ...] = ()

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction over all threads (0 when unknown)."""
        if not self.thread_busy_fraction:
            return 0.0
        return sum(f for _n, f in self.thread_busy_fraction) / len(
            self.thread_busy_fraction
        )


class DesEngine:
    """One configured PE, executable under the DES kernel."""

    def __init__(
        self,
        graph: StreamGraph,
        machine: MachineProfile,
        placement: QueuePlacement,
        scheduler_threads: int,
        queue_capacity: int = 16,
        obs: Optional[Obs] = None,
    ) -> None:
        if scheduler_threads < 0:
            raise ValueError(
                f"scheduler_threads must be >= 0, got {scheduler_threads}"
            )
        self.graph = graph
        self.machine = machine
        self.placement = placement
        self.scheduler_threads = scheduler_threads
        self.queue_capacity = queue_capacity
        self.decomposition = decompose(graph, placement)

        self.sim = Simulator()
        self._queues: Dict[int, SimQueue] = {
            idx: SimQueue(capacity=queue_capacity, name=f"q{idx}")
            for idx in placement
        }
        self._queue_order: List[int] = sorted(self._queues)
        self._op_locks: Dict[int, SimLock] = {
            op.index: SimLock(name=f"lock:{op.name}")
            for op in graph
            if op.uses_lock
        }
        # Port protection: at most one thread executes a queued region
        # at a time (§2.1's scheduler queues serialize access to the
        # operator's input port), matching the analytical model's
        # serial-region assumption.
        self._region_locks: Dict[int, SimLock] = {
            idx: SimLock(name=f"port:{idx}") for idx in placement
        }
        self._core_pool = SimQueue(
            capacity=max(1, machine.logical_cores), name="cores"
        )
        self._push_credit: Dict[Tuple[int, int], float] = {}
        self._sink_count = 0.0
        self._source_count = 0.0
        self._busy_s: Dict[str, float] = {}
        self._region_by_entry: Dict[int, Region] = {
            r.entry: r for r in self.decomposition.regions
        }
        # The paper's per-thread state variable: threads publish the
        # operator they are executing; a profiler process may snapshot.
        self.registry = ThreadRegistry()
        self.profiler: Optional[SnapshotProfiler] = None
        self._started = False
        # Tuple-path metrics, bound once here; with no hub attached
        # these are the shared null singletons (one no-op call per
        # event), so detached runs measure identically.
        hub = ensure_hub(obs)
        self._m_runs = hub.registry.counter(
            "des.runs", "DES measurement runs completed"
        )
        self._m_source = hub.registry.counter(
            "des.source_tuples", "tuples emitted by source regions"
        )
        self._m_sink = hub.registry.counter(
            "des.sink_tuples", "tuples consumed at sinks (expected)"
        )
        self._m_pushes = hub.registry.counter(
            "des.queue_pushes", "tuples pushed into scheduler queues"
        )
        self._m_idle = hub.registry.counter(
            "des.idle_scans", "scheduler scans that found no work"
        )
        self._m_helps = hub.registry.counter(
            "des.backpressure_helps",
            "consumer regions executed inline by a blocked producer",
        )

    # ------------------------------------------------------------------
    # process bodies
    # ------------------------------------------------------------------
    def _region_work(
        self,
        region: Region,
        count_source: bool,
        thread_name: str = "?",
    ) -> Generator[Request, object, None]:
        """Execute one entry tuple's worth of a region."""
        machine = self.machine
        graph = self.graph

        def busy(dt: float) -> float:
            self._busy_s[thread_name] = (
                self._busy_s.get(thread_name, 0.0) + dt
            )
            return dt
        scale = 1.0 / region.entry_rate if region.entry_rate > 0 else 0.0
        for op_idx, rate in region.op_rates:
            n = rate * scale
            if n <= 0.0:
                continue
            self.registry.set_current(thread_name, op_idx)
            op = graph.operator(op_idx)
            dt = n * (
                machine.flop_time(op.cost_flops)
                + machine.call_overhead_s
                + machine.submit_overhead_s * op.selectivity
            )
            lock = self._op_locks.get(op_idx)
            if lock is not None:
                yield Acquire(lock)
                yield Timeout(busy(dt + machine.lock_uncontended_s))
                yield Release(lock)
            else:
                yield Timeout(busy(dt))
            if op.is_sink:
                self._sink_count += n
                self._m_sink.inc(n)
        if count_source:
            self._source_count += 1.0
            self._m_source.inc()
        self.registry.set_current(thread_name, None)
        for queue_op, push_rate in region.push_rates:
            credit_key = (region.entry, queue_op)
            credit = self._push_credit.get(credit_key, 0.0) + push_rate * scale
            queue = self._queues[queue_op]
            while credit >= 1.0:
                yield Timeout(
                    busy(
                        machine.copy_time(graph.tuple_spec.payload_bytes)
                        + machine.lock_uncontended_s
                    )
                )
                yield from self._push_with_help(
                    queue_op, queue, thread_name
                )
                credit -= 1.0
            self._push_credit[credit_key] = credit

    def _push_with_help(
        self, queue_op: int, queue: SimQueue, thread_name: str = "?"
    ) -> Generator[Request, object, None]:
        """Push one tuple, executing the consumer inline on backpressure.

        If every producer simply blocked on a full queue while holding a
        core, a PE could deadlock (e.g. all scheduler threads blocked
        pushing into a full sink queue that only scheduler threads can
        drain).  Real streaming runtimes resolve backpressure by letting
        the pushing thread execute downstream work; we do the same:
        while the target queue is full, pop one tuple and run the
        consumer region ourselves, then enqueue our own tuple.

        The emptiness/fullness checks are authoritative because the
        kernel handles a yielded request synchronously: no other process
        can run between our check and the corresponding Put.
        """
        consumer = self._region_by_entry[queue_op]
        while queue.is_full:
            port = self._region_locks[queue_op]
            yield Acquire(port)
            if queue.is_empty:
                # Another thread drained it while we waited.
                yield Release(port)
                break
            self.sim.pop_nowait(queue)
            self._m_helps.inc()
            yield Timeout(self.machine.lock_uncontended_s)
            yield from self._region_work(
                consumer, count_source=False, thread_name=thread_name
            )
            yield Release(port)
        self._m_pushes.inc()
        yield Put(queue, _TOKEN)

    def _source_thread(self, region: Region) -> Generator[Request, object, None]:
        source_op = self.graph.operator(region.entry)
        min_interval = (
            1.0 / source_op.max_rate
            if source_op.max_rate is not None
            else 0.0
        )
        next_emit = self.sim.now
        while True:
            if min_interval:
                # External arrival pacing (e.g. NIC line rate): wait
                # until the next tuple is due before competing for a
                # core.
                wait = next_emit - self.sim.now
                if wait > 0:
                    yield Timeout(wait)
                next_emit = max(next_emit + min_interval,
                                self.sim.now)
            yield Get(self._core_pool)
            yield from self._region_work(
                region,
                count_source=True,
                thread_name=f"src:{region.entry}",
            )
            yield Put(self._core_pool, _TOKEN)

    def _scheduler_thread(
        self, thread_id: int
    ) -> Generator[Request, object, None]:
        cursor = thread_id  # stagger round-robin start positions
        name = f"sched:{thread_id}"
        n = len(self._queue_order)
        while True:
            yield Get(self._core_pool)
            # The scan costs simulated time either way, but only a scan
            # that finds work counts toward the thread's *busy* time --
            # a starving thread polling empty queues is idle for
            # utilization purposes (real runtimes park such threads).
            scan = self.machine.scan_time(n)
            yield Timeout(scan)
            found: Optional[int] = None
            for i in range(n):
                candidate = self._queue_order[(cursor + i) % n]
                if (
                    not self._queues[candidate].is_empty
                    and self._region_locks[candidate].held_by is None
                ):
                    # Non-empty and nobody executing its region: claim.
                    found = candidate
                    cursor = (cursor + i + 1) % n
                    break
            if found is None:
                self._m_idle.inc()
                yield Put(self._core_pool, _TOKEN)
                yield Timeout(_IDLE_BACKOFF_S)
                continue
            port = self._region_locks[found]
            yield Acquire(port)
            if self._queues[found].is_empty:
                yield Release(port)
                yield Put(self._core_pool, _TOKEN)
                continue
            self.sim.pop_nowait(self._queues[found])
            self._busy_s[name] = (
                self._busy_s.get(name, 0.0)
                + scan
                + self.machine.lock_uncontended_s
            )
            yield Timeout(self.machine.lock_uncontended_s)
            region = self._region_by_entry[found]
            yield from self._region_work(
                region, count_source=False, thread_name=name
            )
            yield Release(port)
            yield Put(self._core_pool, _TOKEN)

    # ------------------------------------------------------------------
    def attach_profiler(
        self, period_s: float = 1.0e-4
    ) -> SnapshotProfiler:
        """Attach the paper's profiler thread: a process that snapshots
        every registered thread's current operator each ``period_s``.

        Must be called before :meth:`start`.  Returns the profiler whose
        counters accumulate for the run's lifetime.
        """
        if self._started:
            raise RuntimeError("attach_profiler must precede start()")
        if self.profiler is not None:
            return self.profiler
        self.profiler = SnapshotProfiler(self.registry)

        def profiler_proc():
            while True:
                yield Timeout(period_s)
                self.profiler.sample()

        self._profiler_period = period_s
        self._profiler_proc = profiler_proc
        return self.profiler

    def start(self) -> None:
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        for _ in range(self._core_pool.capacity):
            self._core_pool.items.append(_TOKEN)
        self.registry.register("?")
        for region in self.decomposition.source_regions:
            self.registry.register(f"src:{region.entry}")
            name = f"src-thread:{region.entry}"
            self.sim.spawn(self._source_thread(region), name=name)
        if self._queues:
            for tid in range(self.scheduler_threads):
                self.registry.register(f"sched:{tid}")
                self.sim.spawn(
                    self._scheduler_thread(tid), name=f"sched:{tid}"
                )
        if self.profiler is not None:
            self.sim.spawn(self._profiler_proc(), name="profiler")

    # ------------------------------------------------------------------
    def run(
        self, warmup_s: float = 0.002, measure_s: float = 0.01
    ) -> DesResult:
        """Warm up, then measure throughput over ``measure_s``."""
        if not self._started:
            self.start()
        self.sim.run_until(self.sim.now + warmup_s)
        self._sink_count = 0.0
        self._source_count = 0.0
        self._busy_s.clear()
        start = self.sim.now
        self.sim.run_until(start + measure_s)
        window = self.sim.now - start
        occupancy = tuple(
            (idx, len(q)) for idx, q in sorted(self._queues.items())
        )
        busy = tuple(
            (name, min(1.0, t / window) if window else 0.0)
            for name, t in sorted(self._busy_s.items())
        )
        self._m_runs.inc()
        return DesResult(
            sink_tuples_per_s=self._sink_count / window if window else 0.0,
            source_tuples_per_s=(
                self._source_count / window if window else 0.0
            ),
            measured_window_s=window,
            sink_tuples=self._sink_count,
            queue_occupancy=occupancy,
            thread_busy_fraction=busy,
        )


def measure_throughput(
    graph: StreamGraph,
    machine: MachineProfile,
    placement: QueuePlacement,
    scheduler_threads: int,
    warmup_s: float = 0.002,
    measure_s: float = 0.01,
    queue_capacity: int = 16,
    obs: Optional[Obs] = None,
) -> DesResult:
    """Convenience wrapper: build, run and measure one configuration."""
    engine = DesEngine(
        graph,
        machine,
        placement,
        scheduler_threads,
        queue_capacity=queue_capacity,
        obs=obs,
    )
    return engine.run(warmup_s=warmup_s, measure_s=measure_s)
