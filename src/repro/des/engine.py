"""Tuple-level discrete-event simulation of a processing element.

This is the validation substrate: where :mod:`repro.perfmodel` computes
steady-state throughput analytically, the DES engine *executes* the PE
tuple by tuple — threads contend for cores, scheduler queues exert
backpressure, locks serialize, work-finding scans cost time — and
measures throughput at the sinks.  Tests use it to confirm the
analytical model's qualitative claims (ordering of configurations,
contention effects) on small graphs.

Execution semantics (mirroring §2.1):

- each **source** operator is driven by a dedicated operator thread that
  repeatedly executes the source's manual region, one source tuple per
  iteration;
- each **scheduler thread** loops: acquire a core, scan the queue list
  (cost grows with queue count), pop from the first non-empty queue
  (round-robin start), execute that queued region, release the core;
- executing a region advances time by the member operators' costs,
  acquires operator-internal locks where declared, and pushes tuples
  into downstream scheduler queues (copy + synchronization cost,
  blocking when the queue is full);
- cores are a token pool: at most ``machine.logical_cores`` threads make
  progress at once.

A scheduler thread whose scan finds every queue empty **parks** on the
queue set (§2.1: "real runtimes park such threads") and is woken by the
next push — one thread per pushed tuple, FIFO in park order — so an
idle thread costs O(1) simulator events per idle episode rather than a
polling event every backoff interval.  Only the transient case "work
exists but another thread holds that region's port" still backs off on
a short timeout.

Fractional selectivities are handled in expectation: per entry tuple a
region charges ``rate/entry_rate`` executions of each member operator,
and accumulates fractional push credits, emitting whole tuples as the
credit crosses one.

Performance notes (see ``docs/PERFORMANCE.md``): hot process bodies
yield bare floats instead of ``Timeout`` dataclasses, and consecutive
operator timeouts between lock/queue boundaries coalesce into a single
event.  Profiled runs stay on the coalesced fast path by default:
merged advances publish their analytic per-operator composition as a
*sampled-accounting interval* (:meth:`ThreadRegistry.set_interval`),
which the snapshot profiler resolves positionally — statistically
equivalent to fine-grained per-operator events at a fraction of the
cost.  ``attach_profiler(sampled=False)`` restores the fine-grained
per-operator event granularity for cross-validation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Generator, Iterator, List, Optional, Tuple

import numpy as np

from ..graph.model import StreamGraph
from ..obs.hub import Obs, ensure_hub
from ..perfmodel.machine import MachineProfile
from ..runtime.queues import QueuePlacement
from ..runtime.regions import Region, decompose
from ..runtime.threads import SnapshotProfiler, ThreadRegistry
from .channels import DEFAULT_CHANNEL, ChannelConfig
from .fastforward import FastForwarder
from .kernel import (
    Acquire,
    Get,
    ParkUntilNonEmpty,
    Put,
    SimLock,
    SimQueue,
    Simulator,
)

_TOKEN = object()
# Backoff used only while a non-empty queue's region is being executed
# by another thread (transient); empty-queue idling parks instead.
_IDLE_BACKOFF_S = 2.0e-6
# Claims a thread may execute per core acquisition before offering the
# core back to waiters.  An OS timeslices contending threads at a much
# coarser granularity than one scheduler claim (~1 µs of simulated
# work), so rotating the core once per claim would both distort the
# model toward implausibly fine sharing and cost a simulator handoff
# event per claim.  Fairness over a measurement window is preserved:
# a slice is ~tens of simulated µs, far below the millisecond windows.
_CORE_SLICE = 32
# Burst sizes (tuples a source emits / a scheduler thread drains per
# coalesced event) are governed by the engine's ChannelConfig — see
# repro.des.channels.  Each tuple in a burst still pays the full
# per-tuple cost (scan + pop sync + work + push), so simulated time is
# identical to moving one tuple at a time; batching only coalesces the
# simulator events.  DEFAULT_CHANNEL.batch_size (8) reproduces the
# historical _CLAIM_BATCH behaviour exactly.

# Vectorized locked-region path: a region whose locks can never be
# contended (every lock-using member operator is reachable from this
# region alone, so the port/source-thread serialization already makes
# the lock private) joins the burst fast path — the uncontended
# acquire/release pair reduces to ``lock_s`` of simulated time per
# acquisition plus an ``acquisitions`` tally, both of which batch.
# Flip this off to restore the per-tuple slow path (equivalence tests
# compare the two).
LOCKED_FAST = True

# Processes may yield kernel Request objects or bare float delays.
_Req = Generator[object, object, None]


@dataclass(frozen=True)
class _RegionPlan:
    """Precomputed per-region execution constants.

    Everything about executing one entry tuple of a region that does
    not depend on simulation state — per-operator time deltas, lock
    objects, sink credit, push costs — is computed once at engine
    construction so the per-tuple generator only walks plain tuples.

    ``ops`` rows are ``(op_idx, dt, lock, sink_n)``; ``pushes`` rows
    are ``(queue, credit_key, credit_incr, cost_per_push)``.

    A region is ``fast`` when executing one entry tuple needs no
    per-operator bookkeeping at all: it emits at most one downstream
    tuple per entry tuple (unit selectivity, single push target) and
    either no member operator takes a lock, or every lock taken is
    *uncontendable* (``threads_reaching == 1``: the region's own
    serialization makes the lock private, so acquire/release is pure
    bookkeeping — ``lock_acq`` lists those locks and the burst path
    batches their ``acquisitions`` tally).  Such a region collapses to
    a single precomputed time delta (``flat_dt`` plus ``lock_s`` per
    private lock), an optional synchronous push (``push`` is
    ``(queue, queue_op, cost)``) and a sink-credit constant — one
    simulator event per executed burst.

    ``prof_ops``/``prof_bounds_src``/``prof_bounds_sched`` describe one
    executed tuple of a fast region as a cycle of attribution segments
    for sampled-accounting profiling: ``prof_ops[i]`` is the operator
    (or ``None`` for push-copy time) occupying the cycle up to
    cumulative offset ``prof_bounds_*[i]``.  The scheduler variant folds
    the scan + pop-synchronization cost into the first operator's
    segment, exactly as the fine-grained path merges the seeded
    ``pending`` delay into the first operator's timeout.

    ``burst_src``/``burst_sched`` are the batched channels' cost
    tables: ``burst_*[b]`` is the simulated span of one coalesced event
    carrying ``b`` tuples end-to-end (operator work + push copy, plus
    scan + pop synchronization on the scheduler variant), accumulated
    from the per-tuple cost so every tuple in a burst pays its full
    price.  ``max_burst_src``/``max_burst_sched`` are the channel's
    burst caps for this region — batch size further bounded by the
    flush timeout at this region's per-tuple cost (the tables stop
    there, so an out-of-range lookup is a bug, not a silent error).
    """

    ops: Tuple[Tuple[int, float, Optional[SimLock], float], ...]
    pushes: Tuple[Tuple[SimQueue, Tuple[int, int], float, float], ...]
    fast: bool
    flat_dt: float
    sink_total: float
    push: Optional[Tuple[SimQueue, int, float]]
    prof_ops: Optional[Tuple[Optional[int], ...]] = None
    prof_bounds_src: Optional[Tuple[float, ...]] = None
    prof_bounds_sched: Optional[Tuple[float, ...]] = None
    burst_src: Tuple[float, ...] = (0.0,)
    burst_sched: Tuple[float, ...] = (0.0,)
    max_burst_src: int = 1
    max_burst_sched: int = 1
    lock_acq: Tuple[SimLock, ...] = ()


@dataclass(frozen=True)
class DesResult:
    """Throughput measurement from one DES run.

    ``offered_tuples_per_s``/``dropped_tuples``/``open_loop`` are only
    meaningful for open-loop runs (sources driven by an arrival
    schedule): *offered* counts arrivals presented to the sources
    during the window, *dropped* counts arrivals shed at a full ingress
    queue under the ``drop`` overflow policy.  For classic saturated
    runs they stay at their zero defaults.
    """

    sink_tuples_per_s: float
    source_tuples_per_s: float
    measured_window_s: float
    sink_tuples: float
    queue_occupancy: Tuple[Tuple[int, int], ...]
    thread_busy_fraction: Tuple[Tuple[str, float], ...] = ()
    deadlocked: bool = False
    offered_tuples_per_s: float = 0.0
    dropped_tuples: float = 0.0
    open_loop: bool = False

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction over all threads (0 when unknown)."""
        if not self.thread_busy_fraction:
            return 0.0
        return sum(f for _n, f in self.thread_busy_fraction) / len(
            self.thread_busy_fraction
        )

    @property
    def offered_utilization(self) -> float:
        """Fraction of the offered load the PE actually admitted.

        1.0 means the PE kept up with the arrival schedule — low
        throughput then reflects low *offered load*, not contention.
        Values below 1.0 mean arrivals outpaced the PE (queues filled,
        tuples dropped or the source stalled behind backpressure).
        Returns 1.0 for closed-loop runs, where the notion is vacuous.
        """
        if not self.open_loop or self.offered_tuples_per_s <= 0.0:
            return 1.0
        return min(
            1.0, self.source_tuples_per_s / self.offered_tuples_per_s
        )

    @property
    def underloaded(self) -> bool:
        """True when an open-loop PE kept up with a light arrival
        schedule: throughput is offered-load-bound, so contention
        inferences from low numbers would be wrong."""
        return (
            self.open_loop
            and self.offered_utilization >= 0.95
            and self.mean_utilization < 0.5
        )


class DesEngine:
    """One configured PE, executable under the DES kernel."""

    def __init__(
        self,
        graph: StreamGraph,
        machine: MachineProfile,
        placement: QueuePlacement,
        scheduler_threads: int,
        queue_capacity: int = 16,
        obs: Optional[Obs] = None,
        arrivals: Optional[Dict[int, Iterator[float]]] = None,
        overflow: str = "block",
        channel: Optional[ChannelConfig] = None,
        locked_fast: Optional[bool] = None,
    ) -> None:
        """``arrivals`` maps source operator index -> an **infinite**
        iterator of absolute arrival times (simulation seconds), making
        those sources *open-loop*: they admit one tuple per scheduled
        arrival instead of spinning saturated.  The iterator must be
        unbounded — the kernel's deadlock detector cannot distinguish an
        exhausted schedule from a wedged PE.  ``overflow`` selects what
        an open-loop source does when its ingress queue is full:
        ``"block"`` (stall behind backpressure, the closed-loop
        behaviour) or ``"drop"`` (shed the arrival and count it in
        ``des.dropped_tuples``).  ``channel`` configures the batched
        channels (burst size, flush timeout, prefetch, analytic
        fast-forward — see :class:`~repro.des.channels.ChannelConfig`);
        ``None`` means :data:`~repro.des.channels.DEFAULT_CHANNEL`,
        byte-compatible with historical runs.  ``locked_fast`` opts a
        region with only uncontendable locks into the burst fast path
        (default: the module-level :data:`LOCKED_FAST` flag).
        """
        if scheduler_threads < 0:
            raise ValueError(
                f"scheduler_threads must be >= 0, got {scheduler_threads}"
            )
        if overflow not in ("block", "drop"):
            raise ValueError(
                f"overflow must be 'block' or 'drop', got {overflow!r}"
            )
        self.graph = graph
        self.machine = machine
        self.placement = placement
        self.scheduler_threads = scheduler_threads
        self.queue_capacity = queue_capacity
        self.channel = channel if channel is not None else DEFAULT_CHANNEL
        self.locked_fast = (
            LOCKED_FAST if locked_fast is None else locked_fast
        )
        self.decomposition = decompose(graph, placement)

        self.sim = Simulator()
        self._queues: Dict[int, SimQueue] = {
            idx: SimQueue(capacity=queue_capacity, name=f"q{idx}")
            for idx in placement
        }
        self._queue_order: List[int] = sorted(self._queues)
        self._op_locks: Dict[int, SimLock] = {
            op.index: SimLock(name=f"lock:{op.name}")
            for op in graph
            if op.uses_lock
        }
        # Port protection: at most one thread executes a queued region
        # at a time (§2.1's scheduler queues serialize access to the
        # operator's input port), matching the analytical model's
        # serial-region assumption.
        self._region_locks: Dict[int, SimLock] = {
            idx: SimLock(name=f"port:{idx}") for idx in placement
        }
        self._core_pool = SimQueue(
            capacity=max(1, machine.logical_cores), name="cores"
        )
        self._push_credit: Dict[Tuple[int, int], float] = {}
        self._sink_count = 0.0
        self._source_count = 0.0
        self._offered_count = 0.0
        self._dropped_count = 0.0
        self._arrivals = dict(arrivals) if arrivals else {}
        self._overflow_drop = overflow == "drop"
        for idx in self._arrivals:
            if idx >= len(graph) or not graph.operator(idx).is_source:
                raise ValueError(
                    f"arrivals key {idx} is not a source operator"
                )
        self._busy_s: Dict[str, float] = {}
        self._region_by_entry: Dict[int, Region] = {
            r.entry: r for r in self.decomposition.regions
        }
        self._plans: Dict[int, _RegionPlan] = {
            r.entry: self._build_plan(r)
            for r in self.decomposition.regions
        }
        # The paper's per-thread state variable: threads publish the
        # operator they are executing; a profiler process may snapshot.
        self.registry = ThreadRegistry()
        self.profiler: Optional[SnapshotProfiler] = None
        self._profiler_period: Optional[float] = None
        self._profiler_sampled = True
        self._started = False
        # Analytic fast-forward (built in start() when eligible) and
        # the fixed object orders its state/counter snapshots walk.
        self._ff: Optional[FastForwarder] = None
        self._ff_queues: Tuple[SimQueue, ...] = ()
        self._ff_locks: Tuple[SimLock, ...] = ()
        # Tuple-path metrics, bound once here; with no hub attached
        # these are the shared null singletons (one no-op call per
        # event), so detached runs measure identically.
        hub = ensure_hub(obs)
        self._hub = hub
        self._m_runs = hub.registry.counter(
            "des.runs", "DES measurement runs completed"
        )
        self._m_source = hub.registry.counter(
            "des.source_tuples", "tuples emitted by source regions"
        )
        self._m_sink = hub.registry.counter(
            "des.sink_tuples", "tuples consumed at sinks (expected)"
        )
        self._m_pushes = hub.registry.counter(
            "des.queue_pushes", "tuples pushed into scheduler queues"
        )
        self._m_idle = hub.registry.counter(
            "des.idle_scans", "scheduler scans that found no work"
        )
        self._m_helps = hub.registry.counter(
            "des.backpressure_helps",
            "consumer regions executed inline by a blocked producer",
        )
        self._m_parked = hub.registry.gauge(
            "des.parked_threads",
            "scheduler threads currently parked on empty queues",
        )
        self._m_wakeups = hub.registry.counter(
            "des.wakeups",
            "parked scheduler threads woken by queue activity",
        )
        self._m_offered = hub.registry.counter(
            "des.offered_tuples",
            "open-loop arrivals presented to source operators",
        )
        self._m_dropped = hub.registry.counter(
            "des.dropped_tuples",
            "open-loop arrivals shed at a full ingress queue",
        )
        self._m_batch_size = hub.registry.gauge(
            "des.batch_size",
            "configured channel batch size (tuples per coalesced event)",
        )
        self._m_batch_size.set(float(self.channel.batch_size))
        self._m_batch_flushes = hub.registry.counter(
            "des.batch_flushes",
            "coalesced burst events flushed through batched channels",
        )
        self._m_ff_saved = hub.registry.counter(
            "des.analytic_fastforward_events_saved",
            "simulator events elided by analytic fast-forwarding",
        )

    # ------------------------------------------------------------------
    # process bodies
    # ------------------------------------------------------------------
    def _build_plan(self, region: Region) -> _RegionPlan:
        """Precompute the per-tuple execution constants of a region."""
        machine = self.machine
        graph = self.graph
        scale = 1.0 / region.entry_rate if region.entry_rate > 0 else 0.0
        ops = []
        for op_idx, rate in region.op_rates:
            n = rate * scale
            if n <= 0.0:
                continue
            op = graph.operator(op_idx)
            dt = n * (
                machine.flop_time(op.cost_flops)
                + machine.call_overhead_s
                + machine.submit_overhead_s * op.selectivity
            )
            ops.append(
                (
                    op_idx,
                    dt,
                    self._op_locks.get(op_idx),
                    n if op.is_sink else 0.0,
                )
            )
        push_cost = (
            machine.copy_time(graph.tuple_spec.payload_bytes)
            + machine.lock_uncontended_s
        )
        pushes = tuple(
            (
                self._queues[queue_op],
                (region.entry, queue_op),
                push_rate * scale,
                push_cost,
            )
            for queue_op, push_rate in region.push_rates
        )
        ops_t = tuple(ops)
        lock_s = machine.lock_uncontended_s
        locks = tuple(
            lock for _i, _dt, lock, _s in ops_t if lock is not None
        )
        push_ok = not pushes or (
            len(pushes) == 1 and pushes[0][2] == 1.0
        )
        # A lock is uncontendable when this region is the only one
        # whose execution reaches the operator: region serialization
        # (the source thread / the queue port) already makes it
        # private, so acquire/release never blocks and reduces to
        # ``lock_s`` of time plus an ``acquisitions`` tally — both of
        # which the burst tables batch (the vectorized locked path).
        uncontended = all(
            self.decomposition.threads_reaching(op_idx) <= 1
            for op_idx, _dt, lock, _s in ops_t
            if lock is not None
        )
        fast = push_ok and (
            not locks or (self.locked_fast and uncontended)
        )
        lock_acq = locks if fast else ()
        # Sampled-accounting cycles: one executed tuple laid out as
        # consecutive attribution segments, mirroring where the
        # fine-grained path would be caught at each instant.  Locked
        # operators carry their uncontended acquire cost, exactly as
        # the per-tuple path folds ``lock_s`` into the locked
        # operator's own timeout.
        prof_ops: Optional[Tuple[Optional[int], ...]] = None
        prof_bounds_src: Optional[Tuple[float, ...]] = None
        prof_bounds_sched: Optional[Tuple[float, ...]] = None
        if fast:
            seg_ops: List[Optional[int]] = [i for i, _dt, _l, _s in ops_t]
            seg_durs: List[float] = [
                dt if lk is None else dt + lock_s
                for _i, dt, lk, _s in ops_t
            ]
            if pushes:
                # Push-copy time is attributed to no operator, as the
                # fine-grained path publishes idle before pushing.
                seg_ops.append(None)
                seg_durs.append(pushes[0][3])
            if seg_durs and sum(seg_durs) > 0.0:
                # The scheduler path merges scan + pop-sync cost into
                # the first segment (the fine-grained path seeds it
                # into the first operator's pending timeout).
                head_extra = machine.scan_time(
                    len(self._queue_order)
                ) + machine.lock_uncontended_s
                bounds_src: List[float] = []
                bounds_sched: List[float] = []
                acc = 0.0
                for d in seg_durs:
                    acc += d
                    bounds_src.append(acc)
                    bounds_sched.append(acc + head_extra)
                prof_ops = tuple(seg_ops)
                prof_bounds_src = tuple(bounds_src)
                prof_bounds_sched = tuple(bounds_sched)
        flat_dt = sum(dt for _i, dt, _l, _s in ops_t)
        # Batched-channel cost tables: burst_*[b] = simulated span of
        # one coalesced event carrying b tuples, accumulated from the
        # per-tuple cost (numpy running sum — identical arithmetic to
        # summing tuple by tuple, so a burst of b costs exactly what b
        # single-tuple events would).  The channel's flush timeout caps
        # the burst wherever carrying one more tuple would stretch the
        # event past the flush horizon.
        channel = self.channel
        max_src = 1
        max_sched = 1
        burst_src: Tuple[float, ...] = (0.0, flat_dt)
        burst_sched: Tuple[float, ...] = (0.0, flat_dt)
        if fast:
            push_cost_fast = pushes[0][3] if pushes else 0.0
            fast_dt = flat_dt
            if lock_acq:
                fast_dt = flat_dt + lock_s * len(lock_acq)
            tup_src = fast_dt + push_cost_fast
            tup_sched = (
                machine.scan_time(len(self._queue_order))
                + machine.lock_uncontended_s
                + fast_dt
                + push_cost_fast
            )
            max_src = channel.max_burst(tup_src)
            max_sched = channel.max_burst(tup_sched)
            burst_src = (
                0.0,
                *np.add.accumulate(
                    np.full(max_src, tup_src, dtype=np.float64)
                ).tolist(),
            )
            burst_sched = (
                0.0,
                *np.add.accumulate(
                    np.full(max_sched, tup_sched, dtype=np.float64)
                ).tolist(),
            )
        return _RegionPlan(
            ops=ops_t,
            pushes=pushes,
            fast=fast,
            flat_dt=flat_dt,
            sink_total=sum(s for _i, _dt, _l, s in ops_t),
            push=(
                (pushes[0][0], pushes[0][1][1], pushes[0][3])
                if fast and pushes
                else None
            ),
            prof_ops=prof_ops,
            prof_bounds_src=prof_bounds_src,
            prof_bounds_sched=prof_bounds_sched,
            burst_src=burst_src,
            burst_sched=burst_sched,
            max_burst_src=max_src,
            max_burst_sched=max_sched,
            lock_acq=lock_acq,
        )

    def _region_work(
        self,
        region: Region,
        count_source: bool,
        thread_name: str = "?",
        pending: float = 0.0,
    ) -> _Req:
        """Execute one entry tuple's worth of a region.

        Consecutive operator timeouts accumulate into ``pending`` and
        flush as one event at lock/queue boundaries (or at the end),
        unless a profiler is attached — snapshot profiling needs time
        to advance per operator so samples attribute correctly.
        Callers may seed ``pending`` with a delay of their own (e.g.
        the scheduler's pop synchronization cost) to merge it into the
        region's first timeout.
        """
        plan = self._plans[region.entry]
        sim = self.sim
        busy_s = self._busy_s
        fine_grained = self.profiler is not None
        registry = self.registry if fine_grained else None
        lock_s = self.machine.lock_uncontended_s
        for op_idx, dt, lock, sink_n in plan.ops:
            if registry is not None:
                registry.set_current(thread_name, op_idx)
            if lock is not None:
                if pending:
                    busy_s[thread_name] = (
                        busy_s.get(thread_name, 0.0) + pending
                    )
                    yield pending
                    pending = 0.0
                if not sim.acquire_nowait(lock):
                    yield Acquire(lock)
                dt += lock_s
                busy_s[thread_name] = busy_s.get(thread_name, 0.0) + dt
                yield dt
                sim.release_nowait(lock)
            else:
                pending += dt
                if fine_grained:
                    busy_s[thread_name] = (
                        busy_s.get(thread_name, 0.0) + pending
                    )
                    yield pending
                    pending = 0.0
            if sink_n:
                self._sink_count += sink_n
                self._m_sink.inc(sink_n)
        if count_source:
            self._source_count += 1.0
            self._m_source.inc()
        if registry is not None:
            registry.set_current(thread_name, None)
        push_credit = self._push_credit
        for queue, credit_key, credit_incr, push_cost in plan.pushes:
            credit = push_credit.get(credit_key, 0.0) + credit_incr
            while credit >= 1.0:
                pending += push_cost
                busy_s[thread_name] = (
                    busy_s.get(thread_name, 0.0) + pending
                )
                yield pending
                pending = 0.0
                if self.sim.put_nowait(queue, _TOKEN):
                    self._m_pushes.inc()
                else:
                    yield from self._push_with_help(
                        credit_key[1], queue, thread_name
                    )
                credit -= 1.0
            push_credit[credit_key] = credit
        if pending:
            busy_s[thread_name] = busy_s.get(thread_name, 0.0) + pending
            yield pending

    def _push_with_help(
        self, queue_op: int, queue: SimQueue, thread_name: str = "?"
    ) -> _Req:
        """Push one tuple, executing the consumer inline on backpressure.

        If every producer simply blocked on a full queue while holding a
        core, a PE could deadlock (e.g. all scheduler threads blocked
        pushing into a full sink queue that only scheduler threads can
        drain).  Real streaming runtimes resolve backpressure by letting
        the pushing thread execute downstream work; we do the same:
        while the target queue is full, pop one tuple and run the
        consumer region ourselves, then enqueue our own tuple.

        The emptiness/fullness checks are authoritative because the
        kernel handles a yielded request synchronously: no other process
        can run between our check and the corresponding Put.
        """
        consumer = self._region_by_entry[queue_op]
        sim = self.sim
        while queue.is_full:
            port = self._region_locks[queue_op]
            if not sim.acquire_nowait(port):
                yield Acquire(port)
            if queue.is_empty:
                # Another thread drained it while we waited.
                sim.release_nowait(port)
                break
            sim.pop_nowait(queue)
            self._m_helps.inc()
            yield from self._region_work(
                consumer,
                count_source=False,
                thread_name=thread_name,
                pending=self.machine.lock_uncontended_s,
            )
            sim.release_nowait(port)
        self._m_pushes.inc()
        if not self.sim.put_nowait(queue, _TOKEN):
            yield Put(queue, _TOKEN)  # pragma: no cover - defensive

    def _source_thread(self, region: Region) -> _Req:
        source_op = self.graph.operator(region.entry)
        sim = self.sim
        name = f"src:{region.entry}"
        core_pool = self._core_pool
        busy_s = self._busy_s
        plan = self._plans[region.entry]
        fast_ok = self.profiler is None or self._profiler_sampled
        # With a sampling profiler attached, merged advances publish
        # their per-operator composition so snapshots still attribute.
        publish = (
            self.registry
            if self.profiler is not None and fast_ok and plan.fast
            else None
        )
        prof_bounds = plan.prof_bounds_src
        prof_ops = plan.prof_ops
        min_interval = (
            1.0 / source_op.max_rate
            if source_op.max_rate is not None
            else 0.0
        )
        next_emit = sim.now
        slice_left = 0
        while True:
            if min_interval:
                # External arrival pacing (e.g. NIC line rate): wait
                # until the next tuple is due before competing for a
                # core.
                wait = next_emit - sim.now
                if wait > 0:
                    if slice_left > 0:
                        # Never hold a core across an idle wait.
                        slice_left = 0
                        sim.put_nowait(core_pool, _TOKEN)
                    yield wait
                next_emit = max(next_emit + min_interval, sim.now)
            if slice_left <= 0:
                if core_pool.items:
                    # Inlined pop_nowait (no putters/parked on cores).
                    core_pool.items.popleft()
                    core_pool.total_got += 1
                else:
                    yield Get(core_pool)
                slice_left = _CORE_SLICE
            if plan.fast and fast_ok:
                # One event per emitted burst: operator work and push
                # copies advance together (burst_src cost table), then
                # the enqueues happen synchronously.  A paced source
                # emits one tuple per due time; an unpaced one emits a
                # channel-batch burst per event.
                b = (
                    1
                    if min_interval
                    else min(plan.max_burst_src, slice_left)
                )
                slice_left -= b
                dt = plan.burst_src[b]
                self._m_batch_flushes.inc()
                if publish is not None and prof_bounds is not None:
                    publish.set_interval(
                        name, sim.now, prof_bounds, prof_ops, b
                    )
                push = plan.push
                if push is not None:
                    queue, queue_op, _push_cost = push
                    busy_s[name] = busy_s.get(name, 0.0) + dt
                    yield dt
                    for _ in range(b):
                        if sim.put_nowait(queue, _TOKEN):
                            self._m_pushes.inc()
                        else:
                            yield from self._push_with_help(
                                queue_op, queue, name
                            )
                elif dt:
                    busy_s[name] = busy_s.get(name, 0.0) + dt
                    yield dt
                if plan.sink_total:
                    self._sink_count += plan.sink_total * b
                    self._m_sink.inc(plan.sink_total * b)
                for lk in plan.lock_acq:
                    lk.acquisitions += b
                self._source_count += b
                self._m_source.inc(b)
            else:
                slice_left -= 1
                yield from self._region_work(
                    region, count_source=True, thread_name=name
                )
            if slice_left <= 0:
                # As in _scheduler_thread: rotate the core only when
                # someone is waiting for it.
                if core_pool.getters:
                    sim.put_nowait(core_pool, _TOKEN)
                else:
                    slice_left = _CORE_SLICE

    def _open_loop_source_thread(
        self, region: Region, arrivals: Iterator[float]
    ) -> _Req:
        """Source driven by an external arrival schedule (open loop).

        One iteration per scheduled arrival: sleep until the arrival is
        due (never holding a core across the wait), then admit the
        tuple — acquire a core, execute the source's manual region and
        push downstream.  Under the ``drop`` overflow policy an arrival
        that finds its ingress queue full is shed immediately and
        counted, modelling ingress load shedding; under ``block`` the
        source stalls behind backpressure exactly like the saturated
        path (draining the consumer inline via ``_push_with_help`` so
        the PE cannot wedge).

        A slow schedule leaves the thread parked on a future timestamp
        rather than spinning, so underloaded PEs burn no simulated
        CPU — which is what makes offered-load utilization measurable.

        Under ``block`` the fast path coalesces the due backlog into
        one burst per event, capped exactly like the saturated path
        (``min(max_burst, slice_left)``); an arrival counts as due when
        it lands by its own processing slot within the burst, since a
        busy source keeps processing while later arrivals stream in.
        When the schedule outruns the PE this reproduces the saturated
        source's event structure — and therefore its timing — so a
        saturating open-loop schedule yields the same measurements (and
        the same adaptation decisions) as the classic closed-loop run.
        ``drop`` keeps strict per-arrival admission: each arrival's
        shed check must see the queue state at its own admission
        instant.
        """
        sim = self.sim
        name = f"src:{region.entry}"
        core_pool = self._core_pool
        busy_s = self._busy_s
        plan = self._plans[region.entry]
        fast_ok = self.profiler is None or self._profiler_sampled
        publish = (
            self.registry
            if self.profiler is not None and fast_ok and plan.fast
            else None
        )
        prof_bounds = plan.prof_bounds_src
        prof_ops = plan.prof_ops
        drop = self._overflow_drop
        ingress = tuple(q for q, _key, _incr, _cost in plan.pushes)
        slice_left = 0
        arrivals = iter(arrivals)
        pending: Optional[float] = None
        while True:
            if pending is not None:
                due, pending = pending, None
            else:
                try:
                    due = next(arrivals)
                except StopIteration:  # pragma: no cover - infinite contract
                    return
            wait = due - sim.now
            if wait > 0:
                if slice_left > 0:
                    # Never hold a core across an idle wait.
                    slice_left = 0
                    sim.put_nowait(core_pool, _TOKEN)
                yield wait
            self._offered_count += 1.0
            self._m_offered.inc()
            if drop and ingress and any(q.is_full for q in ingress):
                # Ingress shed: the arrival never enters the PE.
                self._dropped_count += 1.0
                self._m_dropped.inc()
                continue
            if slice_left <= 0:
                if core_pool.items:
                    core_pool.items.popleft()
                    core_pool.total_got += 1
                else:
                    yield Get(core_pool)
                slice_left = _CORE_SLICE
            if plan.fast and fast_ok:
                b = 1
                if not drop:
                    # Admit the backlog as one burst (see above).  A
                    # busy source keeps processing while later arrivals
                    # land, so an arrival joins the burst when it is due
                    # by its own processing slot — the instant the
                    # already-committed ``b`` tuples finish
                    # (``burst_src[b]`` from now) — not merely when it
                    # is due at the burst's start.  Without the
                    # lookahead a saturating schedule opens with
                    # undersized bursts (nothing is due yet at t=0) and
                    # the transient never matches the closed-loop event
                    # structure.
                    burst_src = plan.burst_src
                    b_max = min(plan.max_burst_src, slice_left)
                    while b < b_max:
                        try:
                            nxt = next(arrivals)
                        except StopIteration:  # pragma: no cover
                            break
                        if nxt > sim.now + burst_src[b]:
                            pending = nxt
                            break
                        b += 1
                        self._offered_count += 1.0
                        self._m_offered.inc()
                slice_left -= b
                dt = plan.burst_src[b]
                self._m_batch_flushes.inc()
                if publish is not None and prof_bounds is not None:
                    publish.set_interval(
                        name, sim.now, prof_bounds, prof_ops, b
                    )
                push = plan.push
                if push is not None:
                    queue, queue_op, _push_cost = push
                    busy_s[name] = busy_s.get(name, 0.0) + dt
                    yield dt
                    for _ in range(b):
                        if sim.put_nowait(queue, _TOKEN):
                            self._m_pushes.inc()
                        else:
                            yield from self._push_with_help(
                                queue_op, queue, name
                            )
                elif dt:
                    busy_s[name] = busy_s.get(name, 0.0) + dt
                    yield dt
                if plan.sink_total:
                    self._sink_count += plan.sink_total * b
                    self._m_sink.inc(plan.sink_total * b)
                for lk in plan.lock_acq:
                    lk.acquisitions += b
                self._source_count += b
                self._m_source.inc(b)
            else:
                slice_left -= 1
                yield from self._region_work(
                    region, count_source=True, thread_name=name
                )
            if slice_left <= 0 and core_pool.getters:
                sim.put_nowait(core_pool, _TOKEN)
            elif slice_left <= 0:
                slice_left = _CORE_SLICE

    def _scheduler_thread(self, thread_id: int) -> _Req:
        name = f"sched:{thread_id}"
        sim = self.sim
        order = self._queue_order
        queues = self._queues
        core_pool = self._core_pool
        busy_s = self._busy_s
        n = len(order)
        scan = self.machine.scan_time(n)
        lock_s = self.machine.lock_uncontended_s
        prefetch = self.channel.prefetch
        fast_ok = self.profiler is None or self._profiler_sampled
        # Interval publication keeps snapshot attribution working on
        # merged advances (see _RegionPlan.prof_*).
        publish = (
            self.registry
            if self.profiler is not None and fast_ok
            else None
        )
        # Scan probes resolved once to (queue, port, region, plan)
        # rows; the doubled list turns a rotated scan into straight
        # indexing with no per-probe dict lookups or modulo.
        slots = [
            (
                queues[idx],
                self._region_locks[idx],
                self._region_by_entry[idx],
                self._plans[idx],
            )
            for idx in order
        ]
        slots2 = slots + slots
        # One immutable park request, reused forever: the idle path
        # allocates nothing.
        park = ParkUntilNonEmpty(tuple(queues[idx] for idx in order))
        cursor = thread_id % n  # stagger round-robin start positions
        slice_left = 0
        while True:
            if slice_left <= 0:
                if core_pool.items:
                    # Inlined pop_nowait: the core pool never has
                    # blocked putters or parked consumers.
                    core_pool.items.popleft()
                    core_pool.total_got += 1
                else:
                    yield Get(core_pool)
                slice_left = _CORE_SLICE
            claim = None
            executing_elsewhere = False
            for pos in range(n):
                row = slots2[cursor + pos]
                if row[0].items:
                    if row[1].held_by is None:
                        # Non-empty, nobody executing its region: claim.
                        claim = row
                        cursor = (cursor + pos + 1) % n
                        break
                    executing_elsewhere = True
            if claim is None:
                self._m_idle.inc()
                # An idle thread surrenders the rest of its timeslice.
                slice_left = 0
                sim.put_nowait(core_pool, _TOKEN)
                if executing_elsewhere:
                    # Work exists but its port is held: the executing
                    # thread will rescan when done; retry shortly.
                    # (Parking here could livelock: the kernel would
                    # wake us immediately on the non-empty queue.)
                    # The failed scan's cost folds into the backoff.
                    yield scan + _IDLE_BACKOFF_S
                else:
                    # Every queue empty: park until the next push.
                    self._m_parked.inc()
                    yield park
                    self._m_parked.dec()
                    self._m_wakeups.inc()
                continue
            # The scan checked the port synchronously, so the claim
            # cannot fail and nothing has to yield: take port and
            # tuple immediately.  The scan's cost (charged as busy --
            # a scan that found work is work-finding, not starvation)
            # merges into the region's first time advance.
            queue, port, region, plan = claim
            sim.acquire_nowait(port)
            sim.pop_nowait(queue)
            if fast_ok and plan.fast:
                # Whole-claim fast path: scan + pop sync + operator
                # work + push copy advance as ONE simulator event
                # (burst_sched cost table), then the downstream
                # enqueues happen synchronously.  The thread drains a
                # burst while it holds the port (each tuple pays the
                # full per-tuple cost); with channel prefetch it may
                # drain further batches from the claimed port before
                # rescanning — fewer events, at the price of strict
                # round-robin work-finding fidelity.
                bursts_left = prefetch
                while True:
                    k = len(queue.items) + 1
                    if k > plan.max_burst_sched:
                        k = plan.max_burst_sched
                    if k > slice_left:
                        k = slice_left
                    for _ in range(k - 1):
                        sim.pop_nowait(queue)
                    slice_left -= k
                    dt = plan.burst_sched[k]
                    self._m_batch_flushes.inc()
                    if (
                        publish is not None
                        and plan.prof_bounds_sched is not None
                    ):
                        publish.set_interval(
                            name,
                            sim.now,
                            plan.prof_bounds_sched,
                            plan.prof_ops,
                            k,
                        )
                    push = plan.push
                    if push is not None:
                        pqueue, pqueue_op, _push_cost = push
                        busy_s[name] = busy_s.get(name, 0.0) + dt
                        yield dt
                        for _ in range(k):
                            if sim.put_nowait(pqueue, _TOKEN):
                                self._m_pushes.inc()
                            else:
                                yield from self._push_with_help(
                                    pqueue_op, pqueue, name
                                )
                    else:
                        busy_s[name] = busy_s.get(name, 0.0) + dt
                        yield dt
                    if plan.sink_total:
                        self._sink_count += plan.sink_total * k
                        self._m_sink.inc(plan.sink_total * k)
                    for lk in plan.lock_acq:
                        lk.acquisitions += k
                    if (
                        bursts_left <= 0
                        or slice_left <= 0
                        or not queue.items
                    ):
                        break
                    bursts_left -= 1
                    sim.pop_nowait(queue)
            else:
                slice_left -= 1
                yield from self._region_work(
                    region,
                    count_source=False,
                    thread_name=name,
                    pending=scan + lock_s,
                )
            sim.release_nowait(port)
            if slice_left <= 0:
                # Timeslice expired: hand the core to a waiter; with
                # nobody waiting, keep it for another slice with no
                # handoff event at all.
                if core_pool.getters:
                    sim.put_nowait(core_pool, _TOKEN)
                else:
                    slice_left = _CORE_SLICE

    # ------------------------------------------------------------------
    def attach_profiler(
        self, period_s: float = 1.0e-4, sampled: bool = True
    ) -> SnapshotProfiler:
        """Attach the paper's profiler thread: a process that snapshots
        every registered thread's current operator each ``period_s``.

        Must be called before :meth:`start`.  Returns the profiler whose
        counters accumulate for the run's lifetime.

        With ``sampled=True`` (the default) the engine keeps the
        coalesced fast path: merged time advances publish their
        analytic per-operator composition as sampled-accounting
        intervals, which snapshots resolve positionally — statistically
        equivalent attribution at fast-path cost.  ``sampled=False``
        restores fine-grained per-operator time advancement (one event
        per operator), used to cross-validate the sampled accounting.

        Calling again with the *same* parameters returns the existing
        profiler; a differing ``period_s`` or ``sampled`` raises
        ``ValueError`` instead of being silently ignored.
        """
        if self._started:
            raise RuntimeError("attach_profiler must precede start()")
        if self.profiler is not None:
            if period_s != self._profiler_period:
                raise ValueError(
                    f"profiler already attached with period_s="
                    f"{self._profiler_period!r}; cannot re-attach with "
                    f"period_s={period_s!r}"
                )
            if sampled != self._profiler_sampled:
                raise ValueError(
                    f"profiler already attached with sampled="
                    f"{self._profiler_sampled!r}; cannot re-attach with "
                    f"sampled={sampled!r}"
                )
            return self.profiler
        self.profiler = SnapshotProfiler(self.registry, obs=self._hub)

        def profiler_proc():
            while True:
                yield period_s
                self.profiler.sample(self.sim.now)

        self._profiler_period = period_s
        self._profiler_sampled = sampled
        self._profiler_proc = profiler_proc
        return self.profiler

    def start(self) -> None:
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        for _ in range(self._core_pool.capacity):
            self._core_pool.items.append(_TOKEN)
        self.registry.register("?")
        for region in self.decomposition.source_regions:
            self.registry.register(f"src:{region.entry}")
            name = f"src-thread:{region.entry}"
            schedule = self._arrivals.get(region.entry)
            if schedule is not None:
                self.sim.spawn(
                    self._open_loop_source_thread(region, schedule),
                    name=name,
                )
            else:
                self.sim.spawn(self._source_thread(region), name=name)
        if self._queues:
            for tid in range(self.scheduler_threads):
                self.registry.register(f"sched:{tid}")
                self.sim.spawn(
                    self._scheduler_thread(tid), name=f"sched:{tid}"
                )
        if self.profiler is not None:
            self.sim.spawn(self._profiler_proc(), name="profiler")
        # Analytic fast-forward engages for unprofiled runs whose
        # arrival schedules (if any) are steady and skippable: a plain
        # arrival iterator is external state a clock shift cannot
        # advance, but an :class:`~repro.scenarios.arrivals.
        # ArrivalStream` over a flat envelope exposes ``skip_to`` so
        # the jump re-anchors the schedule (see ``_ff_skip_arrivals``).
        # A profiler must observe every sampling period —
        # extrapolating over skipped stretches would leave holes in
        # its attribution.
        if (
            self.channel.fastforward
            and self.profiler is None
            and all(
                getattr(s, "steady", False) and hasattr(s, "skip_to")
                for s in self._arrivals.values()
            )
        ):
            self._ff_queues = (
                tuple(self._queues[i] for i in self._queue_order)
                + (self._core_pool,)
            )
            self._ff_locks = tuple(self._op_locks.values()) + tuple(
                self._region_locks[i] for i in self._queue_order
            )
            self._ff = FastForwarder(self)

    # ------------------------------------------------------------------
    # analytic fast-forward hooks (see repro.des.fastforward)
    # ------------------------------------------------------------------
    def _run_until(self, t_end: float) -> None:
        """Advance to ``t_end`` — through the fast-forwarder when one
        is attached, at plain event granularity otherwise."""
        if self._ff is not None:
            self._ff.run_window(t_end)
        else:
            self.sim.run_until(t_end)

    def _ff_counters(self) -> Tuple:
        """Snapshot of every monotone counter steady execution advances.

        The queue/lock integer counters come back as numpy vectors so
        the extrapolation below is one vectorized scale-and-add per
        family instead of a Python loop per object.
        """
        return (
            self._sink_count,
            self._source_count,
            np.array(
                [q.total_put for q in self._ff_queues], dtype=np.int64
            ),
            np.array(
                [q.total_got for q in self._ff_queues], dtype=np.int64
            ),
            np.array(
                [lk.acquisitions for lk in self._ff_locks],
                dtype=np.int64,
            ),
            dict(self._busy_s),
            self._offered_count,
            self._dropped_count,
        )

    def _ff_extrapolate(
        self, before: Tuple, after: Tuple, scale: float, saved: int
    ) -> None:
        """Advance every counter analytically by ``scale`` probe spans.

        ``before``/``after`` bracket the confirmation probes of a
        settled window; each counter moves by its probe delta times
        ``scale`` (the remaining window span over the probe span) —
        the steady rate extended over the skipped stretch.  Integer
        counters round to the nearest whole event.  Event-counting
        observability metrics (idle scans, wakeups, batch flushes)
        intentionally keep counting *executed* events only —
        ``des.analytic_fastforward_events_saved`` accounts for the
        elided ones.
        """
        d_sink = scale * (after[0] - before[0])
        d_source = scale * (after[1] - before[1])
        self._sink_count += d_sink
        self._source_count += d_source
        if d_sink:
            self._m_sink.inc(d_sink)
        if d_source:
            self._m_source.inc(d_source)
        d_put = np.rint(scale * (after[2] - before[2])).astype(np.int64)
        d_got = np.rint(scale * (after[3] - before[3])).astype(np.int64)
        d_acq = np.rint(scale * (after[4] - before[4])).astype(np.int64)
        core_pool = self._core_pool
        d_pushes = 0
        for q, dp, dg in zip(self._ff_queues, d_put, d_got):
            q.total_put += int(dp)
            q.total_got += int(dg)
            if q is not core_pool:
                d_pushes += int(dp)
        if d_pushes:
            self._m_pushes.inc(d_pushes)
        for lk, da in zip(self._ff_locks, d_acq):
            lk.acquisitions += int(da)
        busy_s = self._busy_s
        busy0 = before[5]
        for name, b1 in after[5].items():
            delta = b1 - busy0.get(name, 0.0)
            if delta:
                busy_s[name] = busy_s.get(name, 0.0) + scale * delta
        d_offered = scale * (after[6] - before[6])
        d_dropped = scale * (after[7] - before[7])
        self._offered_count += d_offered
        self._dropped_count += d_dropped
        if d_offered:
            self._m_offered.inc(d_offered)
        if d_dropped:
            self._m_dropped.inc(d_dropped)
        self._m_ff_saved.inc(saved)

    def _ff_skip_arrivals(self, t: float) -> None:
        """Re-anchor every arrival schedule after a clock jump.

        ``shift_time`` moves the simulator's future but not the
        external arrival iterators; without this, the first post-jump
        ``next()`` would return a long-past due time and the source
        thread would replay the skipped stretch as one giant backlog
        burst.  Eligibility (see :meth:`start`) guarantees every
        stream here has ``skip_to``.
        """
        for stream in self._arrivals.values():
            stream.skip_to(t)

    # ------------------------------------------------------------------
    def run(
        self, warmup_s: float = 0.002, measure_s: float = 0.01
    ) -> DesResult:
        """Warm up, then measure throughput over ``measure_s``.

        If every process wedges (all blocked with no pending event —
        see :meth:`Simulator.run_until`), the returned result carries
        ``deadlocked=True`` instead of silently reporting a deflated
        throughput over a window in which nothing ran.
        """
        if not self._started:
            self.start()
        self._run_until(self.sim.now + warmup_s)
        self._sink_count = 0.0
        self._source_count = 0.0
        self._offered_count = 0.0
        self._dropped_count = 0.0
        self._busy_s.clear()
        start = self.sim.now
        self._run_until(start + measure_s)
        window = self.sim.now - start
        occupancy = tuple(
            (idx, len(q)) for idx, q in sorted(self._queues.items())
        )
        busy = tuple(
            (name, min(1.0, t / window) if window else 0.0)
            for name, t in sorted(self._busy_s.items())
        )
        self._m_runs.inc()
        return DesResult(
            sink_tuples_per_s=self._sink_count / window if window else 0.0,
            source_tuples_per_s=(
                self._source_count / window if window else 0.0
            ),
            measured_window_s=window,
            sink_tuples=self._sink_count,
            queue_occupancy=occupancy,
            thread_busy_fraction=busy,
            deadlocked=self.sim.deadlocked,
            offered_tuples_per_s=(
                self._offered_count / window if window else 0.0
            ),
            dropped_tuples=self._dropped_count,
            open_loop=bool(self._arrivals),
        )


def measure_throughput(
    graph: StreamGraph,
    machine: MachineProfile,
    placement: QueuePlacement,
    scheduler_threads: int,
    warmup_s: float = 0.002,
    measure_s: float = 0.01,
    queue_capacity: int = 16,
    obs: Optional[Obs] = None,
    arrivals: Optional[Dict[int, Iterator[float]]] = None,
    overflow: str = "block",
    channel: Optional[ChannelConfig] = None,
) -> DesResult:
    """Convenience wrapper: build, run and measure one configuration.

    ``arrivals``/``overflow`` make the run open-loop, ``channel``
    configures the batched channels (see :class:`DesEngine`).  Historically every caller assumed saturated
    sources, so low throughput always meant contention; for an
    underloaded open-loop run the result instead carries
    ``offered_tuples_per_s`` / ``offered_utilization`` so callers can
    tell "the PE kept up with a light schedule" apart from "the PE is
    struggling" — check :attr:`DesResult.underloaded` before reasoning
    about contention.

    Warns (``RuntimeWarning``) when the run wedged — every process
    blocked with no pending event — because the throughput measured
    over such a window is an artifact, not a measurement.
    """
    engine = DesEngine(
        graph,
        machine,
        placement,
        scheduler_threads,
        queue_capacity=queue_capacity,
        obs=obs,
        arrivals=arrivals,
        overflow=overflow,
        channel=channel,
    )
    result = engine.run(warmup_s=warmup_s, measure_s=measure_s)
    if result.deadlocked:
        stuck = ", ".join(engine.sim.deadlock_tasks)
        warnings.warn(
            f"DES run of {graph.name!r} wedged: all tasks blocked "
            f"({stuck}); the measured throughput is not meaningful",
            RuntimeWarning,
            stacklevel=2,
        )
    return result
