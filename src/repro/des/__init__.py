"""Discrete-event simulation substrate (tuple-level validation)."""

from .adaptation import DesAdaptationResult, DesAdaptationRunner
from .channels import DEFAULT_CHANNEL, ChannelConfig
from .engine import DesEngine, DesResult, measure_throughput
from .fastforward import FastForwarder
from .kernel import (
    Acquire,
    Get,
    ParkUntilNonEmpty,
    Put,
    Release,
    Request,
    SimLock,
    SimQueue,
    Simulator,
    Timeout,
)

__all__ = [
    "ChannelConfig",
    "DEFAULT_CHANNEL",
    "DesAdaptationResult",
    "DesAdaptationRunner",
    "DesEngine",
    "DesResult",
    "FastForwarder",
    "measure_throughput",
    "Acquire",
    "Get",
    "ParkUntilNonEmpty",
    "Put",
    "Release",
    "Request",
    "SimLock",
    "SimQueue",
    "Simulator",
    "Timeout",
]
