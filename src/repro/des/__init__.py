"""Discrete-event simulation substrate (tuple-level validation)."""

from .adaptation import DesAdaptationResult, DesAdaptationRunner
from .engine import DesEngine, DesResult, measure_throughput
from .kernel import (
    Acquire,
    Get,
    ParkUntilNonEmpty,
    Put,
    Release,
    Request,
    SimLock,
    SimQueue,
    Simulator,
    Timeout,
)

__all__ = [
    "DesAdaptationResult",
    "DesAdaptationRunner",
    "DesEngine",
    "DesResult",
    "measure_throughput",
    "Acquire",
    "Get",
    "ParkUntilNonEmpty",
    "Put",
    "Release",
    "Request",
    "SimLock",
    "SimQueue",
    "Simulator",
    "Timeout",
]
