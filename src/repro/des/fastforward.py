"""Analytic fast-forwarding of steady DES windows.

The engine's batched channels already coalesce per-tuple events into
burst events; the next order of magnitude cannot come from shaving the
per-event constant further — it comes from not dispatching steady-state
events at all.  This module implements that amortization: once a
measurement window has demonstrably settled into a steady state, the
remainder of the window is advanced *analytically* — one clock shift
plus vectorized counter extrapolation — instead of event by event.

Why rates, not cycles
---------------------
The PE is a deterministic timed system, but its state includes the
real-valued relative phases of every thread's next event, and at
saturation those phases never exactly recur (measured empirically: no
event-signature block of the 8-op benchmark pipeline ever repeats
within 68k events).  Exact cycle replay is therefore not available.
What *is* available — and is what the engine's measurements and the
adaptation rules actually consume — is the steady-state **rate** of
every monotone counter: sink/source tuples, per-queue put/got totals,
lock acquisitions, per-thread busy seconds.  Over event-count probes
the realized rates concentrate tightly around the steady mean (~1%
at 4k events), so two consecutive probes that agree pin the steady
state and bound the extrapolation error by the probe variance.

Mechanism
---------
:meth:`FastForwarder.run_window` interleaves bounded event strides
with detection:

1. dispatch one probe of ``probe_events`` events normally, bracketing
   it with counter snapshots;
2. compare the probe's headline rates (sink tuples/s, source tuples/s,
   events per simulated second) with the previous probe's; disagreement
   beyond ``rtol`` means transient — slide the probe window and keep
   executing;
3. on agreement, extrapolate: compute every counter's delta over the
   two combined probes (a numpy-vectorized scaled accumulation), scale
   it to the remaining window span, apply it, and
   :meth:`~repro.des.kernel.Simulator.shift_time` the clock and every
   pending event to the window boundary.

The probes themselves are ordinary execution, so a window that never
settles — adaptation transients, ON/OFF modulation, queue-overflow
churn — simply runs at event granularity end to end.  Short windows
(warmup, the engine's default 10 ms measurement) are likewise
protected: a jump is only taken when the remaining span exceeds
``min_jump_spans`` probe spans, so fast-forwarding engages on the long
steady windows where it pays and stays out of the transient ones.
The engine additionally refuses to construct a fast-forwarder at all
for profiled runs (the sampling clock must observe every interval,
and its period is incommensurate with any steady pattern) and for
open-loop runs whose arrival schedules are modulated or lack
``skip_to`` — a bare arrival iterator is external state a clock shift
cannot advance.  Steady :class:`~repro.scenarios.arrivals.
ArrivalStream` schedules *are* eligible: after a jump the engine
calls ``skip_to`` on every stream so the schedule re-anchors at the
jump target instead of replaying the skipped stretch.

Fidelity
--------
Extrapolated totals equal the steady rates measured over the
confirmation probes times the skipped span; the relative error against
full execution is bounded by the probe-to-probe rate variance (~1% at
the default probe size, and shrinking with the square root of probe
length as fluctuations average out).  Because the adaptation rules
(R1–R5) compare window throughput against coarse thresholds with
hysteresis, this is far below decision resolution — the
batched-equivalence suite pins byte-identical decision sequences with
fast-forward on vs off across the scenario zoo.  Runs remain exactly
deterministic: the same configuration takes the same probes and the
same jump every time.
"""

from __future__ import annotations

from typing import Optional, Tuple

# Events per probe.  ~0.7 ms of simulated time on the benchmark
# pipeline; rate fluctuation at this size is ~1%.
_PROBE_EVENTS = 4096
# Maximum relative disagreement between consecutive probes' headline
# rates for the window to count as settled.
_RTOL = 0.05
# A jump must skip at least this many probe spans to be worth taking;
# also what keeps warmup and other short windows at event granularity.
_MIN_JUMP_SPANS = 4.0


def _rel_close(a: float, b: float, rtol: float) -> bool:
    if a == b:
        return True
    return abs(a - b) <= rtol * max(abs(a), abs(b))


class FastForwarder:
    """Drives one engine's windows with steady-state detection +
    analytic extrapolation.

    Created by :class:`~repro.des.engine.DesEngine` when its channel
    enables ``fastforward``, the run is unprofiled, and every arrival
    schedule (none, for closed loop) is steady and skippable.
    """

    def __init__(
        self,
        engine,
        probe_events: int = _PROBE_EVENTS,
        rtol: float = _RTOL,
        min_jump_spans: float = _MIN_JUMP_SPANS,
    ) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.probe_events = probe_events
        self.rtol = rtol
        self.min_jump_spans = min_jump_spans
        # Diagnostics (events_saved is also exported as the
        # des.analytic_fastforward_events_saved obs metric).
        self.jumps = 0
        self.events_saved = 0
        self.probes = 0

    # ------------------------------------------------------------------
    def run_window(self, t_end: float) -> None:
        """Advance the simulation to ``t_end``, fast-forwarding the
        steady remainder; drop-in for ``Simulator.run_until(t_end)``."""
        sim = self.sim
        engine = self.engine
        heap = sim._heap
        # (counters_at_probe_start, span, headline_rates) of the
        # previous full probe; None while still in transient.
        prev: Optional[Tuple[Tuple, float, Tuple[float, ...]]] = None
        while True:
            if not heap or heap[0][0] > t_end:
                # Nothing left before the boundary: finalize the clock
                # (and the deadlock latch) exactly as a plain run does.
                sim.run_until(t_end)
                return
            t0 = sim.now
            c0 = engine._ff_counters()
            n = sim.run_until(t_end, max_events=self.probe_events)
            self.probes += 1
            span = sim.now - t0
            if n < self.probe_events or span <= 0.0:
                # Hit the boundary (or a zero-span burst of
                # simultaneous events): not a usable probe.
                prev = None
                continue
            c1 = engine._ff_counters()
            rates = (
                (c1[0] - c0[0]) / span,  # sink tuples / sim s
                (c1[1] - c0[1]) / span,  # source tuples / sim s
                n / span,  # dispatched events / sim s
            )
            remaining = t_end - sim.now
            if (
                prev is not None
                and remaining > self.min_jump_spans * (prev[1] + span)
                and all(
                    _rel_close(r, p, self.rtol)
                    for r, p in zip(rates, prev[2])
                )
            ):
                # Settled: extrapolate the combined probes over the
                # whole remaining span and jump to the boundary.
                total_span = prev[1] + span
                scale = remaining / total_span
                saved = int(round(scale * (self.probe_events + n)))
                engine._ff_extrapolate(prev[0], c1, scale, saved)
                sim.shift_time(remaining)
                engine._ff_skip_arrivals(sim.now)
                sim.events_fastforwarded += saved
                self.jumps += 1
                self.events_saved += saved
                prev = None
                continue
            prev = (c0, span, rates)
