"""Predicted near-optimal operating points (the warm-start prior).

The calibrated :class:`~repro.perfmodel.throughput.PerformanceModel`
already answers "what would this (placement, threads) configuration
sustain?"; this module inverts the question: given a graph and a
machine, sweep a structured candidate grid and return the predicted
near-optimal configuration so the multi-level coordinator can *start*
there instead of climbing from minimum parallelism (POTUS-style
model-driven placement, PAPERS.md).

The candidate grid mirrors what the reactive search would eventually
discover:

- **placements** are cost-ordered prefixes — the eligible (non-source)
  operators sorted by per-tuple work (``cost_flops`` × relative
  arrival rate) descending, queued ``k`` at a time along a geometric
  ladder from 0 to all of them.  The threading-model search randomizes
  over profiling groups, but its fixed point concentrates queues on
  the expensive operators, which is exactly this family;
- **thread counts** follow the same geometric ladder the thread-count
  controller explores (min, 2·min, … max).

The selection applies the coordinator's own SASO rule: among all
candidates within ``sens`` of the best predicted sink throughput,
prefer the fewest threads, then the fewest queues — a prediction that
overshoots would otherwise bake oversubscription into the warm start.

The sweep costs O(log·log) model estimates (each itself cached per
model instance), so querying the prior is far cheaper than even one
simulated adaptation period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..graph.model import StreamGraph
from ..runtime.queues import QueuePlacement
from .machine import MachineProfile
from .throughput import PerformanceModel


@dataclass(frozen=True)
class PredictedPoint:
    """A model-predicted near-optimal configuration."""

    threads: int
    queued: Tuple[int, ...]
    throughput: float

    @property
    def n_queues(self) -> int:
        return len(self.queued)


def _geometric_ladder(lo: int, hi: int) -> List[int]:
    """lo, 2·lo, … capped at hi (hi always included)."""
    ladder = []
    level = max(1, lo)
    while level < hi:
        ladder.append(level)
        level = max(level + 1, level * 2)
    ladder.append(hi)
    return ladder


def candidate_placements(graph: StreamGraph) -> List[QueuePlacement]:
    """Cost-ordered prefix placements along a geometric count ladder."""
    rates = graph.arrival_rates()
    eligible = sorted(
        (op.index for op in graph if not op.is_source),
        key=lambda i: (-graph.operators[i].cost_flops * rates[i], i),
    )
    counts = {0, len(eligible)}
    counts.update(
        k for k in _geometric_ladder(1, max(1, len(eligible)))
    )
    return [
        QueuePlacement.of(eligible[:k])
        for k in sorted(counts)
        if k <= len(eligible)
    ]


def predict_operating_point(
    graph: StreamGraph,
    machine: MachineProfile,
    min_threads: int = 1,
    max_threads: int = 16,
    sens: float = 0.05,
) -> PredictedPoint:
    """Predict the near-optimal (threads, queue placement) for a graph.

    Returns the SASO-minimal candidate: lowest thread count, then
    lowest queue count, among those within ``sens`` of the best
    predicted sink throughput.
    """
    model = PerformanceModel(graph, machine)
    thread_ladder = _geometric_ladder(min_threads, max_threads)
    candidates: List[Tuple[float, int, QueuePlacement]] = []
    for placement in candidate_placements(graph):
        for threads in thread_ladder:
            throughput = model.sink_throughput(placement, threads)
            candidates.append((throughput, threads, placement))
    best = max(c[0] for c in candidates)
    floor = best * (1.0 - sens)
    throughput, threads, placement = min(
        (c for c in candidates if c[0] >= floor),
        key=lambda c: (c[1], c[2].n_queues),
    )
    return PredictedPoint(
        threads=threads,
        queued=tuple(sorted(placement.queued)),
        throughput=throughput,
    )
