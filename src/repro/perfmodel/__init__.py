"""Analytical performance substrate (replaces real Xeon/POWER8 hosts).

Calibration utilities are imported lazily (PEP 562): they depend on the
DES engine, which depends on the core controllers, which depend on this
package — eager imports would be circular.
"""

from typing import TYPE_CHECKING

from .contention import (
    operator_lock_cost,
    pop_cost,
    push_cost,
    queue_sync_cost,
)
from .machine import MachineProfile, laptop, power8_184, xeon_176
from .noise import NoiseModel, make_noise
from .throughput import PerformanceModel, ThroughputEstimate

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from .calibration import (
        ValidationReport,
        ValidationRow,
        fit_flops_rate,
        validation_report,
    )

_LAZY = {
    "PredictedPoint": ("repro.perfmodel.predict", "PredictedPoint"),
    "predict_operating_point": (
        "repro.perfmodel.predict",
        "predict_operating_point",
    ),
    "LatencyEstimate": ("repro.perfmodel.latency", "LatencyEstimate"),
    "estimate_latency": ("repro.perfmodel.latency", "estimate_latency"),
    "latency_profile": ("repro.perfmodel.latency", "latency_profile"),
    "ValidationReport": ("repro.perfmodel.calibration", "ValidationReport"),
    "ValidationRow": ("repro.perfmodel.calibration", "ValidationRow"),
    "fit_flops_rate": ("repro.perfmodel.calibration", "fit_flops_rate"),
    "validation_report": (
        "repro.perfmodel.calibration",
        "validation_report",
    ),
}

__all__ = [
    "PredictedPoint",
    "predict_operating_point",
    "LatencyEstimate",
    "estimate_latency",
    "latency_profile",
    "ValidationReport",
    "ValidationRow",
    "fit_flops_rate",
    "validation_report",
    "operator_lock_cost",
    "pop_cost",
    "push_cost",
    "queue_sync_cost",
    "MachineProfile",
    "laptop",
    "power8_184",
    "xeon_176",
    "NoiseModel",
    "make_noise",
    "PerformanceModel",
    "ThroughputEstimate",
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(
        f"module 'repro.perfmodel' has no attribute {name!r}"
    )
