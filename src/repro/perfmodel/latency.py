"""End-to-end tuple latency estimation (extension beyond the paper).

The paper evaluates throughput only, but the model's region/queue
structure yields latency almost for free, and latency is the other half
of every streaming SLA.  This module estimates the mean end-to-end
latency of a tuple from a source to a sink under a given configuration
and offered load:

- traversing a *manual* segment costs its service time (function calls,
  no queueing);
- crossing a *scheduler queue* costs the push (copy + sync), the queue
  wait, and the consuming region's service time.  The wait uses the
  M/M/1 approximation ``W = u / (1 - u) * s`` where ``u`` is the
  consuming region's utilization at the offered load and ``s`` its
  per-tuple service time.

The estimator exposes the classic pipeline-parallelism trade-off the
paper's threading model implicitly navigates: queues *reduce* latency
near saturation (they relieve the bottleneck that otherwise dominates
the critical path) but *add* latency at light load (extra copies and
hops) — one more reason "all operators dynamic" is not a free default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..runtime.queues import QueuePlacement
from .throughput import PerformanceModel


@dataclass(frozen=True)
class LatencyEstimate:
    """Mean end-to-end latency under one configuration and load."""

    latency_s: float
    offered_load: float
    max_utilization: float
    saturated: bool
    per_region_wait_s: Tuple[Tuple[int, float], ...]

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


def estimate_latency(
    model: PerformanceModel,
    placement: QueuePlacement,
    scheduler_threads: int,
    load_fraction: float = 0.8,
) -> LatencyEstimate:
    """Mean source->sink latency at ``load_fraction`` of capacity.

    ``load_fraction`` is relative to the configuration's own maximum
    sustainable throughput; 1.0 or above reports a saturated estimate
    (infinite queueing delay under M/M/1 — returned as ``inf`` with
    ``saturated=True``).
    """
    if load_fraction < 0:
        raise ValueError(f"load_fraction must be >= 0: {load_fraction}")
    estimate = model.estimate(placement, scheduler_threads)
    decomp = model.decomposition(placement)
    machine = model.machine
    graph = model.graph
    n_sources = max(1, len(graph.sources))

    offered = estimate.throughput * load_fraction  # aggregate tuples/s
    per_source = offered / n_sources

    # Per-region utilization and wait at this load.  Region work `w` is
    # seconds per unit per-source rate; utilization = per_source * w
    # (normalized by the thread speed the bounds already encode).
    speed = estimate.thread_speed if estimate.thread_speed > 0 else 1.0
    work = dict(estimate.region_work)
    service: Dict[int, float] = {}
    wait: Dict[int, float] = {}
    max_u = 0.0
    saturated = False
    for region in decomp.regions:
        w = work.get(region.entry, 0.0)
        entry_rate = region.entry_rate if region.entry_rate > 0 else 1.0
        s = (w / entry_rate) / speed  # seconds per entry tuple
        service[region.entry] = s
        u = per_source * w / speed
        max_u = max(max_u, u)
        if u >= 1.0:
            # Offered load beyond this region's capacity: its backlog
            # grows without bound (for a source region, the external
            # arrivals outpace the operator thread).
            saturated = True
            wait[region.entry] = float("inf")
        elif region.is_source_region:
            # Below capacity, a source region has no input queue: the
            # operator thread paces itself.
            wait[region.entry] = 0.0
        else:
            wait[region.entry] = u / (1.0 - u) * s

    # Longest path over the region DAG: regions connect where one
    # region pushes into another's queue.
    push_cost = machine.copy_time(graph.tuple_spec.payload_bytes)
    adjacency: Dict[int, Tuple[int, ...]] = {
        r.entry: tuple(q for q, _rate in r.push_rates)
        for r in decomp.regions
    }
    memo: Dict[int, float] = {}

    def longest_from(entry: int) -> float:
        if entry in memo:
            return memo[entry]
        own = service[entry] + wait[entry]
        downstream = 0.0
        for succ in adjacency[entry]:
            downstream = max(
                downstream, push_cost + longest_from(succ)
            )
        memo[entry] = own + downstream
        return memo[entry]

    latency = max(
        (longest_from(r.entry) for r in decomp.source_regions),
        default=0.0,
    )
    return LatencyEstimate(
        latency_s=latency,
        offered_load=offered,
        max_utilization=max_u,
        saturated=saturated,
        per_region_wait_s=tuple(sorted(wait.items())),
    )


def latency_profile(
    model: PerformanceModel,
    placement: QueuePlacement,
    scheduler_threads: int,
    load_fractions: Tuple[float, ...] = (0.2, 0.5, 0.8, 0.95),
) -> Dict[float, LatencyEstimate]:
    """Latency at several load points (for latency/throughput curves)."""
    return {
        f: estimate_latency(model, placement, scheduler_threads, f)
        for f in load_fractions
    }
