"""Contention models: lock inflation and queue synchronization costs.

Two distinct contention sources appear in the paper:

1. **Scheduler queue synchronization** — every push into and pop from a
   scheduler queue takes a lock.  The more threads hammer the same
   queue, the more the lock bounces between caches.  We model the
   expected concurrency per queue as ``active_threads / n_queues``
   (scheduler threads spread across queues) and inflate the lock cost
   linearly in the expected number of *other* contenders.

2. **Operator-internal locks** — e.g. the paper's Snk operator guards a
   throughput counter with a lock, so "as the thread count increases,
   contention among threads on the Snk operator also increases"
   (Fig. 10).  Here the contender count is the number of distinct
   regions reaching the operator, capped by the number of running
   threads.

Both are deliberately simple closed forms: the controllers only need the
qualitative behaviour (monotone inflation with concurrency) to face the
same trade-offs as on real hardware.
"""

from __future__ import annotations

from .machine import MachineProfile


def queue_sync_cost(
    machine: MachineProfile, active_threads: int, n_queues: int
) -> float:
    """Cost of one lock-protected queue operation (push or pop).

    Parameters
    ----------
    active_threads:
        Threads that may touch scheduler queues (scheduler threads plus
        the producing operator threads).
    n_queues:
        Number of scheduler queues the traffic spreads over.
    """
    if n_queues <= 0:
        return 0.0
    expected_contenders = max(0.0, active_threads / n_queues - 1.0)
    return (
        machine.lock_uncontended_s
        + machine.lock_contended_penalty_s * expected_contenders
    )


def operator_lock_cost(
    machine: MachineProfile, concurrent_threads: int
) -> float:
    """Per-invocation cost of an operator-internal lock.

    ``concurrent_threads`` is how many threads can be executing the
    operator's callers simultaneously (1 = no contention).
    """
    contenders = max(0, concurrent_threads - 1)
    return (
        machine.lock_uncontended_s
        + machine.lock_contended_penalty_s * contenders
    )


def pop_cost(
    machine: MachineProfile, active_threads: int, n_queues: int
) -> float:
    """Full cost for a scheduler thread to obtain one tuple.

    Work finding (scan over the queue list) plus the synchronized pop.
    """
    return machine.scan_time(n_queues) + queue_sync_cost(
        machine, active_threads, n_queues
    )


def push_cost(
    machine: MachineProfile,
    active_threads: int,
    n_queues: int,
    payload_bytes: int,
) -> float:
    """Full cost for a producer to push one tuple into a scheduler queue.

    SPL tuples are statically allocated, so crossing a queue requires a
    payload copy, plus the synchronized enqueue.
    """
    return machine.copy_time(payload_bytes) + queue_sync_cost(
        machine, active_threads, n_queues
    )
