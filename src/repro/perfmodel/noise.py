"""Measurement-noise model layered over the analytical estimator.

The paper's SENS threshold exists precisely because observed throughput
is noisy: "The observed performance change should be significant enough
to differentiate from system noise."  We reproduce that with seeded
multiplicative lognormal noise, so that

- the controllers' trend logic is exercised against realistic jitter,
- experiments remain bit-reproducible across runs (seeded generator),
- noise magnitude is configurable (``noise_std`` ~ coefficient of
  variation; the default 1 % reflects a quiet dedicated machine, and
  tests sweep it up to 10 % to stress stability).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


class NoiseModel:
    """Multiplicative lognormal observation noise."""

    def __init__(self, std: float = 0.01, seed: int = 0) -> None:
        if std < 0:
            raise ValueError(f"std must be >= 0, got {std}")
        self.std = std
        self._rng = np.random.default_rng(seed)

    def observe(self, true_value: float) -> float:
        """Return a noisy observation of ``true_value``.

        Uses a lognormal factor with unit median so noise never flips
        the sign and is symmetric in log space.
        """
        if self.std == 0.0 or true_value == 0.0:
            return true_value
        sigma = math.sqrt(math.log(1.0 + self.std**2))
        factor = float(self._rng.lognormal(mean=0.0, sigma=sigma))
        return true_value * factor

    def reseed(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)


def make_noise(
    std: float, seed: int, enabled: bool = True
) -> Optional[NoiseModel]:
    """Convenience factory: returns None when noise is disabled."""
    if not enabled or std == 0.0:
        return None
    return NoiseModel(std=std, seed=seed)
