"""Steady-state throughput estimator for a configured PE.

This is the analytical heart of the simulated substrate.  Given a stream
graph, a queue placement and a scheduler-thread count, it computes the
sustainable source emission rate ``lambda`` (aggregated tuples/s over all
sources) as the minimum of four bounds:

1. **Serial bottleneck** — every region is executed by at most one
   thread at a time, so ``lambda <= thread_speed / max_r w_r`` where
   ``w_r`` is region *r*'s work (seconds) per unit source rate.
2. **Source-thread class capacity** — source regions are driven by the
   fixed operator threads: ``lambda * W_src <= n_sources * thread_speed``.
3. **Scheduler-thread class capacity** — dynamic regions share the
   elastic scheduler threads: ``lambda * W_dyn <= n_sched_used *
   thread_speed``.
4. **Memory bandwidth** — every queue crossing copies the tuple payload,
   and copies from all cores share the DRAM bus:
   ``lambda * bytes_copied_per_source_tuple <= machine bandwidth``.

``thread_speed`` degrades under SMT sharing and oversubscription via
:meth:`MachineProfile.effective_capacity`.  Region work includes the
operator execution cost, per-invocation call/submit overheads,
work-finding and queue synchronization (pop side), payload copy and
queue synchronization (push side) and operator-internal lock contention.

The estimator is intentionally *deterministic*; measurement noise is
layered on top by :mod:`repro.perfmodel.noise` so the elastic
controllers see realistic observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..graph.model import StreamGraph
from ..runtime.queues import QueuePlacement
from ..runtime.regions import RegionDecomposition, decompose
from .contention import operator_lock_cost, pop_cost, push_cost
from .machine import MachineProfile


@dataclass(frozen=True)
class ThroughputEstimate:
    """Result of a steady-state throughput evaluation.

    ``throughput`` is the aggregate source emission rate in tuples/s.
    The individual bounds are exposed for diagnostics and for tests that
    assert *why* a configuration is slow.
    """

    throughput: float
    serial_bound: float
    source_class_bound: float
    scheduler_class_bound: float
    memory_bound: float
    source_rate_bound: float
    bottleneck_entry: Optional[int]
    thread_speed: float
    active_threads: int
    scheduler_threads_used: int
    region_work: Tuple[Tuple[int, float], ...]

    @property
    def limiting_factor(self) -> str:
        """Name of the binding constraint (for reports and tests)."""
        bounds = {
            "serial": self.serial_bound,
            "source_class": self.source_class_bound,
            "scheduler_class": self.scheduler_class_bound,
            "memory": self.memory_bound,
            "source_rate": self.source_rate_bound,
        }
        return min(bounds, key=lambda k: bounds[k])


class PerformanceModel:
    """Evaluates throughput for (placement, thread count) configurations.

    A model instance is bound to one graph and one machine profile so it
    can cache the (placement-independent) global rates and reuse region
    decompositions across repeated evaluations of the same placement —
    the adaptation loop evaluates each configuration many consecutive
    periods.
    """

    def __init__(self, graph: StreamGraph, machine: MachineProfile) -> None:
        self.graph = graph
        self.machine = machine
        self._decomposition_cache: Dict[frozenset, RegionDecomposition] = {}
        self._estimate_cache: Dict[Tuple[frozenset, int], ThroughputEstimate] = {}

    # ------------------------------------------------------------------
    def decomposition(self, placement: QueuePlacement) -> RegionDecomposition:
        key = placement.queued
        found = self._decomposition_cache.get(key)
        if found is None:
            found = decompose(self.graph, placement)
            # Bound the cache: adaptation explores O(hundreds) of
            # placements; keep the most recent ones only.
            if len(self._decomposition_cache) > 512:
                self._decomposition_cache.clear()
            self._decomposition_cache[key] = found
        return found

    # ------------------------------------------------------------------
    def estimate(
        self, placement: QueuePlacement, scheduler_threads: int
    ) -> ThroughputEstimate:
        """Steady-state throughput for one configuration."""
        if scheduler_threads < 0:
            raise ValueError(
                f"scheduler_threads must be >= 0, got {scheduler_threads}"
            )
        cache_key = (placement.queued, scheduler_threads)
        cached = self._estimate_cache.get(cache_key)
        if cached is not None:
            return cached

        machine = self.machine
        graph = self.graph
        decomp = self.decomposition(placement)
        n_sources = len(decomp.source_regions)
        n_dynamic = len(decomp.dynamic_regions)
        n_queues = placement.n_queues

        sched_used = min(scheduler_threads, n_dynamic)
        active = n_sources + sched_used
        capacity = machine.effective_capacity(active)
        thread_speed = capacity / active if active > 0 else 0.0

        payload = graph.tuple_spec.payload_bytes
        # Threads that touch queues: producers (any region that pushes)
        # plus scheduler threads.  Using `active` is a faithful upper
        # bound for the contention estimate.
        t_pop = pop_cost(machine, active, n_queues) if n_queues else 0.0
        t_push = push_cost(machine, active, n_queues, payload)

        region_work = []
        copied_bytes_per_tuple = 0.0
        w_src_total = 0.0
        w_dyn_total = 0.0
        serial_max = 0.0
        bottleneck_entry: Optional[int] = None

        for region in decomp.regions:
            work = 0.0
            for op_idx, rate in region.op_rates:
                op = graph.operator(op_idx)
                per_tuple = (
                    machine.flop_time(op.cost_flops)
                    + machine.call_overhead_s
                    + machine.submit_overhead_s * op.selectivity
                )
                if op.uses_lock:
                    contenders = min(decomp.threads_reaching(op_idx), active)
                    per_tuple += operator_lock_cost(machine, contenders)
                work += rate * per_tuple
            if not region.is_source_region:
                work += region.entry_rate * t_pop
            for _queue_op, push_rate in region.push_rates:
                work += push_rate * t_push
                copied_bytes_per_tuple += push_rate * payload
            region_work.append((region.entry, work))
            if region.is_source_region:
                w_src_total += work
            else:
                w_dyn_total += work
            if work > serial_max:
                serial_max = work
                bottleneck_entry = region.entry

        # Region rates are normalized to UNIT rate per source; the
        # aggregate emission rate `lambda` splits evenly over the
        # n_sources symmetric sources, so every per-source bound scales
        # by n_sources when expressed against the aggregate.
        inf = float("inf")
        scale = max(1, n_sources)
        serial_bound = (
            scale * thread_speed / serial_max if serial_max > 0 else inf
        )
        # Each source thread is bound to its own region; the class
        # bound distributes the total source-region work over the
        # n_sources operator threads (redundant for symmetric sources,
        # binding when one source region is much fatter).
        source_class_bound = (
            scale * n_sources * thread_speed / w_src_total
            if w_src_total > 0
            else inf
        )
        if w_dyn_total > 0:
            if sched_used == 0:
                scheduler_class_bound = 0.0
            else:
                scheduler_class_bound = (
                    scale * sched_used * thread_speed / w_dyn_total
                )
        else:
            scheduler_class_bound = inf
        memory_bound = (
            scale
            * machine.memory_bw_total_bytes_per_second
            / copied_bytes_per_tuple
            if copied_bytes_per_tuple > 0
            else inf
        )
        # External arrival limit: sources cannot emit faster than the
        # outside world delivers (the NIC line rate for the paper's
        # DPDK ingest).  Aggregate = n_sources x the slowest cap.
        rate_caps = [
            op.max_rate
            for op in graph.sources
            if op.max_rate is not None
        ]
        source_rate_bound = (
            scale * min(rate_caps) if rate_caps else inf
        )

        throughput = min(
            serial_bound,
            source_class_bound,
            scheduler_class_bound,
            memory_bound,
            source_rate_bound,
        )
        estimate = ThroughputEstimate(
            throughput=throughput,
            serial_bound=serial_bound,
            source_class_bound=source_class_bound,
            scheduler_class_bound=scheduler_class_bound,
            memory_bound=memory_bound,
            source_rate_bound=source_rate_bound,
            bottleneck_entry=bottleneck_entry,
            thread_speed=thread_speed,
            active_threads=active,
            scheduler_threads_used=sched_used,
            region_work=tuple(region_work),
        )
        if len(self._estimate_cache) > 4096:
            self._estimate_cache.clear()
        self._estimate_cache[cache_key] = estimate
        return estimate

    # ------------------------------------------------------------------
    def sink_throughput(
        self, placement: QueuePlacement, scheduler_threads: int
    ) -> float:
        """Throughput measured at the sink operators (tuples/s).

        The paper measures at the sink; sink arrival rate relates to the
        source rate through the graph's selectivities.
        """
        estimate = self.estimate(placement, scheduler_threads)
        rates = self.graph.arrival_rates()
        sink_rate_per_source = sum(
            rates[op.index] for op in self.graph.sinks
        )
        # Rates are normalized per-source; `throughput` aggregates all
        # sources, each contributing rate 1.
        n_sources = max(1, len(self.graph.sources))
        return estimate.throughput * sink_rate_per_source / n_sources

    def invalidate(self, graph: StreamGraph) -> None:
        """Swap in a new graph (workload change) and drop caches."""
        self.graph = graph
        self._decomposition_cache.clear()
        self._estimate_cache.clear()
