"""Machine profiles: the calibrated constants of the performance model.

The paper evaluates on two systems:

- a Xeon machine with up to 176 logical cores,
- a POWER8 machine with two 12-core, 8-way-SMT processors (one core
  disabled), i.e. 184 logical cores.

Real hardware is unavailable here, so each profile is a small set of
per-machine cost constants chosen from first-principles envelope
estimates (scalar FLOP throughput, memcpy bandwidth, uncontended lock
latency, function-call cost).  The *absolute* throughputs these produce
are synthetic; what matters is the *relative* cost structure — e.g. a
16 KiB memcpy costs ~100x a 100-FLOP operator — which is what shapes
every figure in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineProfile:
    """Cost constants of a simulated host.

    Attributes
    ----------
    name:
        Identifier used in reports.
    logical_cores:
        Number of hardware threads available to the PE.
    flops_per_second:
        Scalar floating-point throughput of one hardware thread.
    memcpy_bytes_per_second:
        Sustained single-thread copy bandwidth (tuple copy cost).
    tuple_copy_base_s:
        Fixed per-tuple copy overhead (allocator bookkeeping, header).
    lock_uncontended_s:
        Cost of an uncontended lock acquire/release pair.
    lock_contended_penalty_s:
        Additional cost per *extra* contending thread (cache-line
        bouncing); the contention model multiplies this by a concurrency
        estimate.
    memory_bw_total_bytes_per_second:
        Aggregate DRAM bandwidth shared by all cores.  Tuple copies from
        every scheduler queue compete for it; at large payloads this is
        the bound that makes full dynamic threading lose to manual
        threading (Fig. 9, 16384 B payloads).
    queue_scan_s_per_queue:
        Per-queue cost of the scheduler thread's work-finding scan; the
        paper: "an increasing list of scheduler queues means that each
        thread has to spend longer time in finding work".
    queue_scan_base_s:
        Fixed cost of one work-finding round.
    call_overhead_s:
        Cost of invoking one operator via function call (manual model).
    submit_overhead_s:
        Cost of submitting a tuple to an output port.
    context_switch_penalty:
        Relative efficiency loss exponent under oversubscription; when
        ``threads > cores``, capacity is scaled by
        ``(cores / threads) ** context_switch_penalty`` on top of the
        hard core limit.
    smt_efficiency:
        Marginal efficiency of logical cores beyond the physical core
        count (SMT threads share execution units).
    physical_cores:
        Number of physical cores (for SMT scaling).
    """

    name: str
    logical_cores: int
    flops_per_second: float = 4.0e9
    memcpy_bytes_per_second: float = 8.0e9
    tuple_copy_base_s: float = 60.0e-9
    lock_uncontended_s: float = 25.0e-9
    lock_contended_penalty_s: float = 120.0e-9
    memory_bw_total_bytes_per_second: float = 60.0e9
    queue_scan_s_per_queue: float = 0.4e-9
    queue_scan_base_s: float = 40.0e-9
    call_overhead_s: float = 4.0e-9
    submit_overhead_s: float = 6.0e-9
    context_switch_penalty: float = 0.5
    smt_efficiency: float = 0.45
    physical_cores: int = 0

    def __post_init__(self) -> None:
        if self.logical_cores < 1:
            raise ValueError(
                f"logical_cores must be >= 1, got {self.logical_cores}"
            )
        if self.physical_cores == 0:
            object.__setattr__(self, "physical_cores", self.logical_cores)
        if self.physical_cores > self.logical_cores:
            raise ValueError(
                "physical_cores cannot exceed logical_cores: "
                f"{self.physical_cores} > {self.logical_cores}"
            )

    # ------------------------------------------------------------------
    # derived per-event costs
    # ------------------------------------------------------------------
    def flop_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating point operations."""
        return flops / self.flops_per_second

    def copy_time(self, payload_bytes: int) -> float:
        """Seconds to copy one tuple of the given payload into a queue."""
        return (
            self.tuple_copy_base_s
            + payload_bytes / self.memcpy_bytes_per_second
        )

    def scan_time(self, n_queues: int) -> float:
        """Seconds for a scheduler thread to find work among n queues."""
        return self.queue_scan_base_s + self.queue_scan_s_per_queue * n_queues

    def effective_capacity(self, active_threads: int) -> float:
        """Aggregate execution capacity (in thread-equivalents).

        Up to ``physical_cores`` threads run at full speed; additional
        threads up to ``logical_cores`` contribute at ``smt_efficiency``;
        beyond that, oversubscription *reduces* total capacity via the
        context-switch penalty.
        """
        if active_threads <= 0:
            return 0.0
        full = min(active_threads, self.physical_cores)
        smt = max(
            0, min(active_threads, self.logical_cores) - self.physical_cores
        )
        capacity = full + smt * self.smt_efficiency
        if active_threads > self.logical_cores:
            ratio = self.logical_cores / active_threads
            capacity *= ratio**self.context_switch_penalty
        return capacity

    def with_cores(self, logical_cores: int) -> "MachineProfile":
        """Restrict the machine to a subset of its cores.

        The paper varies "the available resource from 16 cores to 88
        cores" on the same host; physical cores shrink proportionally.
        """
        phys = max(
            1,
            int(round(self.physical_cores * logical_cores / self.logical_cores)),
        )
        phys = min(phys, logical_cores)
        return replace(
            self,
            name=f"{self.name}@{logical_cores}c",
            logical_cores=logical_cores,
            physical_cores=phys,
        )


def xeon_176() -> MachineProfile:
    """The paper's Xeon system: 176 logical cores (88 physical, HT x2)."""
    return MachineProfile(
        name="xeon",
        logical_cores=176,
        physical_cores=88,
        flops_per_second=4.0e9,
        memcpy_bytes_per_second=8.0e9,
        memory_bw_total_bytes_per_second=80.0e9,
        smt_efficiency=0.35,
    )


def power8_184() -> MachineProfile:
    """The paper's POWER8 system: 23 usable cores x 8-way SMT = 184.

    POWER8 has stronger SMT (8-way) but fewer physical cores; locks are
    slightly cheaper (L2-local CAS), copies slightly faster.
    """
    return MachineProfile(
        name="power8",
        logical_cores=184,
        physical_cores=23,
        flops_per_second=3.5e9,
        memcpy_bytes_per_second=10.0e9,
        lock_uncontended_s=20.0e-9,
        lock_contended_penalty_s=100.0e-9,
        memory_bw_total_bytes_per_second=90.0e9,
        smt_efficiency=0.55,
    )


def laptop(cores: int = 8) -> MachineProfile:
    """A small profile for examples and fast tests."""
    return MachineProfile(name="laptop", logical_cores=cores)
