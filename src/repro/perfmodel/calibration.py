"""Calibration: fit machine-profile constants against DES measurements.

The analytical model and the discrete-event engine share the same
:class:`MachineProfile` constants, but the model makes steady-state
approximations (fluid rates, expected contention) while the engine
executes discrete tuples.  Calibration quantifies the residual between
them and, where a systematic bias exists, fits a correction:

- :func:`validation_report` — run a suite of micro-configurations on
  both substrates and report per-configuration model/DES ratios; tests
  assert the ratios stay within a band and preserve ordering.
- :func:`fit_flops_rate` — recover the effective per-thread FLOP rate
  from DES runs of a serial chain (a self-consistency check: the fit
  must return approximately the configured constant).

This gives the repository an analogue of the sanity pass a systems
paper does before trusting a model: "the simulator and the model agree
where they must".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..des.engine import measure_throughput
from ..graph.model import StreamGraph
from ..graph.topologies import pipeline
from ..runtime.queues import QueuePlacement
from .machine import MachineProfile
from .throughput import PerformanceModel


@dataclass(frozen=True)
class ValidationRow:
    """One configuration measured on both substrates."""

    label: str
    des_throughput: float
    model_throughput: float

    @property
    def ratio(self) -> float:
        if self.model_throughput <= 0:
            return float("inf")
        return self.des_throughput / self.model_throughput


@dataclass(frozen=True)
class ValidationReport:
    rows: Tuple[ValidationRow, ...]

    @property
    def max_abs_log_ratio(self) -> float:
        import math

        return max(abs(math.log(r.ratio)) for r in self.rows)

    def ordering_preserved(self) -> bool:
        """True when DES and model rank the configurations identically.

        Near-ties (within 10 %) are not counted as ordering violations:
        both substrates carry noise of that magnitude.
        """
        for a in self.rows:
            for b in self.rows:
                if a.model_throughput > 1.1 * b.model_throughput:
                    if a.des_throughput < 0.9 * b.des_throughput:
                        return False
        return True


def _even_placement(graph: StreamGraph, k: int) -> QueuePlacement:
    eligible = [op.index for op in graph if not op.is_source]
    if k == 0:
        return QueuePlacement.empty()
    step = len(eligible) / k
    return QueuePlacement.of(eligible[int(i * step)] for i in range(k))


def validation_report(
    machine: MachineProfile,
    n_operators: int = 8,
    cost_flops: float = 2000.0,
    payload_bytes: int = 256,
    configs: Optional[Sequence[Tuple[int, int]]] = None,
    warmup_s: float = 0.004,
    measure_s: float = 0.02,
) -> ValidationReport:
    """Measure (queues, threads) configurations on both substrates."""
    if configs is None:
        configs = [(0, 0), (2, 2), (4, 3), (n_operators + 1, 4)]
    graph = pipeline(
        n_operators, cost_flops=cost_flops, payload_bytes=payload_bytes
    )
    model = PerformanceModel(graph, machine)
    rows: List[ValidationRow] = []
    for k, threads in configs:
        placement = (
            QueuePlacement.full(graph)
            if k > n_operators
            else _even_placement(graph, k)
        )
        des = measure_throughput(
            graph,
            machine,
            placement,
            threads,
            warmup_s=warmup_s,
            measure_s=measure_s,
        )
        rows.append(
            ValidationRow(
                label=f"q={placement.n_queues},t={threads}",
                des_throughput=des.sink_tuples_per_s,
                model_throughput=model.sink_throughput(
                    placement, threads
                ),
            )
        )
    return ValidationReport(rows=tuple(rows))


def fit_flops_rate(
    machine: MachineProfile,
    costs: Sequence[float] = (1000.0, 4000.0, 16000.0),
    n_operators: int = 4,
    measure_s: float = 0.02,
) -> float:
    """Estimate the per-thread FLOP rate from serial DES runs.

    A manual chain's per-tuple service time is
    ``total_flops / rate + fixed overheads``; running several chains
    with different total FLOPs and regressing service time on FLOPs
    recovers ``1 / rate`` as the slope.
    """
    xs = []
    ys = []
    for cost in costs:
        graph = pipeline(
            n_operators, cost_flops=cost, payload_bytes=16
        )
        result = measure_throughput(
            graph,
            machine,
            QueuePlacement.empty(),
            0,
            warmup_s=0.002,
            measure_s=measure_s,
        )
        total_flops = sum(op.cost_flops for op in graph)
        xs.append(total_flops)
        ys.append(1.0 / result.source_tuples_per_s)
    slope, _intercept = np.polyfit(np.array(xs), np.array(ys), 1)
    if slope <= 0:
        raise RuntimeError(
            "calibration failed: non-positive slope from DES samples"
        )
    return 1.0 / slope
