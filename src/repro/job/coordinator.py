"""The job-level coordinator: replica scaling + thread arbitration.

Two control loops run concurrently in a multi-PE job:

- **per PE**, the paper's §3.1–3.3 multi-level coordinator keeps
  adapting thread counts and queue placements inside each PE exactly
  as in a single-PE run — this module never touches that state;
- **per job**, this coordinator watches each elastic PE's offered-load
  utilization and decides the PE's *replica count* — the data-parallel
  width the partitioned inter-PE channels spread tuples over — and
  arbitrates a shared scheduler-thread budget across PEs.

Scaling rules (hysteresis mirrors the paper's SENS-band reasoning —
act only on persistent, unambiguous signals):

- **scale-out** (``JOB-SCALE-OUT``): the PE's representative replica
  admitted less than ``scale_out_util`` of its offered load — it is
  the bottleneck of its channel — and head-room remains
  (``replicas < max_replicas``).  If growing the job would exceed the
  thread budget, a ``JOB-ARB`` decision records the refusal instead.
- **scale-in** (``JOB-SCALE-IN``): the replica keeps up
  (utilization ≈ 1) *and* its threads sit mostly idle
  (``mean_util``), with enough slack that ``R-1`` replicas could
  absorb the hottest replica's load with margin — the ``R/(R-1)``
  head-room test.
- otherwise ``JOB-HOLD``.

Decisions are emitted with ``scope="job"`` into the shared hub, so
they interleave with — but remain filterable from — the per-PE R1–R5
traces.  A job with no elastic PEs emits no job decisions at all,
which keeps pass-through jobs' logs identical to the concatenation of
their PEs' standalone logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..obs.hub import Obs, ensure_hub


@dataclass(frozen=True)
class PeSummary:
    """One PE's observable state at a job-coordinator step."""

    name: str
    replicas: int
    max_replicas: int
    elastic: bool
    offered_utilization: float  # admitted/offered of the hot replica
    mean_utilization: float  # mean thread-busy fraction
    threads: int  # per-replica scheduler threads
    stable: bool  # the PE's own coordinator settled


@dataclass(frozen=True)
class JobAction:
    """Replica changes to apply before the next period."""

    set_replicas: Dict[str, int]
    changed: bool


class JobCoordinator:
    """Arbitrates replicas and threads across a job's PEs."""

    def __init__(
        self,
        obs: Optional[Obs] = None,
        scale_out_util: float = 0.95,
        scale_in_util: float = 0.99,
        scale_in_busy: float = 0.45,
        thread_budget: Optional[int] = None,
    ) -> None:
        self._obs = ensure_hub(obs)
        self.scale_out_util = scale_out_util
        self.scale_in_util = scale_in_util
        self.scale_in_busy = scale_in_busy
        self.thread_budget = thread_budget
        self._started = False

    # ------------------------------------------------------------------
    def _decide(self, rule: str, observed: float, note: str) -> None:
        self._obs.decision(
            component="job_coordinator",
            mode="job",
            rule=rule,
            detail="",
            observed=observed,
            trend="flat",
            history_hit=False,
            satisfaction=None,
            set_threads=None,
            set_n_queues=None,
            note=note,
            scope="job",
        )

    def _total_threads(self, summaries: Sequence[PeSummary]) -> int:
        return sum(s.threads * s.replicas for s in summaries)

    def step(
        self, summaries: Sequence[PeSummary], job_throughput: float
    ) -> JobAction:
        """One job-level adaptation step over the per-PE summaries.

        Returns the replica plan for the next period.  Emits at most
        one decision per elastic PE plus the initial ``JOB-INIT``;
        jobs without elastic PEs stay silent.
        """
        new_replicas = {s.name: s.replicas for s in summaries}
        elastic = [s for s in summaries if s.elastic]
        if not elastic:
            return JobAction(set_replicas=new_replicas, changed=False)
        if not self._started:
            self._started = True
            self._decide(
                "JOB-INIT",
                job_throughput,
                f"job up: {len(summaries)} PEs, "
                f"{len(elastic)} elastic",
            )
        changed = False
        total_threads = self._total_threads(summaries)
        for s in elastic:
            if (
                s.offered_utilization < self.scale_out_util
                and s.replicas < s.max_replicas
            ):
                added_threads = s.threads
                if (
                    self.thread_budget is not None
                    and total_threads + added_threads > self.thread_budget
                ):
                    self._decide(
                        "JOB-ARB",
                        s.offered_utilization,
                        f"{s.name}: scale-out to {s.replicas + 1} "
                        f"denied; thread budget "
                        f"{total_threads}+{added_threads}"
                        f">{self.thread_budget}",
                    )
                    continue
                new_replicas[s.name] = s.replicas + 1
                total_threads += added_threads
                changed = True
                self._decide(
                    "JOB-SCALE-OUT",
                    s.offered_utilization,
                    f"{s.name}: {s.replicas} -> {s.replicas + 1} "
                    f"replicas (admitted "
                    f"{s.offered_utilization:.2f} of offered)",
                )
            elif (
                s.replicas > 1
                and s.stable
                and s.offered_utilization >= self.scale_in_util
                # R-1 replicas must absorb the hot replica's load with
                # the same idle margin: busy * R/(R-1) stays in band.
                and s.mean_utilization
                * (s.replicas / (s.replicas - 1))
                < self.scale_in_busy
            ):
                new_replicas[s.name] = s.replicas - 1
                total_threads -= s.threads
                changed = True
                self._decide(
                    "JOB-SCALE-IN",
                    s.mean_utilization,
                    f"{s.name}: {s.replicas} -> {s.replicas - 1} "
                    f"replicas (busy {s.mean_utilization:.2f})",
                )
            else:
                self._decide(
                    "JOB-HOLD",
                    s.offered_utilization,
                    f"{s.name}: holding {s.replicas} replicas",
                )
        return JobAction(set_replicas=new_replicas, changed=changed)
