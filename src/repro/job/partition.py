"""Partition strategies: deterministic tuple routing across replicas.

An inter-PE channel fans one upstream stream out over the R replicas
of its downstream PE.  The router decides *which* replica(s) each
tuple reaches; the job executor only consumes two aggregates of that
decision:

- :meth:`Router.shares` — the long-run fraction of the stream each
  replica receives (the rate-coupling input: replica i's offered load
  is ``channel_rate * share_i``);
- :meth:`Router.route` — the per-tuple assignment, exposed so tests
  can pin routing determinism tuple by tuple.

Everything is seeded through blake2b (stable across processes and
Python versions, unlike ``hash()``), so a ``(strategy, replicas,
seed, key_space)`` quadruple always yields the same routing sequence
— the property the multi-PE regression tests depend on.

The strategy vocabulary mirrors Ray streaming's ``PStrategy`` /
Flink's partitioners (see the paper-adjacent references in
SNIPPETS.md): Forward, RoundRobin, Shuffle, KeyHash (ShuffleByKey),
Broadcast.  The enum itself lives in
:mod:`repro.scenarios.schema.PartitionStrategy` to keep the schema
free of job-layer imports.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from ..scenarios.schema import PartitionStrategy

# Sequence window over which empirical shuffle shares are measured.
# 1<<12 tuples per replica-count keeps the estimate within ~2% of the
# uniform 1/R limit while staying cheap to precompute.
_SHUFFLE_WINDOW = 4096


def _h64(seed: int, *parts: int) -> int:
    """Stable 64-bit hash of (seed, parts)."""
    payload = (",".join(str(p) for p in (seed,) + parts)).encode()
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big"
    )


class Router:
    """Base router: R replicas, seeded, deterministic."""

    def __init__(self, replicas: int, seed: int = 0) -> None:
        if replicas < 1:
            raise ValueError(f"router needs >= 1 replica, got {replicas}")
        self.replicas = replicas
        self.seed = seed

    def route(self, seq: int) -> Tuple[int, ...]:
        """Replica indices receiving tuple ``seq`` (0-based)."""
        raise NotImplementedError

    def shares(self) -> Tuple[float, ...]:
        """Long-run fraction of the stream each replica receives."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def max_share(self) -> float:
        """The hottest replica's share — what the representative
        (simulated) replica is offered."""
        return max(self.shares())

    @property
    def effective_replicas(self) -> float:
        """Aggregate capacity in units of the hottest replica.

        ``sum(shares) / max(shares)``: R for perfectly balanced
        strategies, lower under key skew — the factor scaling the
        simulated replica's emission up to the whole PE's.
        """
        shares = self.shares()
        return sum(shares) / max(shares)


class ForwardRouter(Router):
    """Pass-through: the 1:1 inter-PE edge (requires one replica)."""

    def __init__(self, replicas: int, seed: int = 0) -> None:
        if replicas != 1:
            raise ValueError(
                f"forward routing requires exactly 1 replica, got "
                f"{replicas}"
            )
        super().__init__(replicas, seed)

    def route(self, seq: int) -> Tuple[int, ...]:
        return (0,)

    def shares(self) -> Tuple[float, ...]:
        return (1.0,)


class RoundRobinRouter(Router):
    """Tuple ``i`` to replica ``i mod R`` — exact balance."""

    def route(self, seq: int) -> Tuple[int, ...]:
        return (seq % self.replicas,)

    def shares(self) -> Tuple[float, ...]:
        return (1.0 / self.replicas,) * self.replicas


class ShuffleRouter(Router):
    """Seeded hash of the sequence number — deterministic spraying.

    Shares are *measured* over a fixed window rather than assumed
    uniform, so the rate coupling sees the same small imbalance an
    actual run of the routing sequence would produce.
    """

    def __init__(self, replicas: int, seed: int = 0) -> None:
        super().__init__(replicas, seed)
        counts = [0] * replicas
        for seq in range(_SHUFFLE_WINDOW):
            counts[_h64(seed, seq) % replicas] += 1
        self._shares = tuple(c / _SHUFFLE_WINDOW for c in counts)

    def route(self, seq: int) -> Tuple[int, ...]:
        return (_h64(self.seed, seq) % self.replicas,)

    def shares(self) -> Tuple[float, ...]:
        return self._shares


class KeyHashRouter(Router):
    """Key-partitioned routing over a synthetic key space.

    The tuple key is itself derived deterministically from the
    sequence number (``key = h(seed+1, seq) mod key_space``) — the
    scenario layer has no real payloads to key on — and the replica is
    the key's hash bucket.  Shares are exact: each of the
    ``key_space`` keys carries equal weight, so a replica's share is
    the fraction of keys hashing to it.  Small key spaces give the
    skew that makes key partitioning interesting: with 16 keys over 8
    replicas some replica usually owns 3+ keys and becomes the
    hot spot that caps effective parallelism.
    """

    def __init__(
        self, replicas: int, seed: int = 0, key_space: int = 1024
    ) -> None:
        super().__init__(replicas, seed)
        if key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {key_space}")
        self.key_space = key_space
        counts = [0] * replicas
        for key in range(key_space):
            counts[_h64(seed, key) % replicas] += 1
        self._shares = tuple(c / key_space for c in counts)

    def key_of(self, seq: int) -> int:
        return _h64(self.seed + 1, seq) % self.key_space

    def route(self, seq: int) -> Tuple[int, ...]:
        return (_h64(self.seed, self.key_of(seq)) % self.replicas,)

    def shares(self) -> Tuple[float, ...]:
        return self._shares


class BroadcastRouter(Router):
    """Every replica receives every tuple."""

    def route(self, seq: int) -> Tuple[int, ...]:
        return tuple(range(self.replicas))

    def shares(self) -> Tuple[float, ...]:
        return (1.0,) * self.replicas


def make_router(
    strategy: PartitionStrategy,
    replicas: int,
    seed: int = 0,
    key_space: int = 1024,
) -> Router:
    """Build the router for one inter-PE channel."""
    if strategy is PartitionStrategy.FORWARD:
        return ForwardRouter(replicas, seed)
    if strategy is PartitionStrategy.ROUND_ROBIN:
        return RoundRobinRouter(replicas, seed)
    if strategy is PartitionStrategy.SHUFFLE:
        return ShuffleRouter(replicas, seed)
    if strategy is PartitionStrategy.KEY_HASH:
        return KeyHashRouter(replicas, seed, key_space)
    if strategy is PartitionStrategy.BROADCAST:
        return BroadcastRouter(replicas, seed)
    raise AssertionError(f"unhandled strategy {strategy}")
