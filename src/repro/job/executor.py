"""Lockstep multi-PE adaptation over the tuple-level DES.

The :class:`JobAdaptationRunner` drives one
:class:`~repro.des.adaptation.DesAdaptationRunner` per PE of a
:class:`~repro.job.graph.JobGraph` through the *same* sequence of
adaptation periods, coupling them through the job's channels:

- every PE keeps its own multi-level coordinator (its own seed,
  derived as ``config.seed + 17*i`` in PE topological order — the
  :mod:`repro.runtime.job` idiom — so PEs never share random
  decisions) and publishes into the shared hub through a
  ``pe.<name>`` scope;
- each period runs in PE-topological order: before a PE's period, its
  ingress pseudo-sources get a derived *constant-rate* arrival
  schedule equal to the upstream PE's measured emission split by the
  channel's partition routing — the hottest replica's share, since
  the simulated replica stands in for the hottest one;
- ``forward`` channels do no rate shaping at all: the downstream PE
  runs saturated closed-loop, byte-identical to a standalone run of
  its extracted subgraph (the multi-PE equivalence tests pin this);
- after all PEs step, the :class:`~repro.job.coordinator.
  JobCoordinator` scales elastic PEs' replica counts out/in from
  their offered-load utilization, under an optional job-wide thread
  budget.

Replication model: one **representative replica** per PE is actually
simulated — the hottest one, offered ``channel_rate * max_share``.
The PE's aggregate emission is the replica's measured emission times
the channel's ``effective_replicas`` (``sum(shares)/max(shares)``):
when every replica keeps up emission is proportional to share, and
when the hottest saturates the cooler replicas still keep up, so the
hottest is the binding constraint either way.  This keeps a job with
8-way replication as cheap to simulate as its single-replica version
while preserving the skew effects that make partitioning interesting
(a key-hash hot spot caps effective parallelism below R).

PEs step in topological order inside each period, so an upstream
emission is already measured by the time its consumer's schedule is
derived — shaped channels couple from the very first period.  Derived
rates are quantized to 4 significant digits so the measurement
memoizer sees stable keys across periods that converged to the same
coupling.

Parallel execution (``jobs > 1``): PEs whose ingress schedules are
mutually independent this period — the same channel-topology wave,
i.e. every shaped upstream already measured in an earlier wave —
dispatch concurrently to a sticky :class:`~repro.runtime.pool.
WorkerPool`.  Each worker owns its PEs' runners for the whole run
(simulator and coordinator state never pickle between periods; only
ingress rates out and small report records back), and the parent
re-homes every worker-side decision, metric and memo cell in
deterministic PE order at the end of the period, so a parallel run is
byte-identical to a sequential one.  ``forward`` jobs have no
coupling at all, so every PE lands in one wave.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..bench import cache
from ..core.warmstart import PhaseRecord, PhaseStore, WarmStartSpec
from ..des.adaptation import DesAdaptationResult, DesAdaptationRunner
from ..des.channels import ChannelConfig
from ..obs.hub import Obs, ensure_hub
from ..obs.scope import scoped
from ..perfmodel.machine import MachineProfile
from ..runtime.config import RuntimeConfig
from ..runtime.events import AdaptationTrace, Observation
from ..runtime.pool import POOL_START_ERRORS, WorkerPoolError, job_workers
from ..scenarios.arrivals import ArrivalProcess
from ..scenarios.schema import ArrivalKind, ArrivalSpec, PartitionStrategy
from .coordinator import JobCoordinator, PeSummary
from .graph import JobGraph, PeSubgraph
from .partition import Router, make_router

# Seed stride between PE coordinators (matches repro.runtime.job).
_PE_SEED_STRIDE = 17
# Seed stride between channel routers.
_CHANNEL_SEED_STRIDE = 1_000_003


def _quantize(rate: float) -> float:
    """4 significant digits: stable cache keys, sub-SENS rate error."""
    return float(f"{rate:.4g}")


# ----------------------------------------------------------------------
# Per-PE construction and arrival plumbing, shared with the pool
# workers (repro.job.parallel): a worker must build *exactly* the
# runner the parent would, from the same picklable ingredients, or the
# byte-identity guarantee breaks.
# ----------------------------------------------------------------------
def pe_seed(config: RuntimeConfig, index: int) -> int:
    """Seed of the ``index``-th PE (topological order)."""
    return config.seed + _PE_SEED_STRIDE * index


def real_source_factory(job: JobGraph, arrivals_factory, pe: PeSubgraph):
    """Scenario open-loop arrivals, re-keyed from full-graph source
    indices to this PE's subgraph indices."""
    if arrivals_factory is None:
        return None
    full = job.full_graph
    mapping = []  # (full_index, sub_index)
    for op in pe.graph.sources:
        if op.name.startswith("in:"):
            continue
        mapping.append((full.by_name(op.name).index, op.index))
    if not mapping:
        return None

    def pe_factory(t0: float):
        streams = arrivals_factory(t0)
        return {
            sub_idx: streams[full_idx]
            for full_idx, sub_idx in mapping
            if full_idx in streams
        }

    return pe_factory


def real_source_key(
    arrivals_factory, arrivals_key: Optional[Tuple], pe: PeSubgraph
) -> Optional[Tuple]:
    if arrivals_factory is None or arrivals_key is None:
        return None
    if not any(
        not op.name.startswith("in:") for op in pe.graph.sources
    ):
        return None
    return ("job-real", pe.name, arrivals_key)


def derived_arrivals(
    pe: PeSubgraph,
    seed: int,
    rates: Optional[Dict[int, float]],
    real_factory,
    real_key: Optional[Tuple],
):
    """This period's arrival schedule for one PE: derived constant-rate
    streams on the ingress pseudo-sources, merged with any real-source
    scenario arrivals.  Returns ``(factory, cache_key)``."""
    if rates is None:
        return real_factory, real_key
    procs = {
        idx: ArrivalProcess(
            ArrivalSpec(kind=ArrivalKind.DETERMINISTIC, rate=rate),
            seed=seed + idx,
        )
        for idx, rate in rates.items()
        if rate > 0.0
    }

    def factory(t0: float):
        streams = {
            idx: proc.arrival_stream(t0)
            for idx, proc in procs.items()
        }
        if real_factory is not None:
            streams.update(real_factory(t0))
        return streams

    key: Tuple = (
        "job-ingress",
        pe.name,
        tuple(sorted(rates.items())),
    )
    if real_key is not None:
        key += (real_key,)
    return factory, key


def build_pe_runner(
    job: JobGraph,
    machine: MachineProfile,
    config: RuntimeConfig,
    index: int,
    pe: PeSubgraph,
    runner_kwargs: Dict,
    arrivals_factory,
    arrivals_key: Optional[Tuple],
    obs: Optional[Obs],
) -> DesAdaptationRunner:
    """One PE's runner, identical whether built in the parent or in a
    pool worker (given the same picklable arguments)."""
    pe_config = replace(config, seed=pe_seed(config, index))
    return DesAdaptationRunner(
        pe.graph,
        machine,
        pe_config,
        obs=scoped(obs, f"pe.{pe.name}"),
        arrivals_factory=real_source_factory(job, arrivals_factory, pe),
        arrivals_key=real_source_key(arrivals_factory, arrivals_key, pe),
        **runner_kwargs,
    )


@dataclass(frozen=True)
class JobAdaptationResult:
    """Outcome of a multi-PE elastic run.

    Satisfies the :class:`~repro.runtime.backend.AdaptationBackend`
    result shape: ``final_threads``/``final_n_queues`` aggregate over
    PEs (replica-weighted), ``converged_throughput`` is the job's
    real-sink emission.
    """

    trace: AdaptationTrace
    pe_results: Dict[str, DesAdaptationResult]
    final_replicas: Dict[str, int]
    final_threads: int
    final_n_queues: int
    converged_throughput: float


class JobAdaptationRunner:
    """Runs a job graph's PEs in lockstep adaptation periods."""

    def __init__(
        self,
        job: JobGraph,
        machine: MachineProfile,
        config: Optional[RuntimeConfig] = None,
        warmup_s: float = 0.002,
        measure_s: float = 0.01,
        queue_capacity: int = 16,
        profile_from_execution: bool = False,
        sampled_profiling: bool = True,
        obs: Optional[Obs] = None,
        arrivals_factory=None,  # full-graph t0 -> {source_index: iter}
        arrivals_key: Optional[Tuple] = None,
        overflow: str = "block",
        channel: Optional[ChannelConfig] = None,
        thread_budget: Optional[int] = None,
        jobs: Optional[int] = None,
        warm_start: Optional[WarmStartSpec] = None,
    ) -> None:
        self.job = job
        self.machine = machine
        self.config = config if config is not None else RuntimeConfig()
        self._hub = ensure_hub(obs)
        self._arrivals_factory = arrivals_factory
        self._arrivals_key = arrivals_key
        # Worker-pool width: the ``jobs`` argument (e.g. the CLI's
        # ``--jobs``) wins, then REPRO_JOB_WORKERS, then 1 (sequential).
        self.jobs = job_workers(jobs)
        # The warm-start spec rides inside runner_kwargs, so per-PE
        # runners built parent-side AND in pool workers seed their
        # coordinators identically (the spec is picklable by design).
        self._warm_spec = warm_start
        self._runner_kwargs = dict(
            warmup_s=warmup_s,
            measure_s=measure_s,
            queue_capacity=queue_capacity,
            profile_from_execution=profile_from_execution,
            sampled_profiling=sampled_profiling,
            overflow=overflow,
            channel=channel,
            warm_start=warm_start,
        )
        # JOB-level posterior: converged replica counts per phase.
        self._job_store = self._make_job_store()
        self._job_recorded = False
        self.coordinator = JobCoordinator(
            obs=self._hub, thread_budget=thread_budget
        )
        self.replicas: Dict[str, int] = {
            pe.name: pe.replicas for pe in job.pes
        }
        self.runners: Dict[str, DesAdaptationRunner] = {}
        self._pe_seeds: Dict[str, int] = {}
        for i, pe in enumerate(job.pes):
            self._pe_seeds[pe.name] = pe_seed(self.config, i)
            self.runners[pe.name] = build_pe_runner(
                job,
                machine,
                self.config,
                i,
                pe,
                self._runner_kwargs,
                arrivals_factory,
                arrivals_key,
                self._hub,
            )
        self._routers: Dict[int, Router] = {}
        self._rebuild_routers()
        # Aggregate emission (tuples/s over all sinks x all replicas)
        # per PE, from the most recent period; None = not yet measured.
        self._emission: Dict[str, Optional[float]] = {
            pe.name: None for pe in job.pes
        }
        # Total ingress rate installed on each PE this period (None =
        # ran saturated).  The engine's offered_utilization is blind
        # under ``block`` overflow — a backpressured source stops
        # pulling the schedule, so offered ≈ admitted ≈ 1.0 — but the
        # executor *chose* the offered rate, so admitted/installed is
        # the honest utilization either way.
        self._installed_rate: Dict[str, Optional[float]] = {
            pe.name: None for pe in job.pes
        }
        # Per-PE coordinator stability as of the last completed period
        # (mirrored from worker reports in parallel mode).
        self._pe_stable: Dict[str, bool] = {}
        self.trace = AdaptationTrace.empty()
        # Live parallel session while run() drives a worker pool, and
        # the per-PE results it fetched at the end of the run.
        self._session = None
        self._pe_results: Optional[Dict[str, DesAdaptationResult]] = None

    # ------------------------------------------------------------------
    # warm start
    # ------------------------------------------------------------------
    def set_warm_start(self, spec: Optional[WarmStartSpec]) -> None:
        """Install (or clear) warm-start on every per-PE runner and on
        the job-level replica posterior.  Updates ``_runner_kwargs`` so
        pool workers spawned later build identically-seeded runners."""
        self._warm_spec = spec
        self._runner_kwargs["warm_start"] = spec
        for runner in self.runners.values():
            runner.set_warm_start(spec)
        self._job_store = self._make_job_store()

    def _make_job_store(self) -> Optional[PhaseStore]:
        spec = self._warm_spec
        if spec is None or spec.mode not in ("history", "auto"):
            return None
        return PhaseStore(spec.store_dir)

    def _job_phase_key(self) -> str:
        """Fingerprint of (job topology, machine, config): the key the
        converged replica assignment is remembered under.  Replica
        counts are a coarse knob, so the job-level phase token is
        constant — per-PE stores carry the workload-phase dimension."""
        pes = tuple(
            (
                pe.name,
                cache.graph_fingerprint(pe.graph),
                pe.replicas,
                pe.max_replicas,
                pe.elastic,
            )
            for pe in self.job.pes
        )
        channels = tuple(
            (c.src_pe, c.dst_pe, c.dst_source, c.weight)
            for c in self.job.channels
        )
        return cache.fingerprint(
            "warm-job",
            pes,
            channels,
            self.job.partition.strategy.value,
            cache.machine_fingerprint(self.machine),
            cache.config_fingerprint(self.config),
        )

    def _maybe_warm_replicas(self) -> None:
        """Posterior snap-back at the JOB level: restore the converged
        replica assignment recorded for this (job, machine, config)."""
        if self._job_store is None:
            return
        record = self._job_store.lookup(self._job_phase_key())
        if record is None or not record.replicas:
            return
        by_name = {pe.name: pe for pe in self.job.pes}
        changed = False
        for name, count in record.replicas:
            pe = by_name.get(name)
            if pe is None or not pe.elastic:
                continue
            count = max(1, min(pe.max_replicas, int(count)))
            if self.replicas[name] != count:
                self.replicas[name] = count
                changed = True
        if changed:
            self._rebuild_routers()
            self._hub.registry.counter(
                "warmstart.job_replica_hits",
                "job-level warm replica restores",
            ).inc()

    def _record_job_point(self, job_throughput: float) -> None:
        self._job_recorded = True
        total = self._total_threads()
        self._job_store.record(
            self._job_phase_key(),
            PhaseRecord(
                threads=total,
                queued=(),
                throughput=job_throughput,
                thread_range=(total, total),
                replicas=tuple(sorted(self.replicas.items())),
            ),
        )

    # ------------------------------------------------------------------
    # arrival plumbing
    # ------------------------------------------------------------------
    def _real_source_factory(self, pe: PeSubgraph):
        return real_source_factory(self.job, self._arrivals_factory, pe)

    def _real_source_key(self, pe: PeSubgraph) -> Optional[Tuple]:
        return real_source_key(
            self._arrivals_factory, self._arrivals_key, pe
        )

    def _router_seed(self, channel_index: int) -> int:
        base = self.job.partition.seed
        if base is None:
            base = self.config.seed
        return base + _CHANNEL_SEED_STRIDE * channel_index

    def _rebuild_routers(self) -> None:
        """(Re)build one router per channel against the destination
        PE's *current* replica count."""
        for i, c in enumerate(self.job.channels):
            self._routers[i] = make_router(
                self.job.partition.strategy,
                self.replicas[c.dst_pe],
                seed=self._router_seed(i),
                key_space=self.job.partition.key_space,
            )

    def _ingress_schedule(
        self, pe: PeSubgraph
    ) -> Tuple[Optional[Dict[int, float]], float]:
        """Per-ingress offered rates for the representative replica.

        Returns ``(rates, effective_replicas)``.  ``rates`` is None
        when the PE runs saturated this period: pass-through
        (forward) channels never shape, and shaped channels cannot
        before their upstream has been measured once.
        """
        effective = float(self.replicas[pe.name])
        if self.job.partition.strategy is PartitionStrategy.FORWARD:
            return None, effective
        rates: Dict[int, float] = {}
        for i, c in enumerate(self.job.channels):
            if c.dst_pe != pe.name:
                continue
            upstream = self._emission[c.src_pe]
            if upstream is None:
                return None, effective
            router = self._routers[i]
            effective = min(effective, router.effective_replicas)
            idx = pe.ingress_index(c.dst_source)
            rate = _quantize(upstream * c.weight * router.max_share)
            rates[idx] = rates.get(idx, 0.0) + rate
        if not rates:
            return None, effective
        return rates, effective

    def _install_arrivals(
        self, pe: PeSubgraph, rates: Optional[Dict[int, float]]
    ) -> None:
        """Point the PE's runner at this period's arrival schedule."""
        factory, key = derived_arrivals(
            pe,
            self._pe_seeds[pe.name],
            rates,
            self._real_source_factory(pe),
            self._real_source_key(pe),
        )
        self.runners[pe.name].set_arrivals(factory, key)

    # ------------------------------------------------------------------
    # parallel dispatch topology
    # ------------------------------------------------------------------
    def _waves(self) -> Tuple[Tuple[PeSubgraph, ...], ...]:
        """PEs grouped into concurrently-dispatchable waves.

        A PE's ingress schedule for period ``k`` is fixed as soon as
        every shaped upstream has been measured *this* period, so a
        wave is one channel-topology layer: all its members' derived
        rates are already quantized and installed by the time it
        dispatches.  ``forward`` jobs never shape, so every PE's
        schedule is fixed a priori — one wave, maximal parallelism.
        """
        if (
            self.job.partition.strategy is PartitionStrategy.FORWARD
            or not self.job.channels
        ):
            return (tuple(self.job.pes),)
        depth: Dict[str, int] = {}
        for pe in self.job.pes:  # topological order
            incoming = self.job.channels_into(pe.name)
            depth[pe.name] = 1 + max(
                (depth[c.src_pe] for c in incoming), default=-1
            )
        waves: List[Tuple[PeSubgraph, ...]] = []
        for level in range(max(depth.values()) + 1):
            wave = tuple(
                pe for pe in self.job.pes if depth[pe.name] == level
            )
            if wave:
                waves.append(wave)
        return tuple(waves)

    def _start_session(self):
        """Spin up the sticky worker pool, or None for the sequential
        path (requested width < 2, or pool infrastructure unavailable
        in this environment — same graceful degradation as
        :func:`repro.runtime.pool.run_cells`)."""
        n_workers = min(self.jobs, len(self.job.pes))
        if n_workers < 2:
            return None
        from .parallel import JobWorkerSession

        try:
            return JobWorkerSession(
                job=self.job,
                machine=self.machine,
                config=self.config,
                runner_kwargs=self._runner_kwargs,
                arrivals_factory=self._arrivals_factory,
                arrivals_key=self._arrivals_key,
                detached=not self._hub.enabled,
                n_workers=n_workers,
            )
        except POOL_START_ERRORS + (WorkerPoolError,):
            # A worker that cannot even construct its runners points
            # at the environment, not the workload: the sequential
            # path re-runs the same construction in-process, so a
            # genuine bug resurfaces there with a plain traceback.
            return None

    # ------------------------------------------------------------------
    # the lockstep loop
    # ------------------------------------------------------------------
    def step_period(self, k: int) -> float:
        """Run adaptation period ``k`` across every PE, couple the
        channels, then take one job-coordinator step.  Returns the
        job throughput observed this period."""
        period_s = self.config.elasticity.adaptation_period_s
        self._hub.tick(k * period_s)
        if self._session is not None:
            reports = self._period_parallel(k)
        else:
            reports = self._period_sequential(k)
        # Ordered pass: re-home worker-side effects and build the
        # coordinator's view in deterministic PE order, so the merged
        # decision log is identical however the period executed.
        job_throughput = 0.0
        summaries: List[PeSummary] = []
        for pe in self.job.pes:
            rep = reports[pe.name]
            if self._session is not None:
                self._absorb_report(pe, rep)
            job_throughput += (
                rep["observed"]
                * rep["effective"]
                * pe.real_sink_weight()
            )
            summaries.append(
                PeSummary(
                    name=pe.name,
                    replicas=self.replicas[pe.name],
                    max_replicas=pe.max_replicas,
                    elastic=pe.elastic,
                    offered_utilization=self._offered_utilization(
                        pe.name, rep
                    ),
                    mean_utilization=rep["mean_util"],
                    threads=rep["threads"],
                    stable=rep["stable"],
                )
            )
            self._pe_stable[pe.name] = rep["stable"]
        action = self.coordinator.step(summaries, job_throughput)
        if action.changed:
            self.replicas.update(action.set_replicas)
            self._rebuild_routers()
        self._job_changed = action.changed
        if (
            self._job_store is not None
            and not self._job_recorded
            and self.is_stable
        ):
            self._record_job_point(job_throughput)
        self.trace.observations.append(
            Observation(
                time_s=k * period_s,
                throughput=job_throughput,
                true_throughput=job_throughput,
                threads=self._total_threads(),
                n_queues=self._total_queues(),
                mode="job",
            )
        )
        return job_throughput

    def _period_sequential(self, k: int) -> Dict[str, Dict]:
        """One period, PE by PE in topological order (classic path)."""
        reports: Dict[str, Dict] = {}
        for pe in self.job.pes:
            runner = self.runners[pe.name]
            rates, effective = self._ingress_schedule(pe)
            self._install_arrivals(pe, rates)
            self._installed_rate[pe.name] = (
                sum(rates.values()) if rates else None
            )
            observed = runner.step_period(k)
            self._emission[pe.name] = observed * effective
            reports[pe.name] = {
                "observed": observed,
                "effective": effective,
                "threads": runner.threads,
                "stable": runner.coordinator.is_stable,
                "offered_util": runner.last_offered_utilization,
                "mean_util": runner.last_mean_utilization,
                "source_rate": runner.last_source_rate,
            }
        return reports

    def _period_parallel(self, k: int) -> Dict[str, Dict]:
        """One period, fanning each wave across the worker pool.

        Emission updates happen as each wave collects, so the next
        wave's derived rates see exactly what the sequential loop
        would have; everything hub-visible inside the reports is
        deferred to the ordered pass in :meth:`step_period`.
        """
        session = self._session
        reports: Dict[str, Dict] = {}
        for wave in self._wave_list:
            dispatched = []
            for pe in wave:
                rates, effective = self._ingress_schedule(pe)
                self._installed_rate[pe.name] = (
                    sum(rates.values()) if rates else None
                )
                session.submit_step(pe.name, k, rates)
                dispatched.append((pe, effective))
            for pe, effective in dispatched:
                rep = session.collect_step(pe.name)
                rep["effective"] = effective
                self._emission[pe.name] = rep["observed"] * effective
                reports[pe.name] = rep
        return reports

    def _absorb_report(self, pe: PeSubgraph, rep: Dict) -> None:
        """Re-home one worker report into the parent's state: replay
        decisions (the parent hub's clock assigns seq/period), merge
        scoped metric states, install fresh memo cells, and mirror the
        runner attributes other layers read."""
        for fields in rep["decisions"]:
            self._hub.decision(**fields)
        if rep["metrics"] and self._hub.enabled:
            self._hub.registry.merge_state(rep["metrics"])
        if rep["cache"]:
            cache.install(rep["cache"])
        runner = self.runners[pe.name]
        runner.threads = rep["threads"]
        runner.placement = rep["placement"]
        runner.last_offered_utilization = rep["offered_util"]
        runner.last_mean_utilization = rep["mean_util"]
        runner.last_source_rate = rep["source_rate"]
        runner.sim_events = rep["sim_events"]

    def _offered_utilization(self, pe_name: str, rep: Dict) -> float:
        """Offered-load utilization of the PE's hot replica.

        When the executor installed a derived ingress rate, the
        admitted-over-installed ratio is authoritative (the engine's
        own figure saturates at ~1.0 under ``block`` backpressure);
        otherwise fall through to the engine's measurement.
        """
        installed = self._installed_rate[pe_name]
        util = rep["offered_util"]
        if installed is not None and installed > 0.0:
            util = min(util, rep["source_rate"] / installed)
        return min(1.0, util)

    def _total_threads(self) -> int:
        return sum(
            self.runners[pe.name].threads * self.replicas[pe.name]
            for pe in self.job.pes
        )

    def _total_queues(self) -> int:
        return sum(
            self.runners[pe.name].placement.n_queues
            * self.replicas[pe.name]
            for pe in self.job.pes
        )

    @property
    def is_stable(self) -> bool:
        """All PE coordinators settled and the job loop held still."""
        if len(self._pe_stable) < len(self.job.pes):
            return False
        return all(self._pe_stable.values()) and not getattr(
            self, "_job_changed", False
        )

    def run(
        self,
        max_periods: Optional[int] = None,
        stop_after_stable_periods: Optional[int] = 8,
    ) -> JobAdaptationResult:
        """Drive the lockstep loop (the
        :class:`~repro.runtime.backend.AdaptationBackend` surface)."""
        if max_periods is None:
            max_periods = 120
        self.trace = AdaptationTrace.empty()
        self._pe_results = None
        self._pe_stable = {}
        self._job_recorded = False
        self._maybe_warm_replicas()
        self._session = self._start_session()
        try:
            if self._session is None:
                for runner in self.runners.values():
                    runner.begin_run()
            else:
                self._wave_list = self._waves()
                self._session.begin()
            stable_streak = 0
            for k in range(1, max_periods + 1):
                self.step_period(k)
                if stop_after_stable_periods is not None:
                    if self.is_stable:
                        stable_streak += 1
                        if stable_streak >= stop_after_stable_periods:
                            break
                    else:
                        stable_streak = 0
            if self._session is not None:
                self._pe_results = self._session.finish()
        finally:
            if self._session is not None:
                self._session.close()
                self._session = None
        return self.result()

    def result(self) -> JobAdaptationResult:
        if self._pe_results is not None:
            pe_results = dict(self._pe_results)
        else:
            pe_results = {
                name: runner.result()
                for name, runner in self.runners.items()
            }
        return JobAdaptationResult(
            trace=self.trace,
            pe_results=pe_results,
            final_replicas=dict(self.replicas),
            final_threads=self._total_threads(),
            final_n_queues=self._total_queues(),
            converged_throughput=self.trace.final_throughput(window=4),
        )
