"""Lockstep multi-PE adaptation over the tuple-level DES.

The :class:`JobAdaptationRunner` drives one
:class:`~repro.des.adaptation.DesAdaptationRunner` per PE of a
:class:`~repro.job.graph.JobGraph` through the *same* sequence of
adaptation periods, coupling them through the job's channels:

- every PE keeps its own multi-level coordinator (its own seed,
  derived as ``config.seed + 17*i`` in PE topological order — the
  :mod:`repro.runtime.job` idiom — so PEs never share random
  decisions) and publishes into the shared hub through a
  ``pe.<name>`` scope;
- each period runs in PE-topological order: before a PE's period, its
  ingress pseudo-sources get a derived *constant-rate* arrival
  schedule equal to the upstream PE's measured emission split by the
  channel's partition routing — the hottest replica's share, since
  the simulated replica stands in for the hottest one;
- ``forward`` channels do no rate shaping at all: the downstream PE
  runs saturated closed-loop, byte-identical to a standalone run of
  its extracted subgraph (the multi-PE equivalence tests pin this);
- after all PEs step, the :class:`~repro.job.coordinator.
  JobCoordinator` scales elastic PEs' replica counts out/in from
  their offered-load utilization, under an optional job-wide thread
  budget.

Replication model: one **representative replica** per PE is actually
simulated — the hottest one, offered ``channel_rate * max_share``.
The PE's aggregate emission is the replica's measured emission times
the channel's ``effective_replicas`` (``sum(shares)/max(shares)``):
when every replica keeps up emission is proportional to share, and
when the hottest saturates the cooler replicas still keep up, so the
hottest is the binding constraint either way.  This keeps a job with
8-way replication as cheap to simulate as its single-replica version
while preserving the skew effects that make partitioning interesting
(a key-hash hot spot caps effective parallelism below R).

PEs step in topological order inside each period, so an upstream
emission is already measured by the time its consumer's schedule is
derived — shaped channels couple from the very first period.  Derived
rates are quantized to 4 significant digits so the measurement
memoizer sees stable keys across periods that converged to the same
coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..des.adaptation import DesAdaptationResult, DesAdaptationRunner
from ..des.channels import ChannelConfig
from ..obs.hub import Obs, ensure_hub
from ..obs.scope import scoped
from ..perfmodel.machine import MachineProfile
from ..runtime.config import RuntimeConfig
from ..runtime.events import AdaptationTrace, Observation
from ..scenarios.arrivals import ArrivalProcess
from ..scenarios.schema import ArrivalKind, ArrivalSpec, PartitionStrategy
from .coordinator import JobCoordinator, PeSummary
from .graph import JobGraph, PeSubgraph
from .partition import Router, make_router

# Seed stride between PE coordinators (matches repro.runtime.job).
_PE_SEED_STRIDE = 17
# Seed stride between channel routers.
_CHANNEL_SEED_STRIDE = 1_000_003


def _quantize(rate: float) -> float:
    """4 significant digits: stable cache keys, sub-SENS rate error."""
    return float(f"{rate:.4g}")


@dataclass(frozen=True)
class JobAdaptationResult:
    """Outcome of a multi-PE elastic run.

    Satisfies the :class:`~repro.runtime.backend.AdaptationBackend`
    result shape: ``final_threads``/``final_n_queues`` aggregate over
    PEs (replica-weighted), ``converged_throughput`` is the job's
    real-sink emission.
    """

    trace: AdaptationTrace
    pe_results: Dict[str, DesAdaptationResult]
    final_replicas: Dict[str, int]
    final_threads: int
    final_n_queues: int
    converged_throughput: float


class JobAdaptationRunner:
    """Runs a job graph's PEs in lockstep adaptation periods."""

    def __init__(
        self,
        job: JobGraph,
        machine: MachineProfile,
        config: Optional[RuntimeConfig] = None,
        warmup_s: float = 0.002,
        measure_s: float = 0.01,
        queue_capacity: int = 16,
        profile_from_execution: bool = False,
        sampled_profiling: bool = True,
        obs: Optional[Obs] = None,
        arrivals_factory=None,  # full-graph t0 -> {source_index: iter}
        arrivals_key: Optional[Tuple] = None,
        overflow: str = "block",
        channel: Optional[ChannelConfig] = None,
        thread_budget: Optional[int] = None,
    ) -> None:
        self.job = job
        self.machine = machine
        self.config = config if config is not None else RuntimeConfig()
        self._hub = ensure_hub(obs)
        self._arrivals_factory = arrivals_factory
        self._arrivals_key = arrivals_key
        self.coordinator = JobCoordinator(
            obs=self._hub, thread_budget=thread_budget
        )
        self.replicas: Dict[str, int] = {
            pe.name: pe.replicas for pe in job.pes
        }
        self.runners: Dict[str, DesAdaptationRunner] = {}
        self._pe_seeds: Dict[str, int] = {}
        for i, pe in enumerate(job.pes):
            pe_config = replace(
                self.config, seed=self.config.seed + _PE_SEED_STRIDE * i
            )
            self._pe_seeds[pe.name] = pe_config.seed
            self.runners[pe.name] = DesAdaptationRunner(
                pe.graph,
                machine,
                pe_config,
                warmup_s=warmup_s,
                measure_s=measure_s,
                queue_capacity=queue_capacity,
                profile_from_execution=profile_from_execution,
                sampled_profiling=sampled_profiling,
                obs=scoped(self._hub, f"pe.{pe.name}"),
                arrivals_factory=self._real_source_factory(pe),
                arrivals_key=self._real_source_key(pe),
                overflow=overflow,
                channel=channel,
            )
        self._routers: Dict[int, Router] = {}
        self._rebuild_routers()
        # Aggregate emission (tuples/s over all sinks x all replicas)
        # per PE, from the most recent period; None = not yet measured.
        self._emission: Dict[str, Optional[float]] = {
            pe.name: None for pe in job.pes
        }
        # Total ingress rate installed on each PE this period (None =
        # ran saturated).  The engine's offered_utilization is blind
        # under ``block`` overflow — a backpressured source stops
        # pulling the schedule, so offered ≈ admitted ≈ 1.0 — but the
        # executor *chose* the offered rate, so admitted/installed is
        # the honest utilization either way.
        self._installed_rate: Dict[str, Optional[float]] = {
            pe.name: None for pe in job.pes
        }
        self.trace = AdaptationTrace.empty()

    # ------------------------------------------------------------------
    # arrival plumbing
    # ------------------------------------------------------------------
    def _real_source_factory(self, pe: PeSubgraph):
        """Scenario open-loop arrivals, re-keyed from full-graph source
        indices to this PE's subgraph indices."""
        if self._arrivals_factory is None:
            return None
        full = self.job.full_graph
        mapping = []  # (full_index, sub_index)
        for op in pe.graph.sources:
            if op.name.startswith("in:"):
                continue
            mapping.append((full.by_name(op.name).index, op.index))
        if not mapping:
            return None
        factory = self._arrivals_factory

        def pe_factory(t0: float):
            streams = factory(t0)
            return {
                sub_idx: streams[full_idx]
                for full_idx, sub_idx in mapping
                if full_idx in streams
            }

        return pe_factory

    def _real_source_key(self, pe: PeSubgraph) -> Optional[Tuple]:
        if self._arrivals_factory is None or self._arrivals_key is None:
            return None
        if not any(
            not op.name.startswith("in:") for op in pe.graph.sources
        ):
            return None
        return ("job-real", pe.name, self._arrivals_key)

    def _router_seed(self, channel_index: int) -> int:
        base = self.job.partition.seed
        if base is None:
            base = self.config.seed
        return base + _CHANNEL_SEED_STRIDE * channel_index

    def _rebuild_routers(self) -> None:
        """(Re)build one router per channel against the destination
        PE's *current* replica count."""
        for i, c in enumerate(self.job.channels):
            self._routers[i] = make_router(
                self.job.partition.strategy,
                self.replicas[c.dst_pe],
                seed=self._router_seed(i),
                key_space=self.job.partition.key_space,
            )

    def _ingress_schedule(
        self, pe: PeSubgraph
    ) -> Tuple[Optional[Dict[int, float]], float]:
        """Per-ingress offered rates for the representative replica.

        Returns ``(rates, effective_replicas)``.  ``rates`` is None
        when the PE runs saturated this period: pass-through
        (forward) channels never shape, and shaped channels cannot
        before their upstream has been measured once.
        """
        effective = float(self.replicas[pe.name])
        if self.job.partition.strategy is PartitionStrategy.FORWARD:
            return None, effective
        rates: Dict[int, float] = {}
        for i, c in enumerate(self.job.channels):
            if c.dst_pe != pe.name:
                continue
            upstream = self._emission[c.src_pe]
            if upstream is None:
                return None, effective
            router = self._routers[i]
            effective = min(effective, router.effective_replicas)
            idx = pe.ingress_index(c.dst_source)
            rate = _quantize(upstream * c.weight * router.max_share)
            rates[idx] = rates.get(idx, 0.0) + rate
        if not rates:
            return None, effective
        return rates, effective

    def _install_arrivals(
        self, pe: PeSubgraph, rates: Optional[Dict[int, float]]
    ) -> None:
        """Point the PE's runner at this period's arrival schedule:
        derived constant-rate streams on the ingress pseudo-sources,
        merged with any real-source scenario arrivals."""
        runner = self.runners[pe.name]
        real_factory = self._real_source_factory(pe)
        if rates is None:
            runner.set_arrivals(
                real_factory, self._real_source_key(pe)
            )
            return
        seed = self._pe_seeds[pe.name]
        procs = {
            idx: ArrivalProcess(
                ArrivalSpec(
                    kind=ArrivalKind.DETERMINISTIC, rate=rate
                ),
                seed=seed + idx,
            )
            for idx, rate in rates.items()
            if rate > 0.0
        }

        def factory(t0: float):
            streams = {
                idx: proc.arrival_stream(t0)
                for idx, proc in procs.items()
            }
            if real_factory is not None:
                streams.update(real_factory(t0))
            return streams

        key: Tuple = (
            "job-ingress",
            pe.name,
            tuple(sorted(rates.items())),
        )
        real_key = self._real_source_key(pe)
        if real_key is not None:
            key += (real_key,)
        runner.set_arrivals(factory, key)

    # ------------------------------------------------------------------
    # the lockstep loop
    # ------------------------------------------------------------------
    def step_period(self, k: int) -> float:
        """Run adaptation period ``k`` across every PE, couple the
        channels, then take one job-coordinator step.  Returns the
        job throughput observed this period."""
        period_s = self.config.elasticity.adaptation_period_s
        self._hub.tick(k * period_s)
        job_throughput = 0.0
        summaries: List[PeSummary] = []
        for pe in self.job.pes:
            runner = self.runners[pe.name]
            rates, effective = self._ingress_schedule(pe)
            self._install_arrivals(pe, rates)
            self._installed_rate[pe.name] = (
                sum(rates.values()) if rates else None
            )
            observed = runner.step_period(k)
            aggregate = observed * effective
            self._emission[pe.name] = aggregate
            job_throughput += aggregate * pe.real_sink_weight()
            summaries.append(
                PeSummary(
                    name=pe.name,
                    replicas=self.replicas[pe.name],
                    max_replicas=pe.max_replicas,
                    elastic=pe.elastic,
                    offered_utilization=self._offered_utilization(pe),
                    mean_utilization=runner.last_mean_utilization,
                    threads=runner.threads,
                    stable=runner.coordinator.is_stable,
                )
            )
        action = self.coordinator.step(summaries, job_throughput)
        if action.changed:
            self.replicas.update(action.set_replicas)
            self._rebuild_routers()
        self._job_changed = action.changed
        self.trace.observations.append(
            Observation(
                time_s=k * period_s,
                throughput=job_throughput,
                true_throughput=job_throughput,
                threads=self._total_threads(),
                n_queues=self._total_queues(),
                mode="job",
            )
        )
        return job_throughput

    def _offered_utilization(self, pe: PeSubgraph) -> float:
        """Offered-load utilization of the PE's hot replica.

        When the executor installed a derived ingress rate, the
        admitted-over-installed ratio is authoritative (the engine's
        own figure saturates at ~1.0 under ``block`` backpressure);
        otherwise fall through to the engine's measurement.
        """
        runner = self.runners[pe.name]
        installed = self._installed_rate[pe.name]
        util = runner.last_offered_utilization
        if installed is not None and installed > 0.0:
            util = min(util, runner.last_source_rate / installed)
        return min(1.0, util)

    def _total_threads(self) -> int:
        return sum(
            self.runners[pe.name].threads * self.replicas[pe.name]
            for pe in self.job.pes
        )

    def _total_queues(self) -> int:
        return sum(
            self.runners[pe.name].placement.n_queues
            * self.replicas[pe.name]
            for pe in self.job.pes
        )

    @property
    def is_stable(self) -> bool:
        """All PE coordinators settled and the job loop held still."""
        return all(
            r.coordinator.is_stable for r in self.runners.values()
        ) and not getattr(self, "_job_changed", False)

    def run(
        self,
        max_periods: Optional[int] = None,
        stop_after_stable_periods: Optional[int] = 8,
    ) -> JobAdaptationResult:
        """Drive the lockstep loop (the
        :class:`~repro.runtime.backend.AdaptationBackend` surface)."""
        if max_periods is None:
            max_periods = 120
        self.trace = AdaptationTrace.empty()
        for runner in self.runners.values():
            runner.begin_run()
        stable_streak = 0
        for k in range(1, max_periods + 1):
            self.step_period(k)
            if stop_after_stable_periods is not None:
                if self.is_stable:
                    stable_streak += 1
                    if stable_streak >= stop_after_stable_periods:
                        break
                else:
                    stable_streak = 0
        return self.result()

    def result(self) -> JobAdaptationResult:
        pe_results = {
            name: runner.result()
            for name, runner in self.runners.items()
        }
        return JobAdaptationResult(
            trace=self.trace,
            pe_results=pe_results,
            final_replicas=dict(self.replicas),
            final_threads=self._total_threads(),
            final_n_queues=self._total_queues(),
            converged_throughput=self.trace.final_throughput(window=4),
        )
