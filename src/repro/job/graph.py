"""Job graphs: partitioning one topology into a DAG of PE subgraphs.

A :class:`JobGraph` assigns every operator of a compiled scenario
topology to exactly one PE and materializes the cut edges as
*inter-PE channels*.  Each PE gets an extracted
:class:`~repro.graph.model.StreamGraph` it can run standalone in the
DES engine:

- an operator whose predecessor lives in another PE gains a
  **pseudo-source** (``in:<op>``) — the handle the job executor
  drives with a derived arrival schedule (or leaves saturated for
  pass-through channels);
- an operator with a successor in another PE gains a **pseudo-sink**
  (``out:<op>``) — so the PE's emission onto the channel is
  measurable as ordinary sink throughput.

Pseudo-operators carry a nominal 1-FLOP cost, never lock, and have
selectivity 1, so the extracted subgraph's dynamics are the owned
operators' dynamics.  Extraction is deterministic: operators keep
their relative index order, pseudo-sources precede them, pseudo-sinks
follow — the same scenario always extracts byte-identical subgraphs,
which is what lets a PE's in-job adaptation trace be compared against
a standalone run of its subgraph.

Partition validity: the assignment must cover the topology exactly
(every operator in exactly one PE) and the induced PE-level graph
must be acyclic — a cycle would mean two PEs each waiting on the
other's emission and the lockstep rate coupling has no fixed point to
find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.builder import GraphBuilder
from ..graph.model import StreamGraph
from ..scenarios.schema import PartitionSpec, PartitionStrategy, PeSpec


class JobGraphError(ValueError):
    """Raised when a PE assignment cannot form a valid job graph."""


@dataclass(frozen=True)
class JobChannel:
    """One materialized inter-PE edge (a cut edge of the topology).

    ``src_op``/``dst_op`` are the original operator names on either
    side of the cut; ``src_sink``/``dst_source`` the pseudo-operator
    names inside the extracted subgraphs; ``weight`` the fraction of
    the upstream PE's total sink emission that leaves on this channel
    (from the subgraph's selectivity-weighted arrival rates), which is
    how a multi-output PE's measured sink rate is split back into
    per-channel rates.
    """

    src_pe: str
    dst_pe: str
    src_op: str
    dst_op: str
    src_sink: str
    dst_source: str
    weight: float = 1.0


@dataclass(frozen=True)
class PeSubgraph:
    """One PE of the job: its extracted graph plus replication spec."""

    name: str
    graph: StreamGraph
    operators: Tuple[str, ...]
    replicas: int = 1
    elastic: bool = False
    max_replicas: int = 8
    # Pseudo-operator names, in deterministic order.
    ingress: Tuple[str, ...] = ()
    egress: Tuple[str, ...] = ()

    @property
    def has_real_source(self) -> bool:
        return any(
            op.is_source and not op.name.startswith("in:")
            for op in self.graph.sources
        )

    @property
    def has_real_sink(self) -> bool:
        return any(
            op.is_sink and not op.name.startswith("out:")
            for op in self.graph.sinks
        )

    def ingress_index(self, dst_source: str) -> int:
        """Subgraph operator index of a pseudo-source by name."""
        return self.graph.by_name(dst_source).index

    def real_sink_weight(self) -> float:
        """Fraction of this PE's sink emission landing in *real*
        sinks (vs. egress channels) — its direct contribution to job
        throughput."""
        rates = self.graph.arrival_rates()
        total = sum(rates[op.index] for op in self.graph.sinks)
        if total <= 0.0:
            return 0.0
        real = sum(
            rates[op.index]
            for op in self.graph.sinks
            if not op.name.startswith("out:")
        )
        return real / total


@dataclass(frozen=True)
class JobGraph:
    """A partitioned topology: PE subgraphs + inter-PE channels, in
    PE-level topological order."""

    full_graph: StreamGraph
    pes: Tuple[PeSubgraph, ...]
    channels: Tuple[JobChannel, ...]
    partition: PartitionSpec = field(default_factory=PartitionSpec)

    def pe(self, name: str) -> PeSubgraph:
        for p in self.pes:
            if p.name == name:
                return p
        raise KeyError(f"no PE named {name!r}")

    def channels_into(self, pe_name: str) -> Tuple[JobChannel, ...]:
        return tuple(c for c in self.channels if c.dst_pe == pe_name)

    def channels_out_of(self, pe_name: str) -> Tuple[JobChannel, ...]:
        return tuple(c for c in self.channels if c.src_pe == pe_name)


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
_PSEUDO_FLOPS = 1.0


def _pe_level_order(
    pe_of: Dict[str, str], names: Sequence[str], graph: StreamGraph
) -> List[str]:
    """Topological order of the contracted PE-level graph; raises on a
    cycle (rate coupling needs an acyclic PE DAG)."""
    deps: Dict[str, set] = {n: set() for n in names}
    for edge in graph.edges:
        src_pe = pe_of[graph.operator(edge.src).name]
        dst_pe = pe_of[graph.operator(edge.dst).name]
        if src_pe != dst_pe:
            deps[dst_pe].add(src_pe)
    order: List[str] = []
    done: set = set()
    remaining = list(names)
    while remaining:
        progress = [n for n in remaining if deps[n] <= done]
        if not progress:
            raise JobGraphError(
                f"PE-level graph has a cycle among {sorted(remaining)}; "
                "inter-PE channels must form a DAG"
            )
        for n in progress:
            order.append(n)
            done.add(n)
            remaining.remove(n)
    return order


def _extract_subgraph(
    spec: PeSpec,
    graph: StreamGraph,
    pe_of: Dict[str, str],
) -> Tuple[StreamGraph, Tuple[str, ...], Tuple[str, ...]]:
    """Build one PE's standalone graph (see module docstring)."""
    owned = [graph.by_name(name) for name in spec.operators]
    owned.sort(key=lambda op: op.index)
    owned_names = {op.name for op in owned}

    needs_ingress: List[str] = []  # owned ops fed from another PE
    needs_egress: List[str] = []  # owned ops feeding another PE
    for edge in graph.edges:
        src_name = graph.operator(edge.src).name
        dst_name = graph.operator(edge.dst).name
        if dst_name in owned_names and src_name not in owned_names:
            if dst_name not in needs_ingress:
                needs_ingress.append(dst_name)
        if src_name in owned_names and dst_name not in owned_names:
            if src_name not in needs_egress:
                needs_egress.append(src_name)

    b = GraphBuilder(
        f"{graph.name}:{spec.name}",
        payload_bytes=graph.tuple_spec.payload_bytes,
    )
    refs: Dict[str, object] = {}
    ingress_names: List[str] = []
    egress_names: List[str] = []
    # Deterministic layout: pseudo-sources, owned operators (original
    # index order), pseudo-sinks.
    for dst_name in sorted(
        needs_ingress, key=lambda n: graph.by_name(n).index
    ):
        pseudo = f"in:{dst_name}"
        refs[pseudo] = b.add_source(pseudo, cost_flops=_PSEUDO_FLOPS)
        ingress_names.append(pseudo)
    for op in owned:
        if op.is_source:
            refs[op.name] = b.add_source(
                op.name,
                cost_flops=op.cost_flops,
                selectivity=op.selectivity,
                fanout=op.fanout,
                max_rate=op.max_rate,
            )
        elif op.is_sink:
            refs[op.name] = b.add_sink(
                op.name,
                cost_flops=op.cost_flops,
                uses_lock=op.uses_lock,
            )
        else:
            refs[op.name] = b.add_operator(
                op.name,
                cost_flops=op.cost_flops,
                selectivity=op.selectivity,
                uses_lock=op.uses_lock,
                fanout=op.fanout,
            )
    for src_name in sorted(
        needs_egress, key=lambda n: graph.by_name(n).index
    ):
        pseudo = f"out:{src_name}"
        refs[pseudo] = b.add_sink(
            pseudo, cost_flops=_PSEUDO_FLOPS, uses_lock=False
        )
        egress_names.append(pseudo)

    for edge in graph.edges:
        src_name = graph.operator(edge.src).name
        dst_name = graph.operator(edge.dst).name
        if src_name in owned_names and dst_name in owned_names:
            b.connect(refs[src_name], refs[dst_name])
    for dst_name in needs_ingress:
        b.connect(refs[f"in:{dst_name}"], refs[dst_name])
    for src_name in needs_egress:
        b.connect(refs[src_name], refs[f"out:{src_name}"])
    return b.build(), tuple(ingress_names), tuple(egress_names)


def _channel_weights(
    sub: StreamGraph, egress: Tuple[str, ...]
) -> Dict[str, float]:
    """Per-egress fraction of the subgraph's total sink emission."""
    rates = sub.arrival_rates()
    total = sum(rates[op.index] for op in sub.sinks)
    if total <= 0.0:
        return {name: 0.0 for name in egress}
    return {
        name: rates[sub.by_name(name).index] / total for name in egress
    }


def build_job_graph(
    graph: StreamGraph,
    pe_specs: Sequence[PeSpec],
    partition: Optional[PartitionSpec] = None,
) -> JobGraph:
    """Partition ``graph`` into a :class:`JobGraph` per ``pe_specs``.

    Validates coverage (every operator assigned exactly once),
    PE-level acyclicity, and the strategy's structural constraints
    (forward channels need single-replica destinations; elastic PEs
    must be stateless — no lock-using operators — and not fed by
    forward/broadcast channels, which cannot shed load to new
    replicas).
    """
    partition = partition if partition is not None else PartitionSpec()
    if not pe_specs:
        raise JobGraphError("a job graph needs at least one PE")

    pe_of: Dict[str, str] = {}
    for spec in pe_specs:
        for name in spec.operators:
            try:
                graph.by_name(name)
            except KeyError:
                raise JobGraphError(
                    f"PE {spec.name!r} references unknown operator "
                    f"{name!r}"
                ) from None
            if name in pe_of:
                raise JobGraphError(
                    f"operator {name!r} is assigned to both "
                    f"{pe_of[name]!r} and {spec.name!r}"
                )
            pe_of[name] = spec.name
    missing = [op.name for op in graph if op.name not in pe_of]
    if missing:
        raise JobGraphError(
            f"operators not assigned to any PE: {missing}"
        )

    order = _pe_level_order(
        pe_of, [spec.name for spec in pe_specs], graph
    )
    spec_by_name = {spec.name: spec for spec in pe_specs}

    subgraphs: Dict[str, PeSubgraph] = {}
    weights: Dict[str, Dict[str, float]] = {}
    for name in order:
        spec = spec_by_name[name]
        sub, ingress, egress = _extract_subgraph(spec, graph, pe_of)
        if spec.elastic:
            locked = [
                op.name
                for op in sub
                if op.uses_lock and not op.name.startswith(("in:", "out:"))
            ]
            if locked:
                raise JobGraphError(
                    f"elastic PE {name!r} owns lock-using (stateful) "
                    f"operators {locked}; replication requires "
                    "stateless PEs"
                )
        subgraphs[name] = PeSubgraph(
            name=name,
            graph=sub,
            operators=spec.operators,
            replicas=spec.replicas,
            elastic=spec.elastic,
            max_replicas=spec.max_replicas,
            ingress=ingress,
            egress=egress,
        )
        weights[name] = _channel_weights(sub, egress)

    channels: List[JobChannel] = []
    for edge in graph.edges:
        src_name = graph.operator(edge.src).name
        dst_name = graph.operator(edge.dst).name
        src_pe, dst_pe = pe_of[src_name], pe_of[dst_name]
        if src_pe == dst_pe:
            continue
        channels.append(
            JobChannel(
                src_pe=src_pe,
                dst_pe=dst_pe,
                src_op=src_name,
                dst_op=dst_name,
                src_sink=f"out:{src_name}",
                dst_source=f"in:{dst_name}",
                weight=weights[src_pe][f"out:{src_name}"],
            )
        )

    strategy = partition.strategy
    for spec in pe_specs:
        width = spec.replicas
        if strategy is PartitionStrategy.FORWARD and width != 1:
            raise JobGraphError(
                f"forward partitioning requires single-replica PEs; "
                f"{spec.name!r} declares {width}"
            )
        if spec.elastic and strategy in (
            PartitionStrategy.FORWARD,
            PartitionStrategy.BROADCAST,
        ):
            raise JobGraphError(
                f"elastic PE {spec.name!r} cannot scale under "
                f"{strategy.value!r} channels: adding replicas sheds "
                "no load"
            )

    return JobGraph(
        full_graph=graph,
        pes=tuple(subgraphs[name] for name in order),
        channels=tuple(channels),
        partition=partition,
    )
