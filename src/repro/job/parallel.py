"""Sticky-worker execution of multi-PE adaptation periods.

The parent :class:`~repro.job.executor.JobAdaptationRunner` owns the
lockstep loop, the channel routers and the job coordinator; this
module owns everything that runs *inside* a
:class:`~repro.runtime.pool.WorkerPool` worker.  The contract that
makes parallel runs byte-identical to sequential ones:

- **sticky state** — each worker builds its PEs'
  :class:`~repro.des.adaptation.DesAdaptationRunner`s once (via the
  same :func:`~repro.job.executor.build_pe_runner` the parent uses)
  and keeps them for the whole run, so simulator, coordinator and
  profiler state never pickle between periods.  PEs map to workers
  round-robin in topological order — a pure function of the job and
  the pool width, so the assignment is reproducible;
- **small records over the pipe** — per period-step a worker receives
  ``(pe_name, k, ingress_rates)`` and returns the observed throughput
  plus the *deltas* the parent must re-home: decision field records
  (seq/time/period stripped — the parent hub's clock re-assigns
  them), changed ``pe.<name>.``-scoped metric states, and memo cells
  created this step (so the parent's cache ends bit-identical to a
  sequential run's);
- **worker-local hub** — workers publish into a private
  :class:`~repro.obs.hub.ObservabilityHub` (or the null hub when the
  parent is detached, preserving detached-mode freedom).  The
  worker's unscoped ``loop.*`` bookkeeping is deliberately *not*
  shipped: the parent's decision replay regenerates it.

Worker death (a crashed process, an OOM kill) surfaces as
:class:`~repro.runtime.pool.WorkerPoolError` from the pool with the
exit code; a worker-side exception ships its full traceback.
"""

from __future__ import annotations

import pickle
from typing import Dict, Optional, Tuple

from ..bench import cache
from ..obs.decisions import Decision
from ..obs.hub import NULL_HUB, ObservabilityHub
from ..runtime.pool import WorkerPool
from .executor import (
    build_pe_runner,
    derived_arrivals,
    pe_seed,
    real_source_factory,
    real_source_key,
)

__all__ = ["JobWorkerSession"]


def _decision_fields(d: Decision) -> Dict:
    """A decision without its parent-assigned identity (seq, time,
    period) — exactly the keyword set ``ObservabilityHub.decision``
    accepts, so the parent can replay it under its own clock."""
    return {
        "component": d.component,
        "mode": d.mode,
        "rule": d.rule,
        "detail": d.detail,
        "observed": d.observed,
        "trend": d.trend,
        "history_hit": d.history_hit,
        "satisfaction": d.satisfaction,
        "set_threads": d.set_threads,
        "set_n_queues": d.set_n_queues,
        "note": d.note,
        "scope": d.scope,
    }


class _WorkerState:
    """Everything one sticky worker keeps between calls."""

    def __init__(self, hub) -> None:
        self.hub = hub
        self.runners: Dict[str, object] = {}
        self.pes: Dict[str, object] = {}
        self.seeds: Dict[str, int] = {}
        self.real: Dict[str, Tuple] = {}  # (factory, key) per PE
        self.decisions_seen = 0
        self.metric_baseline: Dict[str, dict] = {}
        self.shipped_cache_keys: set = set()


def _init_job_worker(
    worker_id: int,
    job,
    machine,
    config,
    runner_kwargs,
    arrivals_factory,
    arrivals_key,
    detached: bool,
    n_workers: int,
) -> _WorkerState:
    """Build this worker's share of the job: PE ``i`` (topological
    order) lands on worker ``i % n_workers``."""
    hub = NULL_HUB if detached else ObservabilityHub()
    state = _WorkerState(hub)
    for i, pe in enumerate(job.pes):
        if i % n_workers != worker_id:
            continue
        state.runners[pe.name] = build_pe_runner(
            job,
            machine,
            config,
            i,
            pe,
            runner_kwargs,
            arrivals_factory,
            arrivals_key,
            hub,
        )
        state.pes[pe.name] = pe
        state.seeds[pe.name] = pe_seed(config, i)
        state.real[pe.name] = (
            real_source_factory(job, arrivals_factory, pe),
            real_source_key(arrivals_factory, arrivals_key, pe),
        )
    return state


def _begin_pe(state: _WorkerState, pe_name: str) -> bool:
    state.runners[pe_name].begin_run()
    return True


def _fresh_cache_entries(state: _WorkerState) -> Dict:
    """Memo cells created since the last ship (any PE of this worker).

    Unpicklable values are skipped permanently — they could never have
    crossed a pool boundary under ``run_cells`` either.
    """
    entries: Dict = {}
    for key, value in list(cache._STORE.items()):
        if key in state.shipped_cache_keys:
            continue
        state.shipped_cache_keys.add(key)
        try:
            pickle.dumps((key, value))
        except Exception:
            continue
        entries[key] = value
    return entries


def _step_pe(
    state: _WorkerState,
    pe_name: str,
    k: int,
    rates: Optional[Dict[int, float]],
) -> Dict:
    """One adaptation period for one PE; returns the re-homing report."""
    runner = state.runners[pe_name]
    real_factory, real_key = state.real[pe_name]
    factory, key = derived_arrivals(
        state.pes[pe_name],
        state.seeds[pe_name],
        rates,
        real_factory,
        real_key,
    )
    runner.set_arrivals(factory, key)
    observed = runner.step_period(k)
    if state.hub is NULL_HUB:
        decisions = []
        metrics: Dict[str, dict] = {}
    else:
        log = state.hub.decisions()
        decisions = [
            _decision_fields(d) for d in log[state.decisions_seen:]
        ]
        state.decisions_seen = len(log)
        exported = state.hub.registry.export_state(prefix="pe.")
        metrics = {
            name: entry
            for name, entry in exported.items()
            if state.metric_baseline.get(name) != entry
        }
        state.metric_baseline.update(metrics)
    return {
        "observed": observed,
        "decisions": decisions,
        "metrics": metrics,
        "cache": _fresh_cache_entries(state),
        "threads": runner.threads,
        "placement": runner.placement,
        "stable": runner.coordinator.is_stable,
        "offered_util": runner.last_offered_utilization,
        "mean_util": runner.last_mean_utilization,
        "source_rate": runner.last_source_rate,
        "sim_events": runner.sim_events,
    }


def _finish_pe(state: _WorkerState, pe_name: str):
    """The PE's packaged adaptation result, fetched at end of run."""
    return state.runners[pe_name].result()


class JobWorkerSession:
    """Parent-side handle on one run's worth of sticky workers.

    Dispatch is two-phase per wave — :meth:`submit_step` for every PE
    in the wave, then :meth:`collect_step` in the *same order* — which
    keeps each worker's pipe strictly FIFO while letting different
    workers simulate concurrently.
    """

    def __init__(
        self,
        job,
        machine,
        config,
        runner_kwargs,
        arrivals_factory,
        arrivals_key,
        detached: bool,
        n_workers: int,
    ) -> None:
        self._pe_names = [pe.name for pe in job.pes]
        self._worker_of = {
            pe.name: i % n_workers for i, pe in enumerate(job.pes)
        }
        self.pool = WorkerPool(
            n_workers,
            _init_job_worker,
            (
                job,
                machine,
                config,
                runner_kwargs,
                arrivals_factory,
                arrivals_key,
                detached,
                n_workers,
            ),
        )

    def begin(self) -> None:
        for name in self._pe_names:
            self.pool.submit(self._worker_of[name], _begin_pe, name)
        for name in self._pe_names:
            self.pool.recv(self._worker_of[name])

    def submit_step(
        self, pe_name: str, k: int, rates: Optional[Dict[int, float]]
    ) -> None:
        self.pool.submit(
            self._worker_of[pe_name], _step_pe, pe_name, k, rates
        )

    def collect_step(self, pe_name: str) -> Dict:
        return self.pool.recv(self._worker_of[pe_name])

    def finish(self) -> Dict[str, object]:
        """Fetch every PE's final :class:`DesAdaptationResult`."""
        for name in self._pe_names:
            self.pool.submit(self._worker_of[name], _finish_pe, name)
        return {
            name: self.pool.recv(self._worker_of[name])
            for name in self._pe_names
        }

    def close(self) -> None:
        self.pool.close()
