"""repro.job — multi-PE job graphs over the tuple-level DES.

The paper scopes its elasticity mechanism to one PE and notes that
"all PEs in a job independently use the proposed work" (§2).  The
perfmodel-side :mod:`repro.runtime.job` already models a *chain* of
independently-adapting PEs coupled by rate caps; this package is the
DES-side generalization:

- :mod:`repro.job.graph` partitions one scenario topology into a DAG
  of PE subgraphs with materialized inter-PE channels
  (:class:`JobGraph`);
- :mod:`repro.job.partition` routes tuples across downstream replicas
  (forward / round-robin / shuffle / key-hash / broadcast, all
  deterministic under a seed);
- :mod:`repro.job.coordinator` is the job-level control loop that
  scales elastic PEs out/in and arbitrates a shared thread budget —
  while every PE keeps its *own* §3.1–3.3 multi-level coordinator;
- :mod:`repro.job.executor` runs the per-PE
  :class:`~repro.des.adaptation.DesAdaptationRunner` loops in lockstep
  periods, coupling downstream offered load to upstream measured
  emission.

Import direction: this package imports :mod:`repro.scenarios.schema`
(for the partition vocabulary) and :mod:`repro.des`; the scenario
*runner* imports us lazily.  Nothing here imports
:mod:`repro.scenarios.run` or :mod:`repro.scenarios.compile`.
"""

from .coordinator import JobCoordinator, PeSummary
from .executor import JobAdaptationResult, JobAdaptationRunner
from .graph import JobChannel, JobGraph, JobGraphError, PeSubgraph
from .partition import (
    BroadcastRouter,
    ForwardRouter,
    KeyHashRouter,
    Router,
    RoundRobinRouter,
    ShuffleRouter,
    make_router,
)

__all__ = [
    "JobCoordinator",
    "PeSummary",
    "JobAdaptationResult",
    "JobAdaptationRunner",
    "JobChannel",
    "JobGraph",
    "JobGraphError",
    "PeSubgraph",
    "Router",
    "ForwardRouter",
    "RoundRobinRouter",
    "ShuffleRouter",
    "KeyHashRouter",
    "BroadcastRouter",
    "make_router",
]
