"""repro.obs — structured observability for the elastic control loop.

Three cooperating pieces:

- :mod:`repro.obs.registry` — a metrics registry (counters, gauges,
  fixed-bucket histograms) cheap enough for the DES tuple path;
- :mod:`repro.obs.decisions` — structured decision records carrying
  the R1-R5 / Fig. 7 rule that fired, history hits and the measured
  satisfaction factor;
- :mod:`repro.obs.exporters` — JSONL / CSV / Prometheus text
  renderings of the log and the registry.

The :class:`~repro.obs.hub.ObservabilityHub` ties them together and is
the single object callers attach::

    from repro.obs import ObservabilityHub
    from repro.runtime import ProcessingElement, RuntimeConfig, run_elastic

    hub = ObservabilityHub()
    result = run_elastic(pe, duration_s=3600, obs=hub)
    for decision in hub.decisions():
        print(decision.time_s, decision.rule, decision.note)

When no hub is attached every instrumentation point resolves to the
null hub / null metrics, whose methods are empty: detached runs are
byte-identical to runs before this subsystem existed.
"""

from .decisions import (
    ALT_BRANCHES,
    F7_BRANCHES,
    JOB_RULES,
    TM_RULES,
    VALID_RULES,
    Decision,
    LoggedEvent,
)
from .exporters import (
    format_log_table,
    prometheus_text,
    read_jsonl,
    record_from_dict,
    record_to_dict,
    write_csv,
    write_jsonl,
    write_prometheus,
)
from .hub import NULL_HUB, NullHub, ObservabilityHub, ensure_hub
from .scope import ScopedObs, ScopedRegistry, scoped
from .registry import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)

__all__ = [
    "ALT_BRANCHES",
    "F7_BRANCHES",
    "JOB_RULES",
    "ScopedObs",
    "ScopedRegistry",
    "scoped",
    "TM_RULES",
    "VALID_RULES",
    "Decision",
    "LoggedEvent",
    "format_log_table",
    "prometheus_text",
    "read_jsonl",
    "record_from_dict",
    "record_to_dict",
    "write_csv",
    "write_jsonl",
    "write_prometheus",
    "NULL_HUB",
    "NullHub",
    "ObservabilityHub",
    "ensure_hub",
    "DEFAULT_BUCKETS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
]
