"""Structured decision records: the causal log of the elastic loop.

Every adaptation period the coordinator emits exactly one
:class:`Decision` explaining *why* it acted (or held still): which of
the threading-model search rules R1-R5 or which branch of the Fig. 7
coordination loop fired, whether a history record was consulted and
hit, and what the measured satisfaction factor was.  Configuration
changes (:class:`~repro.runtime.events.ThreadCountChange` /
:class:`~repro.runtime.events.PlacementChange`) are logged in the same
sequence, so any change can be traced back to the decision immediately
preceding it.

The rule vocabulary is closed: emitting a decision with an unknown
rule tag raises, which keeps the log auditable (a consumer can rely on
every tag being documented here and in docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import FrozenSet, Optional

# ----------------------------------------------------------------------
# rule vocabulary
# ----------------------------------------------------------------------
#: Threading-model group-search rules (paper Fig. 3 / Fig. 4).  The
#: two-sided bisection hill-climb realizes them as: forward probe
#: improved (R1) / failed (R2), backward probe improved (R3) / failed
#: (R4), both intervals exhausted -> settle the group (R5).
TM_RULES: FrozenSet[str] = frozenset({"R1", "R2", "R3", "R4", "R5"})

#: Branches of the Fig. 7 multi-level ``adapt()`` loop.
F7_BRANCHES: FrozenSet[str] = frozenset(
    {
        "F7-INIT",  # first period: profile + open initial UP phase
        "F7-TM-BEGIN",  # a threading-model phase issued its first probe
        "F7-TM-SETTLED",  # phase finished (STAY/CHANGE), back to threads
        "F7-SECONDARY-UP",  # thread change triggered secondary, adding
        "F7-SECONDARY-DOWN",  # thread change triggered secondary, removing
        "F7-THREAD-COUNT",  # primary adjustment proposed a new count
        "F7-SETTLE-PROBE",  # final TM pass before declaring stability
        "F7-SETTLED",  # neither component can improve: stable
        "F7-HOLD",  # no change proposed this period
        "F7-STABLE",  # stable-mode monitoring, no deviation
        "F7-WORKLOAD-CHANGE",  # deviation persisted: re-profile, restart
        "F7-WARM-START",  # model prior seeded the search (exploration on)
        "F7-WARM-SNAP",  # phase-store posterior snapped straight to STABLE
    }
)

#: Branches of the rejected threading-model-primary ordering
#: (:mod:`repro.core.alt_coordinator`), logged for the ablations.
ALT_BRANCHES: FrozenSet[str] = frozenset(
    {
        "ALT-INIT",
        "ALT-INNER-THREADS",
        "ALT-OUTER-TRIAL",
        "ALT-SETTLED",
        "ALT-STABLE",
        "ALT-HOLD",
        "ALT-WARM-START",  # warm hint seeded placement + inner search
        "ALT-WARM-SNAP",  # phase-store posterior snapped straight to STABLE
        "ALT-WARM-PROBE",  # post-warm outer threading-model check
    }
)

#: Job-level coordinator rules (:mod:`repro.job.coordinator`): replica
#: scale-out/in of elastic PEs and cross-PE thread arbitration.  These
#: ride in the same log as the per-PE R1-R5/Fig.7 decisions, tagged
#: with ``scope="job"`` so per-PE traces stay filterable.
JOB_RULES: FrozenSet[str] = frozenset(
    {
        "JOB-INIT",  # first period: job coordinator comes up
        "JOB-SCALE-OUT",  # elastic PE gained a replica
        "JOB-SCALE-IN",  # elastic PE shed a replica
        "JOB-ARB",  # thread budget exceeded: a PE was clamped
        "JOB-HOLD",  # job-level loop saw nothing to change
    }
)

VALID_RULES: FrozenSet[str] = TM_RULES | F7_BRANCHES | ALT_BRANCHES | JOB_RULES


@dataclass(frozen=True)
class Decision:
    """One adaptation period's controller decision, fully attributed.

    Attributes
    ----------
    seq:
        Position in the hub's unified log (decisions and configuration
        changes share one sequence, so ordering is total).
    time_s / period:
        Virtual time and adaptation-period index of the observation
        the decision reacted to.
    component:
        Which controller emitted it (``coordinator`` or
        ``alt_coordinator``).
    mode:
        The coordinator mode at decision time (Fig. 7 state).
    rule:
        The R1-R5 search rule or Fig. 7 branch that fired — must be a
        member of :data:`VALID_RULES`.
    detail:
        Sub-component explanation (e.g. the thread-count controller's
        phase and proposed move, or the TM decision STAY/CHANGE).
    observed:
        The throughput observation fed to the controller.
    trend:
        SENS-classified trend vs. the previous observation
        (``up`` / ``down`` / ``flat``).
    history_hit:
        True when the history record validated the new thread level and
        the secondary adjustment was skipped (§3.3 optimization 1).
    satisfaction:
        Measured satisfaction factor for the evaluated thread change
        (§3.3 optimization 2), or None when not evaluated this period.
    set_threads / set_n_queues:
        The configuration change the decision produced (None = no
        change of that kind).
    note:
        The human-readable action note (matches
        :class:`~repro.core.coordinator.CoordinatorAction.note`).
    scope:
        Which execution context emitted the decision: ``""`` for a
        plain single-PE run, ``"pe.<name>"`` for a PE inside a
        multi-PE job, ``"job"`` for the job-level coordinator.  Lets
        one hub carry a whole job's interleaved decision streams while
        keeping every PE's R1-R5 trace individually filterable.
    """

    seq: int
    time_s: float
    period: int
    component: str
    mode: str
    rule: str
    detail: str
    observed: float
    trend: str
    history_hit: bool
    satisfaction: Optional[float]
    set_threads: Optional[int]
    set_n_queues: Optional[int]
    note: str
    scope: str = ""

    def __post_init__(self) -> None:
        if self.rule not in VALID_RULES:
            raise ValueError(
                f"unknown decision rule {self.rule!r}; valid rules: "
                f"{sorted(VALID_RULES)}"
            )

    @property
    def is_change(self) -> bool:
        """Did this decision request any configuration change?"""
        return self.set_threads is not None or self.set_n_queues is not None

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "Decision":
        return Decision(
            seq=int(data["seq"]),
            time_s=float(data["time_s"]),
            period=int(data["period"]),
            component=str(data["component"]),
            mode=str(data["mode"]),
            rule=str(data["rule"]),
            detail=str(data["detail"]),
            observed=float(data["observed"]),
            trend=str(data["trend"]),
            history_hit=bool(data["history_hit"]),
            satisfaction=(
                None
                if data.get("satisfaction") is None
                else float(data["satisfaction"])
            ),
            set_threads=(
                None
                if data.get("set_threads") is None
                else int(data["set_threads"])
            ),
            set_n_queues=(
                None
                if data.get("set_n_queues") is None
                else int(data["set_n_queues"])
            ),
            note=str(data.get("note", "")),
            scope=str(data.get("scope", "")),
        )


@dataclass(frozen=True)
class LoggedEvent:
    """A runtime trace event embedded in the decision log.

    ``data`` is one of the stable public trace types from
    :mod:`repro.runtime.events` (Observation, ThreadCountChange,
    PlacementChange); ``kind`` names which.  The events ride in the
    same sequence as decisions so causality is reconstructible from
    the log alone.
    """

    seq: int
    kind: str
    time_s: float
    data: object
