"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the quantitative half of the observability subsystem
(:mod:`repro.obs`): controllers, the adaptation executor and the DES
engine increment pre-bound metric objects on their hot paths.  Two
properties keep it cheap enough for the tuple path:

- **bind once, update forever** — callers resolve a metric object a
  single time (at construction) and afterwards pay one attribute
  update per event, never a registry lookup;
- **null objects** — when no registry is attached, callers hold the
  shared :data:`NULL_COUNTER` / :data:`NULL_GAUGE` /
  :data:`NULL_HISTOGRAM` singletons whose update methods are empty.
  Detached instrumentation is a single no-op method call, which keeps
  benchmark numbers unaffected.

Histograms use *fixed* upper bounds chosen at creation (Prometheus
``le`` semantics: a value lands in the first bucket whose bound is
``>= value``; values above the last bound land in the implicit
``+Inf`` bucket).  Fixed buckets make observation O(log #buckets) with
no allocation, and make the exported cumulative counts stable across
runs.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

# Default bounds cover event counts and throughputs across the scales
# the experiments produce (tuples/s span ~1e2..1e7).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "description", "_value")

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> float:
        """Picklable internal state (see ``MetricsRegistry.export_state``)."""
        return self._value

    def load_state(self, state: float) -> None:
        """Overwrite the value with a state exported elsewhere.

        Unlike :meth:`inc` this may move the value in any direction:
        it re-homes a metric owned by exactly one remote writer (a
        pool worker), it does not accumulate concurrent writers.
        """
        self._value = float(state)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "value": self._value,
        }


class Gauge:
    """Value that can go up and down (e.g. current thread count)."""

    __slots__ = ("name", "description", "_value")

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def state(self) -> float:
        return self._value

    def load_state(self, state: float) -> None:
        self._value = float(state)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "value": self._value,
        }


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics."""

    __slots__ = ("name", "description", "bounds", "_counts", "_sum", "_n")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing: "
                f"{bounds}"
            )
        self.name = name
        self.description = description
        self.bounds = bounds
        # One slot per finite bound plus the +Inf overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._n = 0

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._n += 1

    @property
    def count(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> Tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        return tuple(self._counts)

    def state(self) -> Tuple[Tuple[int, ...], float, int]:
        return (tuple(self._counts), self._sum, self._n)

    def load_state(self, state: Tuple[Tuple[int, ...], float, int]) -> None:
        counts, total, n = state
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name!r} state has {len(counts)} "
                f"buckets, expected {len(self._counts)}"
            )
        self._counts = list(counts)
        self._sum = float(total)
        self._n = int(n)

    def cumulative(self) -> Tuple[Tuple[float, int], ...]:
        """Prometheus-style cumulative ``(le_bound, count)`` pairs."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return tuple(out)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._n,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Re-requesting an existing name returns the same object; requesting
    it as a different metric kind (or a histogram with different
    bounds) is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not histogram"
                )
            if existing.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {name!r} re-registered with different "
                    f"bounds ({existing.bounds} != {tuple(bounds)})"
                )
            return existing
        metric = Histogram(name, bounds=bounds, description=description)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name: str, description: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, description=description)
        self._metrics[name] = metric
        return metric

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(
            self._metrics[name] for name in sorted(self._metrics)
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        """JSON-serializable dump of every metric, sorted by name."""
        return {m.name: m.to_dict() for m in self}

    # ------------------------------------------------------------------
    # cross-process state transfer (sticky pool workers)
    # ------------------------------------------------------------------
    def export_state(self, prefix: str = "") -> Dict[str, dict]:
        """Picklable per-metric state for every metric under ``prefix``.

        Each entry carries enough to *re-create* the metric in another
        registry (kind, description, histogram bounds) plus its current
        :meth:`~Counter.state`, so a pool worker's scoped metrics can
        be re-homed into the parent hub with :meth:`merge_state`.
        """
        out: Dict[str, dict] = {}
        for metric in self:
            if prefix and not metric.name.startswith(prefix):
                continue
            entry = {
                "kind": metric.kind,
                "description": metric.description,
                "state": metric.state(),
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = metric.bounds
            out[metric.name] = entry
        return out

    def merge_state(self, exported: Dict[str, dict]) -> None:
        """Install exported metric states, creating metrics as needed.

        Overwrites each named metric's state with the exported one —
        single-writer semantics: every exported name must have exactly
        one remote owner (the job executor's ``pe.<name>.`` scoping
        guarantees this).
        """
        for name in sorted(exported):
            entry = exported[name]
            kind = entry["kind"]
            if kind == "counter":
                metric = self.counter(name, entry["description"])
            elif kind == "gauge":
                metric = self.gauge(name, entry["description"])
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    bounds=entry["bounds"],
                    description=entry["description"],
                )
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown metric kind {kind!r}")
            metric.load_state(entry["state"])


# ----------------------------------------------------------------------
# null objects: detached instrumentation is one empty method call
# ----------------------------------------------------------------------
class NullCounter:
    __slots__ = ()

    kind = "counter"
    name = "<null>"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()

    kind = "gauge"
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()

    kind = "histogram"
    name = "<null>"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry stand-in handed out by the null hub: creates nothing."""

    def counter(self, name: str, description: str = "") -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, description: str = "") -> NullGauge:
        return NULL_GAUGE

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> NullHistogram:
        return NULL_HISTOGRAM

    def get(self, name: str) -> None:
        return None

    def __iter__(self) -> Iterator[Metric]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, dict]:
        return {}


NULL_REGISTRY = NullRegistry()
