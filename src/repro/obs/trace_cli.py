"""``python -m repro trace <experiment>`` — replay a run, dump its log.

Replays one *representative* elastic run of a figure experiment with
an :class:`~repro.obs.hub.ObservabilityHub` attached and exports the
resulting decision log (and, for the ``prom`` format, the metrics
registry).  Where a figure sweeps a parameter grid, the trace command
picks the grid point the paper discusses in the text; the goal is an
auditable causal log of one adaptation run, not the full table.

Heavy imports (graph builders, the bench layer) are deferred into the
experiment builders so that importing :mod:`repro.obs` stays cheap.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, IO, List, Optional, Tuple

from .exporters import (
    format_log_table,
    prometheus_text,
    write_csv,
    write_jsonl,
)
from .hub import ObservabilityHub

FORMATS = ("table", "jsonl", "csv", "prom")


@dataclass(frozen=True)
class TraceRun:
    """Everything needed to replay one elastic run under observation."""

    pe: object  # ProcessingElement
    duration_s: float
    workload_events: Optional[List[Tuple[float, object]]] = None
    stop_after_stable_periods: Optional[int] = 24


def _machine(name: str, cores: Optional[int]):
    from ..perfmodel import power8_184, xeon_176

    machine = {"xeon": xeon_176, "power8": power8_184}[name]()
    if cores is not None:
        machine = machine.with_cores(cores)
    return machine


def _pe(graph, machine, seed: int, elasticity=None):
    from ..runtime.config import ElasticityConfig, RuntimeConfig
    from ..runtime.pe import ProcessingElement

    config = RuntimeConfig(
        cores=machine.logical_cores,
        seed=seed,
        elasticity=elasticity or ElasticityConfig(),
    )
    return ProcessingElement(graph, machine, config)


# ----------------------------------------------------------------------
# experiment builders (one representative run each)
# ----------------------------------------------------------------------
def _build_fig01(args) -> TraceRun:
    from ..graph.topologies import pipeline

    graph = pipeline(100, cost_flops=100.0, payload_bytes=1024)
    machine = _machine(args.machine, args.cores or 16)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


def _build_fig06(args) -> TraceRun:
    # The Fig. 6 text discusses the history + SF=0.6 variant, which is
    # the library's default ElasticityConfig.
    import numpy as np

    from ..graph.cost import assign_costs, skewed
    from ..graph.topologies import pipeline

    graph = assign_costs(
        pipeline(500, payload_bytes=1024),
        skewed(),
        rng=np.random.default_rng(args.seed),
    )
    machine = _machine(args.machine, args.cores or 88)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


def _build_fig09(args) -> TraceRun:
    import numpy as np

    from ..graph.cost import assign_costs, balanced
    from ..graph.topologies import pipeline

    graph = assign_costs(
        pipeline(500, payload_bytes=1024),
        balanced(100.0),
        rng=np.random.default_rng(args.seed),
    )
    machine = _machine(args.machine, args.cores)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


def _build_fig10(args) -> TraceRun:
    from ..graph.topologies import data_parallel

    graph = data_parallel(100, cost_flops=100.0, payload_bytes=1024)
    machine = _machine(args.machine, args.cores)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


def _build_fig11(args) -> TraceRun:
    from ..graph.topologies import mixed

    graph = mixed(10, 50, cost_flops=100.0, payload_bytes=1024)
    machine = _machine(args.machine, args.cores)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


def _build_fig12(args) -> TraceRun:
    from ..graph.topologies import bushy_82

    graph = bushy_82(cost_flops=100.0, payload_bytes=1024)
    machine = _machine(args.machine, args.cores or 88)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


def _build_fig13(args) -> TraceRun:
    from ..apps.workloads import phase_change

    workload = phase_change(
        n_operators=100, payload_bytes=1024, seed=args.seed
    )
    machine = _machine(args.machine, args.cores or 88)
    return TraceRun(
        pe=_pe(workload.initial, machine, args.seed),
        duration_s=4_000.0,
        workload_events=workload.events(),
        # A workload-change run must keep monitoring through the whole
        # duration; stopping at the first stable stretch would miss the
        # phase change.
        stop_after_stable_periods=None,
    )


def _build_fig15a(args) -> TraceRun:
    from ..apps.vwap import build_vwap

    graph = build_vwap()
    machine = _machine(args.machine, args.cores or 16)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


def _build_fig15b(args) -> TraceRun:
    from ..apps.packet_analysis import build_packet_analysis

    graph = build_packet_analysis(1)
    machine = _machine(args.machine, args.cores)
    return TraceRun(pe=_pe(graph, machine, args.seed), duration_s=20_000.0)


EXPERIMENTS: Dict[str, Tuple[str, Callable]] = {
    "fig01": ("Fig. 1 motivation pipeline (100 ops, 1024B)", _build_fig01),
    "fig06": ("Fig. 6 adaptation run (history + SF=0.6)", _build_fig06),
    "fig09": ("Fig. 9 pipeline (500 ops, 1024B)", _build_fig09),
    "fig10": ("Fig. 10 data-parallel (width 100)", _build_fig10),
    "fig11": ("Fig. 11 mixed (10 x 50)", _build_fig11),
    "fig12": ("Fig. 12 bushy-82", _build_fig12),
    "fig13": ("Fig. 13 workload phase change", _build_fig13),
    "fig15a": ("Fig. 15(a) VWAP", _build_fig15a),
    "fig15b": ("Fig. 15(b) PacketAnalysis (1 source)", _build_fig15b),
}


# ----------------------------------------------------------------------
# command implementation
# ----------------------------------------------------------------------
def replay(experiment: str, args: argparse.Namespace) -> ObservabilityHub:
    """Run the experiment's representative trace run under a fresh hub."""
    from ..runtime.executor import AdaptationExecutor

    _desc, build = EXPERIMENTS[experiment]
    spec = build(args)
    hub = ObservabilityHub()
    executor = AdaptationExecutor(
        spec.pe, workload_events=spec.workload_events, obs=hub
    )
    duration = (
        args.duration if args.duration is not None else spec.duration_s
    )
    executor.run(
        duration,
        stop_after_stable_periods=spec.stop_after_stable_periods,
    )
    return hub


def export(hub: ObservabilityHub, fmt: str, stream: IO[str]) -> None:
    records = hub.records()
    if fmt == "jsonl":
        write_jsonl(records, stream)
    elif fmt == "csv":
        write_csv(records, stream)
    elif fmt == "prom":
        stream.write(prometheus_text(hub.registry))
    elif fmt == "table":
        stream.write(format_log_table(records) + "\n")
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown format {fmt!r}")


def run_trace(args: argparse.Namespace) -> int:
    name = args.experiment
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(
            f"unknown experiment {name!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    hub = replay(name, args)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            export(hub, args.format, fh)
        decisions = len(hub.decisions())
        print(
            f"wrote {decisions} decisions "
            f"({len(hub.records())} records) to {args.output}",
            file=sys.stderr,
        )
    else:
        export(hub, args.format, sys.stdout)
    return 0


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the ``trace`` subcommand's arguments on ``parser``."""
    parser.add_argument(
        "experiment",
        help="experiment to replay, e.g. fig06 (see: python -m repro list)",
    )
    parser.add_argument(
        "--format",
        default="table",
        choices=FORMATS,
        help="output format (default: table)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write to this file instead of stdout",
    )
    parser.add_argument(
        "--machine", default="xeon", choices=["xeon", "power8"]
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help="override the machine's logical core count",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="virtual seconds to run (default: experiment-specific)",
    )
