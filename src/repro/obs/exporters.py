"""Exporters: decision logs and metrics in interchange formats.

Three formats, matched to three consumers:

- **JSONL** — one JSON object per log record, ``kind``-tagged; lossless
  (parses back into the same dataclasses via :func:`read_jsonl`).
  The format for archiving runs and for downstream tooling.
- **CSV** — decisions only, fixed columns; for spreadsheets and pandas.
- **Prometheus text exposition** — the metrics registry rendered in
  the ``text/plain; version=0.0.4`` format a Prometheus scrape
  endpoint would serve.

All writers take an iterable of hub records (or a registry, for
Prometheus) and a text stream; ``*_lines`` helpers return strings for
callers that do their own IO.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import fields as dataclass_fields
from typing import IO, Iterable, Iterator, List, Sequence, Union

from ..runtime.events import Observation, PlacementChange, ThreadCountChange
from .decisions import Decision, LoggedEvent
from .registry import Counter, Gauge, Histogram, MetricsRegistry

Record = Union[Decision, LoggedEvent]

JSONL_VERSION = 1

_EVENT_TYPES = {
    "observation": Observation,
    "thread_change": ThreadCountChange,
    "placement_change": PlacementChange,
}


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def record_to_dict(record: Record) -> dict:
    """``kind``-tagged JSON-serializable form of one log record."""
    if isinstance(record, Decision):
        out = {"kind": "decision", "v": JSONL_VERSION}
        out.update(record.to_dict())
        return out
    if isinstance(record, LoggedEvent):
        out = {
            "kind": record.kind,
            "v": JSONL_VERSION,
            "seq": record.seq,
        }
        data = record.data
        for f in dataclass_fields(data):
            out[f.name] = getattr(data, f.name)
        return out
    raise TypeError(f"not a log record: {record!r}")


def record_from_dict(data: dict) -> Record:
    """Inverse of :func:`record_to_dict`."""
    kind = data.get("kind")
    if kind == "decision":
        return Decision.from_dict(data)
    event_type = _EVENT_TYPES.get(kind)
    if event_type is None:
        raise ValueError(f"unknown record kind {kind!r}")
    payload = {
        f.name: data[f.name] for f in dataclass_fields(event_type)
    }
    return LoggedEvent(
        seq=int(data["seq"]),
        kind=kind,
        time_s=float(data["time_s"]),
        data=event_type(**payload),
    )


def jsonl_lines(records: Iterable[Record]) -> Iterator[str]:
    for record in records:
        yield json.dumps(record_to_dict(record), sort_keys=True)


def write_jsonl(records: Iterable[Record], stream: IO[str]) -> int:
    """Write the log as JSONL; returns the number of lines written."""
    n = 0
    for line in jsonl_lines(records):
        stream.write(line + "\n")
        n += 1
    return n


def read_jsonl(source: Union[IO[str], Iterable[str]]) -> List[Record]:
    """Parse JSONL back into Decision / LoggedEvent records."""
    records: List[Record] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        records.append(record_from_dict(json.loads(line)))
    return records


# ----------------------------------------------------------------------
# CSV (decisions only — uniform columns)
# ----------------------------------------------------------------------
CSV_COLUMNS = [f.name for f in dataclass_fields(Decision)]


def write_csv(records: Iterable[Record], stream: IO[str]) -> int:
    """Write the decisions from a log as CSV; returns rows written."""
    writer = csv.writer(stream, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    n = 0
    for record in records:
        if not isinstance(record, Decision):
            continue
        row = record.to_dict()
        writer.writerow(["" if row[c] is None else row[c] for c in CSV_COLUMNS])
        n += 1
    return n


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if not safe or not (safe[0].isalpha() or safe[0] == "_"):
        safe = "_" + safe
    return "repro_" + safe


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_lines(registry: MetricsRegistry) -> Iterator[str]:
    for metric in registry:
        name = _prom_name(metric.name)
        if metric.description:
            yield f"# HELP {name} {metric.description}"
        yield f"# TYPE {name} {metric.kind}"
        if isinstance(metric, Counter):
            yield f"{name} {_prom_float(metric.value)}"
        elif isinstance(metric, Gauge):
            yield f"{name} {_prom_float(metric.value)}"
        elif isinstance(metric, Histogram):
            for bound, cum in metric.cumulative():
                yield (
                    f'{name}_bucket{{le="{_prom_float(bound)}"}} {cum}'
                )
            yield f"{name}_sum {_prom_float(metric.sum)}"
            yield f"{name}_count {metric.count}"


def write_prometheus(registry: MetricsRegistry, stream: IO[str]) -> None:
    for line in prometheus_lines(registry):
        stream.write(line + "\n")


def prometheus_text(registry: MetricsRegistry) -> str:
    buf = io.StringIO()
    write_prometheus(registry, buf)
    return buf.getvalue()


# ----------------------------------------------------------------------
# human-readable table (for the CLI's default output)
# ----------------------------------------------------------------------
_TABLE_COLUMNS = (
    "seq",
    "time_s",
    "kind",
    "rule",
    "mode",
    "trend",
    "observed",
    "change",
    "detail/note",
)


def _table_row(record: Record) -> Sequence[str]:
    if isinstance(record, Decision):
        change = []
        if record.set_threads is not None:
            change.append(f"threads={record.set_threads}")
        if record.set_n_queues is not None:
            change.append(f"queues={record.set_n_queues}")
        extra = record.detail
        if record.history_hit:
            extra = (extra + " " if extra else "") + "[history-hit]"
        if record.satisfaction is not None:
            extra = (
                extra + " " if extra else ""
            ) + f"[sf={record.satisfaction:.3f}]"
        if record.note:
            extra = (extra + " | " if extra else "") + record.note
        return (
            str(record.seq),
            f"{record.time_s:.0f}",
            "decision",
            record.rule,
            record.mode,
            record.trend,
            f"{record.observed:,.0f}",
            " ".join(change),
            extra,
        )
    data = record.data
    if isinstance(data, ThreadCountChange):
        desc = f"threads {data.old_threads}->{data.new_threads}"
    elif isinstance(data, PlacementChange):
        desc = f"queues {data.old_n_queues}->{data.new_n_queues}"
    else:  # Observation
        desc = (
            f"threads={data.threads} queues={data.n_queues} "
            f"mode={data.mode}"
        )
    observed = (
        f"{data.throughput:,.0f}" if isinstance(data, Observation) else ""
    )
    return (
        str(record.seq),
        f"{record.time_s:.0f}",
        record.kind,
        "",
        "",
        "",
        observed,
        desc if not isinstance(data, Observation) else "",
        desc if isinstance(data, Observation) else "",
    )


def format_log_table(
    records: Iterable[Record], include_observations: bool = False
) -> str:
    """Fixed-width table of the log, decisions and changes by default."""
    rows = [
        _table_row(r)
        for r in records
        if include_observations
        or not (isinstance(r, LoggedEvent) and r.kind == "observation")
    ]
    widths = [
        max(len(col), *(len(row[i]) for row in rows)) if rows else len(col)
        for i, col in enumerate(_TABLE_COLUMNS)
    ]
    lines = [
        "  ".join(
            col.ljust(widths[i]) for i, col in enumerate(_TABLE_COLUMNS)
        ).rstrip()
    ]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip()
        )
    return "\n".join(lines)
