"""The observability hub: one attach point for a whole elastic run.

An :class:`ObservabilityHub` bundles a :class:`~repro.obs.registry.
MetricsRegistry` with the unified, sequence-numbered decision/event
log.  The adaptation executor advances the hub's clock once per
period (:meth:`tick`); controllers emit :meth:`decision` records; the
executor produces the stable :mod:`repro.runtime.events` dataclasses
*through* the hub (:meth:`observation`, :meth:`thread_change`,
:meth:`placement_change`) so every trace event lands in the same
ordered log as the decision that caused it.

When nothing is attached, components hold :data:`NULL_HUB`, whose
methods construct the same event dataclasses but record nothing —
instrumented and un-instrumented runs are byte-identical.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..runtime.events import Observation, PlacementChange, ThreadCountChange
from .decisions import Decision, LoggedEvent
from .registry import MetricsRegistry, NULL_REGISTRY

Record = Union[Decision, LoggedEvent]

_THROUGHPUT_BUCKETS = (
    1e2,
    1e3,
    1e4,
    1e5,
    1e6,
    1e7,
    1e8,
)


class ObservabilityHub:
    """Live metrics + decision log for one (or more) elastic runs."""

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._log: List[Record] = []
        self._seq = 0
        self._now = 0.0
        self._period = -1
        reg = self.registry
        self._m_periods = reg.counter(
            "loop.periods", "adaptation periods executed"
        )
        self._m_decisions = reg.counter(
            "loop.decisions", "controller decisions emitted"
        )
        self._m_thread_changes = reg.counter(
            "loop.thread_changes", "applied scheduler-thread changes"
        )
        self._m_placement_changes = reg.counter(
            "loop.placement_changes", "applied queue-placement changes"
        )
        self._m_threads = reg.gauge(
            "loop.threads", "current scheduler thread count"
        )
        self._m_queues = reg.gauge(
            "loop.n_queues", "current scheduler queue count"
        )
        self._m_throughput = reg.histogram(
            "loop.observed_throughput",
            bounds=_THROUGHPUT_BUCKETS,
            description="observed throughput per adaptation period",
        )

    # ------------------------------------------------------------------
    # clock / sequencing
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def period(self) -> int:
        """Index of the current adaptation period (-1 before the first)."""
        return self._period

    def tick(self, time_s: float) -> None:
        """Advance the hub clock to the start of a new adaptation period."""
        self._now = time_s
        self._period += 1
        self._m_periods.inc()

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def decision(
        self,
        *,
        component: str,
        mode: str,
        rule: str,
        detail: str = "",
        observed: float = 0.0,
        trend: str = "flat",
        history_hit: bool = False,
        satisfaction: Optional[float] = None,
        set_threads: Optional[int] = None,
        set_n_queues: Optional[int] = None,
        note: str = "",
        scope: str = "",
    ) -> Decision:
        """Record one controller decision at the current clock/period."""
        record = Decision(
            seq=self._next_seq(),
            time_s=self._now,
            period=self._period,
            component=component,
            mode=mode,
            rule=rule,
            detail=detail,
            observed=observed,
            trend=trend,
            history_hit=history_hit,
            satisfaction=satisfaction,
            set_threads=set_threads,
            set_n_queues=set_n_queues,
            note=note,
            scope=scope,
        )
        self._log.append(record)
        self._m_decisions.inc()
        self.registry.counter(
            f"loop.rule.{rule}", f"decisions attributed to rule {rule}"
        ).inc()
        return record

    # ------------------------------------------------------------------
    # trace events (the stable public types, produced through the hub)
    # ------------------------------------------------------------------
    def observation(
        self,
        *,
        time_s: float,
        throughput: float,
        true_throughput: float,
        threads: int,
        n_queues: int,
        mode: str,
    ) -> Observation:
        event = Observation(
            time_s=time_s,
            throughput=throughput,
            true_throughput=true_throughput,
            threads=threads,
            n_queues=n_queues,
            mode=mode,
        )
        self._log.append(
            LoggedEvent(
                seq=self._next_seq(),
                kind="observation",
                time_s=time_s,
                data=event,
            )
        )
        self._m_threads.set(threads)
        self._m_queues.set(n_queues)
        self._m_throughput.observe(throughput)
        return event

    def thread_change(
        self, *, time_s: float, old_threads: int, new_threads: int
    ) -> ThreadCountChange:
        event = ThreadCountChange(
            time_s=time_s,
            old_threads=old_threads,
            new_threads=new_threads,
        )
        self._log.append(
            LoggedEvent(
                seq=self._next_seq(),
                kind="thread_change",
                time_s=time_s,
                data=event,
            )
        )
        self._m_thread_changes.inc()
        return event

    def placement_change(
        self, *, time_s: float, old_n_queues: int, new_n_queues: int
    ) -> PlacementChange:
        event = PlacementChange(
            time_s=time_s,
            old_n_queues=old_n_queues,
            new_n_queues=new_n_queues,
        )
        self._log.append(
            LoggedEvent(
                seq=self._next_seq(),
                kind="placement_change",
                time_s=time_s,
                data=event,
            )
        )
        self._m_placement_changes.inc()
        return event

    # ------------------------------------------------------------------
    # reading the log
    # ------------------------------------------------------------------
    def records(self) -> Tuple[Record, ...]:
        """The full log (decisions + events) in sequence order."""
        return tuple(self._log)

    def decisions(self) -> Tuple[Decision, ...]:
        return tuple(r for r in self._log if isinstance(r, Decision))

    def events(self, kind: Optional[str] = None) -> Tuple[LoggedEvent, ...]:
        return tuple(
            r
            for r in self._log
            if isinstance(r, LoggedEvent)
            and (kind is None or r.kind == kind)
        )

    def clear(self) -> None:
        """Drop the log (metrics keep accumulating)."""
        self._log.clear()


class NullHub:
    """Detached hub: produces the trace dataclasses, records nothing."""

    enabled = False
    registry = NULL_REGISTRY
    now = 0.0
    period = -1

    def tick(self, time_s: float) -> None:
        pass

    def decision(self, **kwargs) -> None:
        return None

    def observation(self, **kwargs) -> Observation:
        return Observation(**kwargs)

    def thread_change(self, **kwargs) -> ThreadCountChange:
        return ThreadCountChange(**kwargs)

    def placement_change(self, **kwargs) -> PlacementChange:
        return PlacementChange(**kwargs)

    def records(self) -> Tuple[Record, ...]:
        return ()

    def decisions(self) -> Tuple[Decision, ...]:
        return ()

    def events(self, kind: Optional[str] = None) -> Tuple[LoggedEvent, ...]:
        return ()

    def clear(self) -> None:
        pass


NULL_HUB = NullHub()

Obs = Union[ObservabilityHub, NullHub]


def ensure_hub(obs: Optional[Obs]) -> Obs:
    """Normalize an optional hub argument: ``None`` -> the null hub."""
    return NULL_HUB if obs is None else obs
