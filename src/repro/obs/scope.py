"""Scoped observability views for multi-PE jobs.

A multi-PE job runs several per-PE controller stacks against ONE
:class:`~repro.obs.hub.ObservabilityHub`, so the job's whole causal
story lands in a single sequence-ordered log.  To keep the streams
apart, each PE's components receive a :class:`ScopedObs` view of the
shared hub instead of the hub itself:

- metric names gain a dotted prefix (``pe.ingest.des.sink_tuples``),
  so per-PE counters never collide in the shared registry;
- decisions are tagged with the scope
  (:attr:`~repro.obs.decisions.Decision.scope`), so one PE's R1-R5
  trace is recoverable from the merged log with a filter — the
  property the multi-PE equivalence tests pin;
- everything else (clock, sequence numbers, trace events) forwards to
  the underlying hub unchanged, preserving total ordering across PEs.

Scopes nest: scoping an already-scoped view concatenates the prefixes
(``pe.ingest`` then ``profiler`` gives ``pe.ingest.profiler``).  The
null hub scopes to itself — detached multi-PE runs stay free.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .decisions import Decision, LoggedEvent
from .hub import NULL_HUB, Obs, ensure_hub
from .registry import MetricsRegistry


class ScopedRegistry:
    """Prefixing facade over a shared :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str, description: str = ""):
        return self._registry.counter(self._name(name), description)

    def gauge(self, name: str, description: str = ""):
        return self._registry.gauge(self._name(name), description)

    def histogram(self, name: str, *args, **kwargs):
        return self._registry.histogram(self._name(name), *args, **kwargs)

    def get(self, name: str):
        return self._registry.get(self._name(name))


class ScopedObs:
    """A hub view that namespaces metrics and tags decisions.

    Duck-typed to the :data:`~repro.obs.hub.Obs` interface, so any
    component taking ``obs`` works unchanged inside a job.
    """

    def __init__(self, obs: Optional[Obs], scope: str) -> None:
        base = ensure_hub(obs)
        if isinstance(base, ScopedObs):
            scope = f"{base.scope}.{scope}"
            base = base.hub
        self.hub = base
        self.scope = scope
        self.enabled = base.enabled
        self.registry = ScopedRegistry(base.registry, scope)

    # ------------------------------------------------------------------
    # clock / sequencing (shared with the job)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.hub.now

    @property
    def period(self) -> int:
        return self.hub.period

    def tick(self, time_s: float) -> None:
        self.hub.tick(time_s)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def decision(self, **kwargs):
        kwargs.setdefault("scope", self.scope)
        return self.hub.decision(**kwargs)

    def observation(self, **kwargs):
        return self.hub.observation(**kwargs)

    def thread_change(self, **kwargs):
        return self.hub.thread_change(**kwargs)

    def placement_change(self, **kwargs):
        return self.hub.placement_change(**kwargs)

    # ------------------------------------------------------------------
    # reading (decisions filtered to this scope; events shared)
    # ------------------------------------------------------------------
    def records(self):
        return self.hub.records()

    def decisions(self) -> Tuple[Decision, ...]:
        return tuple(
            d for d in self.hub.decisions() if d.scope == self.scope
        )

    def events(self, kind: Optional[str] = None) -> Tuple[LoggedEvent, ...]:
        return self.hub.events(kind)

    def clear(self) -> None:
        self.hub.clear()


def scoped(obs: Optional[Obs], scope: str):
    """Scope a hub view, short-circuiting the null hub (detached runs
    pay nothing for scoping)."""
    base = ensure_hub(obs)
    if base is NULL_HUB:
        return NULL_HUB
    return ScopedObs(base, scope)
