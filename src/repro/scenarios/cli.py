"""CLI handlers for the scenario zoo.

Wired into the main ``repro`` parser (:mod:`repro.cli`):

- ``repro scenarios list`` — the zoo's names, shapes and workloads;
- ``repro scenarios validate <path|name> ...`` — schema + structural
  validation with field-level error messages, plus a serialization
  round-trip check (parse → serialize → parse must be identity);
- ``repro bench --scenario X [--backend des|perfmodel|both]`` — run a
  named scenario end to end and print the per-backend outcome.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..bench.reporting import format_table
from .compile import compile_scenario, load_scenario
from .schema import ScenarioError, scenario_from_dict, scenario_to_dict
from .zoo import find_scenario, scenario_dir, scenario_files


def _workload_summary(scenario) -> str:
    arr = scenario.workload.arrivals
    if not arr.open_loop:
        return "saturated"
    mod = arr.modulation
    desc = f"{arr.kind.value}@{arr.rate:g}/s"
    if mod.kind.value != "none":
        desc += f" {mod.kind.value}"
    return desc


def cmd_list(args: argparse.Namespace) -> int:
    files = scenario_files(args.dir)
    if not files:
        print(
            f"no scenario configs found in {scenario_dir(args.dir)}",
            file=sys.stderr,
        )
        return 1
    rows = []
    for path in files:
        try:
            s = load_scenario(path)
        except ScenarioError as exc:
            rows.append([path.stem, "<invalid>", "", str(exc)])
            continue
        rows.append(
            [
                s.name,
                s.topology.shape.value,
                _workload_summary(s),
                s.description,
            ]
        )
    print(
        format_table(
            ["scenario", "shape", "workload", "description"],
            rows,
            title=f"scenario zoo ({scenario_dir(args.dir)})",
        )
    )
    return 0


def validate_one(path, check_roundtrip: bool = True) -> List[str]:
    """Validate one config file; returns a list of error strings."""
    try:
        scenario = load_scenario(path)
    except ScenarioError as exc:
        return [str(exc)]
    try:
        compile_scenario(scenario)
    except ScenarioError as exc:
        return [str(exc)]
    if check_roundtrip:
        try:
            again = scenario_from_dict(scenario_to_dict(scenario))
        except ScenarioError as exc:
            return [f"serialization round-trip failed to re-parse: {exc}"]
        if again != scenario:
            return [
                "serialization round-trip changed the scenario "
                "(parse -> serialize -> parse is not the identity)"
            ]
    return []


def cmd_validate(args: argparse.Namespace) -> int:
    failures = 0
    for ref in args.path:
        try:
            path = find_scenario(ref, args.dir)
        except ScenarioError as exc:
            print(f"FAIL {ref}: {exc}")
            failures += 1
            continue
        errors = validate_one(path)
        if errors:
            failures += 1
            for err in errors:
                print(f"FAIL {path}: {err}")
        else:
            print(f"ok   {path}")
    if failures:
        print(
            f"{failures} of {len(args.path)} scenario(s) failed validation",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .run import run_scenario

    try:
        path = find_scenario(args.scenario, args.dir)
        compiled = compile_scenario(load_scenario(path))
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results = run_scenario(
        compiled,
        backend=args.backend,
        jobs=getattr(args, "jobs", None),
        warm_start=getattr(args, "warm_start", None),
    )
    rows = []
    for r in results:
        rows.append(
            [
                r.backend,
                r.periods,
                r.converged_throughput,
                r.final_threads,
                r.final_n_queues,
                f"{r.offered_utilization:.2f}" if r.open_loop else "-",
                int(r.dropped_tuples) if r.open_loop else "-",
            ]
        )
    workload = _workload_summary(compiled.scenario)
    print(
        format_table(
            [
                "backend",
                "periods",
                "converged T/s",
                "threads",
                "queues",
                "offered util",
                "dropped",
            ],
            rows,
            title=(
                f"scenario {compiled.scenario.name!r} "
                f"({compiled.scenario.topology.shape.value}, {workload}, "
                f"{compiled.machine.name})"
            ),
        )
    )
    for r in results:
        if r.pe_replicas:
            plan = ", ".join(f"{n}={c}" for n, c in r.pe_replicas)
            print(f"final replicas ({r.backend}): {plan}")
    return 0
