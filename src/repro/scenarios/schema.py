"""Declarative scenario schema: the validated vocabulary of the zoo.

A *scenario* is everything needed to reproduce one elastic run: a graph
shape, an operator cost profile, a machine profile, a time-varying
open-loop workload and the run settings.  Scenarios are plain data —
stdlib dataclasses with enum-controlled vocabularies — so they travel
as YAML/JSON documents, round-trip losslessly and fail loudly with
errors that *name the offending field* ("workload.arrivals.rate: must
be > 0, got -5.0").

The schema deliberately mirrors the shape of AsyncFlow's Pydantic
``SimulationPayload`` (workload profile / topology graph / settings)
without the dependency: every leaf is validated in
:func:`scenario_from_dict` with a dotted field path, and every enum
error lists the accepted values.

Layers
------
- :class:`TopologySpec` — graph shape (pipeline / data-parallel fan /
  mixed / tree / diamond / custom node list) + cost profile + payload.
- :class:`WorkloadSpec` — the open-loop arrival process
  (:class:`ArrivalSpec` — saturated / deterministic / Poisson, with a
  :class:`ModulationSpec` rate envelope: diurnal, ON/OFF bursts, flash
  crowds, ramps) and the payload-size mix.
- :class:`MachineSpec` — named machine profile + core count.
- :class:`RunSpec` — backend, seed, measurement windows, queue
  capacity and overflow policy.
- :class:`ChannelSpec` — DES batched-channel knobs (batch size, flush
  timeout, prefetch, analytic fast-forward).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple


class ScenarioError(ValueError):
    """A scenario document violates the schema.

    Carries the dotted path of the offending field so tooling (and
    humans) can jump straight to it.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}" if path else message)


# ----------------------------------------------------------------------
# enum vocabulary
# ----------------------------------------------------------------------
class TopologyShape(enum.Enum):
    PIPELINE = "pipeline"
    DATA_PARALLEL = "data_parallel"
    MIXED = "mixed"
    TREE = "tree"
    DIAMOND = "diamond"
    CUSTOM = "custom"


class CostKind(enum.Enum):
    BALANCED = "balanced"
    SKEWED = "skewed"


class ArrivalKind(enum.Enum):
    """How tuples enter the PE.

    ``SATURATED`` is the paper's implicit closed-loop assumption: the
    source always has a next tuple, so measured throughput equals
    capacity.  The other kinds are *open-loop*: tuples arrive on an
    external schedule, the source admits them when due, and throughput
    is bounded by offered load.
    """

    SATURATED = "saturated"
    DETERMINISTIC = "deterministic"
    POISSON = "poisson"


class ModulationKind(enum.Enum):
    """Time-varying shape applied to the base arrival rate."""

    NONE = "none"
    DIURNAL = "diurnal"
    ONOFF = "onoff"
    FLASH_CROWD = "flash_crowd"
    RAMP = "ramp"


class PayloadKind(enum.Enum):
    FIXED = "fixed"
    MIX = "mix"


class OverflowPolicy(enum.Enum):
    """What an open-loop source does when its ingress queue is full.

    ``BLOCK`` keeps the closed-loop backpressure semantics (the source
    stalls, helping drain downstream).  ``DROP`` is ingress load
    shedding: the tuple is discarded and counted
    (``des.dropped_tuples``), which is what lets bounded queues
    actually overflow under a burst instead of silently throttling the
    arrival process.
    """

    BLOCK = "block"
    DROP = "drop"


class Backend(enum.Enum):
    DES = "des"
    PERFMODEL = "perfmodel"
    BOTH = "both"


class MachineName(enum.Enum):
    XEON = "xeon"
    POWER8 = "power8"
    LAPTOP = "laptop"


class PartitionStrategy(enum.Enum):
    """How tuples route across the replicas of a downstream PE.

    Mirrors the partition-strategy vocabulary of streaming dataflow
    systems (Ray streaming's ``PStrategy``, Flink's partitioners):

    - ``forward``: pass-through to a single replica — the strategy a
      1:1 inter-PE edge uses; requires ``replicas == 1`` downstream.
    - ``round_robin``: tuple ``i`` goes to replica ``i mod R``.
    - ``shuffle``: seeded-hash of the tuple sequence number — a
      deterministic stand-in for random spraying.
    - ``key_hash``: seeded-hash of the tuple key over a synthetic
      ``key_space``; replica shares follow the key-popularity split.
    - ``broadcast``: every replica receives every tuple.

    Defined here (not in :mod:`repro.job`) so the scenario schema has
    no import edge into the job layer — the job layer imports *us*.
    """

    FORWARD = "forward"
    ROUND_ROBIN = "round_robin"
    SHUFFLE = "shuffle"
    KEY_HASH = "key_hash"
    BROADCAST = "broadcast"


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostSpec:
    """Per-operator cost profile for generated shapes."""

    kind: CostKind = CostKind.BALANCED
    flops: float = 100.0
    heavy_fraction: float = 0.10
    medium_fraction: float = 0.30
    heavy_flops: float = 10_000.0
    medium_flops: float = 100.0
    light_flops: float = 1.0
    seed: Optional[int] = None


@dataclass(frozen=True)
class NodeSpec:
    """One operator of a custom topology."""

    name: str
    kind: str = "functional"  # source | functional | sink
    cost_flops: float = 100.0
    selectivity: float = 1.0
    uses_lock: bool = False
    fanout: str = "broadcast"  # broadcast | split
    max_rate: Optional[float] = None


@dataclass(frozen=True)
class TopologySpec:
    """Graph shape + parameters.

    Which parameters apply depends on ``shape``:

    - ``pipeline``: ``operators``
    - ``data_parallel``: ``width``
    - ``mixed``: ``width`` x ``depth``
    - ``tree``: ``levels`` (the Fig. 8(d) bushy split/merge tree)
    - ``diamond``: ``width`` parallel branches between a broadcast
      head and a merge operator
    - ``custom``: explicit ``nodes`` + ``edges`` (by operator name)
    """

    shape: TopologyShape = TopologyShape.PIPELINE
    operators: int = 8
    width: int = 4
    depth: int = 4
    levels: int = 3
    payload_bytes: int = 128
    cost: CostSpec = field(default_factory=CostSpec)
    nodes: Tuple[NodeSpec, ...] = ()
    edges: Tuple[Tuple[str, str], ...] = ()


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModulationSpec:
    """Piecewise rate envelope applied to the base arrival rate.

    Parameters by ``kind`` (unused ones are ignored):

    - ``diurnal``: sinusoid between ``low_factor`` and ``high_factor``
      with period ``period_s``, discretized into ``steps`` constant
      slots per period.
    - ``onoff``: ``on_s`` seconds at the base rate, then ``off_s``
      seconds of silence, repeating.
    - ``flash_crowd``: base rate until ``at_s``; linear ramp to
      ``factor`` x base over ``ramp_s``; hold ``hold_s``; ramp back
      down over ``ramp_s``; base rate forever after.
    - ``ramp``: ``low_factor`` x base until ``at_s``, then a linear
      ramp to ``high_factor`` x base over ``ramp_s``, holding there.
    """

    kind: ModulationKind = ModulationKind.NONE
    period_s: float = 60.0
    low_factor: float = 0.2
    high_factor: float = 1.0
    steps: int = 32
    on_s: float = 1.0
    off_s: float = 1.0
    at_s: float = 0.0
    ramp_s: float = 1.0
    hold_s: float = 1.0
    factor: float = 5.0


@dataclass(frozen=True)
class ArrivalSpec:
    """The open-loop arrival process of every source operator.

    ``rate`` is the base arrival rate in tuples/s per source
    (irrelevant for ``saturated``).  ``seed`` overrides the run seed
    for the arrival stream alone.
    """

    kind: ArrivalKind = ArrivalKind.SATURATED
    rate: float = 0.0
    modulation: ModulationSpec = field(default_factory=ModulationSpec)
    seed: Optional[int] = None

    @property
    def open_loop(self) -> bool:
        return self.kind is not ArrivalKind.SATURATED


@dataclass(frozen=True)
class PayloadChoice:
    payload_bytes: int
    weight: float


@dataclass(frozen=True)
class PayloadSpec:
    """Tuple payload size, fixed or a weighted mix.

    A mix compiles to its weighted-mean payload (both substrates charge
    copy cost per tuple from a single static spec), preserving the
    aggregate bandwidth demand of the declared mix.
    """

    kind: PayloadKind = PayloadKind.FIXED
    payload_bytes: int = 0  # 0 = inherit topology.payload_bytes
    mix: Tuple[PayloadChoice, ...] = ()


@dataclass(frozen=True)
class WorkloadSpec:
    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    payload: PayloadSpec = field(default_factory=PayloadSpec)


# ----------------------------------------------------------------------
# channel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChannelSpec:
    """Batched-channel configuration for the DES backend.

    Mirrors :class:`repro.des.channels.ChannelConfig`: ``batch_size``
    tuples move per coalesced simulator event, ``flush_timeout_ms``
    bounds the simulated span one burst event may cover (``None``
    leaves the batch size as the only bound), ``prefetch`` lets a
    scheduler thread drain extra batches from a claimed port before
    rescanning (trades work-finding fidelity for fewer events), and
    ``fastforward`` enables analytic fast-forwarding of settled
    windows.  The defaults are byte-compatible with historical runs.
    """

    batch_size: int = 8
    flush_timeout_ms: Optional[float] = None
    prefetch: int = 0
    fastforward: bool = False


# ----------------------------------------------------------------------
# machine + run settings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MachineSpec:
    profile: MachineName = MachineName.LAPTOP
    cores: Optional[int] = None


@dataclass(frozen=True)
class RunSpec:
    """Execution settings shared by both backends.

    ``warmup_s`` / ``measure_s`` / ``queue_capacity`` / ``overflow`` /
    ``max_periods`` drive the DES backend; ``duration_s`` drives the
    perfmodel backend's virtual-clock executor.  ``jobs`` is the
    worker-pool width for multi-PE scenarios (None defers to the
    ``--jobs`` flag / ``REPRO_JOB_WORKERS``; 1 forces the sequential
    path); single-PE scenarios ignore it.  ``warm_start`` selects the
    coordinator seeding policy (``off`` / ``model`` / ``history`` /
    ``auto``; None defers to the ``--warm-start`` flag /
    ``REPRO_WARM_START``, which default to ``off``).
    """

    backend: Backend = Backend.BOTH
    seed: int = 0
    adaptation_period_s: Optional[float] = None
    warmup_s: float = 0.001
    measure_s: float = 0.004
    queue_capacity: int = 16
    overflow: OverflowPolicy = OverflowPolicy.BLOCK
    max_periods: int = 60
    stop_after_stable_periods: Optional[int] = 8
    duration_s: float = 2000.0
    profile_from_execution: bool = True
    jobs: Optional[int] = None
    warm_start: Optional[str] = None


@dataclass(frozen=True)
class PeSpec:
    """One processing element of a multi-PE job.

    ``operators`` names the scenario-topology operators this PE owns
    (every operator must be assigned to exactly one PE).  ``replicas``
    is the initial data-parallel width; with ``elastic: true`` the
    job-level coordinator may scale the PE out/in between 1 and
    ``max_replicas`` replicas at run time.  Elastic PEs must be
    stateless in the paper's sense: no lock-using operators.
    """

    name: str
    operators: Tuple[str, ...] = ()
    replicas: int = 1
    elastic: bool = False
    max_replicas: int = 8


@dataclass(frozen=True)
class PartitionSpec:
    """How inter-PE channels route tuples across downstream replicas.

    ``seed`` overrides the run seed for routing alone; ``key_space``
    is the synthetic key cardinality ``key_hash`` distributes over.
    """

    strategy: PartitionStrategy = PartitionStrategy.FORWARD
    seed: Optional[int] = None
    key_space: int = 1024


@dataclass(frozen=True)
class Scenario:
    """A complete, validated scenario document."""

    name: str
    description: str = ""
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    machine: MachineSpec = field(default_factory=MachineSpec)
    run: RunSpec = field(default_factory=RunSpec)
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    pes: Tuple[PeSpec, ...] = ()
    partition: PartitionSpec = field(default_factory=PartitionSpec)


FORMAT_VERSION = 1

_VALID_NODE_KINDS = ("source", "functional", "sink")
_VALID_FANOUTS = ("broadcast", "split")


# ----------------------------------------------------------------------
# parsing helpers (every error names its field)
# ----------------------------------------------------------------------
def _mapping(data: Any, path: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise ScenarioError(
            path, f"expected a mapping, got {type(data).__name__}"
        )
    return data


def _check_keys(data: Mapping, path: str, allowed: Tuple[str, ...]) -> None:
    for key in data:
        if key not in allowed:
            raise ScenarioError(
                f"{path}.{key}" if path else str(key),
                f"unknown field (valid fields: {', '.join(allowed)})",
            )


def _enum(value: Any, path: str, enum_cls: Any) -> Any:
    try:
        return enum_cls(value)
    except ValueError:
        valid = ", ".join(repr(e.value) for e in enum_cls)
        raise ScenarioError(
            path,
            f"unknown value {value!r} (valid values: {valid})",
        ) from None


def _number(
    value: Any,
    path: str,
    *,
    integer: bool = False,
    minimum: Optional[float] = None,
    positive: bool = False,
    nonnegative: bool = False,
) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(
            path, f"expected a number, got {value!r}"
        )
    if integer and int(value) != value:
        raise ScenarioError(path, f"expected an integer, got {value!r}")
    num = int(value) if integer else float(value)
    if positive and num <= 0:
        raise ScenarioError(path, f"must be > 0, got {num}")
    if nonnegative and num < 0:
        raise ScenarioError(path, f"must be >= 0, got {num}")
    if minimum is not None and num < minimum:
        raise ScenarioError(path, f"must be >= {minimum}, got {num}")
    return num


def _string(value: Any, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise ScenarioError(
            path, f"expected a non-empty string, got {value!r}"
        )
    return value


def _bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(path, f"expected a boolean, got {value!r}")
    return value


# ----------------------------------------------------------------------
# from_dict
# ----------------------------------------------------------------------
def _cost_from_dict(data: Any, path: str) -> CostSpec:
    data = _mapping(data, path)
    _check_keys(
        data,
        path,
        (
            "kind",
            "flops",
            "heavy_fraction",
            "medium_fraction",
            "heavy_flops",
            "medium_flops",
            "light_flops",
            "seed",
        ),
    )
    kind = _enum(data.get("kind", "balanced"), f"{path}.kind", CostKind)
    spec = CostSpec(
        kind=kind,
        flops=_number(
            data.get("flops", 100.0), f"{path}.flops", nonnegative=True
        ),
        heavy_fraction=_number(
            data.get("heavy_fraction", 0.10),
            f"{path}.heavy_fraction",
            nonnegative=True,
        ),
        medium_fraction=_number(
            data.get("medium_fraction", 0.30),
            f"{path}.medium_fraction",
            nonnegative=True,
        ),
        heavy_flops=_number(
            data.get("heavy_flops", 10_000.0),
            f"{path}.heavy_flops",
            nonnegative=True,
        ),
        medium_flops=_number(
            data.get("medium_flops", 100.0),
            f"{path}.medium_flops",
            nonnegative=True,
        ),
        light_flops=_number(
            data.get("light_flops", 1.0),
            f"{path}.light_flops",
            nonnegative=True,
        ),
        seed=(
            _number(data["seed"], f"{path}.seed", integer=True)
            if data.get("seed") is not None
            else None
        ),
    )
    if spec.heavy_fraction + spec.medium_fraction > 1.0:
        raise ScenarioError(
            f"{path}.heavy_fraction",
            "heavy_fraction + medium_fraction must be <= 1, got "
            f"{spec.heavy_fraction + spec.medium_fraction}",
        )
    return spec


def _node_from_dict(data: Any, path: str) -> NodeSpec:
    data = _mapping(data, path)
    _check_keys(
        data,
        path,
        (
            "name",
            "kind",
            "cost_flops",
            "selectivity",
            "uses_lock",
            "fanout",
            "max_rate",
        ),
    )
    if "name" not in data:
        raise ScenarioError(f"{path}.name", "operator name is required")
    kind = data.get("kind", "functional")
    if kind not in _VALID_NODE_KINDS:
        raise ScenarioError(
            f"{path}.kind",
            f"unknown value {kind!r} "
            f"(valid values: {', '.join(map(repr, _VALID_NODE_KINDS))})",
        )
    fanout = data.get("fanout", "broadcast")
    if fanout not in _VALID_FANOUTS:
        raise ScenarioError(
            f"{path}.fanout",
            f"unknown value {fanout!r} "
            f"(valid values: {', '.join(map(repr, _VALID_FANOUTS))})",
        )
    return NodeSpec(
        name=_string(data["name"], f"{path}.name"),
        kind=kind,
        cost_flops=_number(
            data.get("cost_flops", 100.0),
            f"{path}.cost_flops",
            nonnegative=True,
        ),
        selectivity=_number(
            data.get("selectivity", 1.0),
            f"{path}.selectivity",
            nonnegative=True,
        ),
        uses_lock=_bool(
            data.get("uses_lock", False), f"{path}.uses_lock"
        ),
        fanout=fanout,
        max_rate=(
            _number(data["max_rate"], f"{path}.max_rate", positive=True)
            if data.get("max_rate") is not None
            else None
        ),
    )


def _topology_from_dict(data: Any, path: str) -> TopologySpec:
    data = _mapping(data, path)
    _check_keys(
        data,
        path,
        (
            "shape",
            "operators",
            "width",
            "depth",
            "levels",
            "payload_bytes",
            "cost",
            "nodes",
            "edges",
        ),
    )
    shape = _enum(
        data.get("shape", "pipeline"), f"{path}.shape", TopologyShape
    )
    nodes: Tuple[NodeSpec, ...] = ()
    edges: Tuple[Tuple[str, str], ...] = ()
    if shape is TopologyShape.CUSTOM:
        raw_nodes = data.get("nodes")
        if not isinstance(raw_nodes, (list, tuple)) or not raw_nodes:
            raise ScenarioError(
                f"{path}.nodes",
                "custom topologies require a non-empty node list",
            )
        nodes = tuple(
            _node_from_dict(n, f"{path}.nodes[{i}]")
            for i, n in enumerate(raw_nodes)
        )
        names = [n.name for n in nodes]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ScenarioError(
                f"{path}.nodes", f"duplicate operator names: {dupes}"
            )
        raw_edges = data.get("edges")
        if not isinstance(raw_edges, (list, tuple)) or not raw_edges:
            raise ScenarioError(
                f"{path}.edges",
                "custom topologies require a non-empty edge list",
            )
        known = set(names)
        parsed = []
        for i, e in enumerate(raw_edges):
            epath = f"{path}.edges[{i}]"
            if not isinstance(e, (list, tuple)) or len(e) != 2:
                raise ScenarioError(
                    epath, f"expected a [src, dst] pair, got {e!r}"
                )
            src, dst = _string(e[0], f"{epath}[0]"), _string(
                e[1], f"{epath}[1]"
            )
            for end, which in ((src, 0), (dst, 1)):
                if end not in known:
                    raise ScenarioError(
                        f"{epath}[{which}]",
                        f"unknown operator name {end!r} "
                        f"(known: {', '.join(sorted(known))})",
                    )
            if src == dst:
                raise ScenarioError(
                    epath, f"self loops are not allowed ({src!r})"
                )
            parsed.append((src, dst))
        edges = tuple(parsed)
    elif data.get("nodes") or data.get("edges"):
        raise ScenarioError(
            f"{path}.nodes",
            f"nodes/edges are only valid for shape 'custom', "
            f"not {shape.value!r}",
        )
    return TopologySpec(
        shape=shape,
        operators=_number(
            data.get("operators", 8),
            f"{path}.operators",
            integer=True,
            minimum=1,
        ),
        width=_number(
            data.get("width", 4), f"{path}.width", integer=True, minimum=1
        ),
        depth=_number(
            data.get("depth", 4), f"{path}.depth", integer=True, minimum=1
        ),
        levels=_number(
            data.get("levels", 3), f"{path}.levels", integer=True, minimum=1
        ),
        payload_bytes=_number(
            data.get("payload_bytes", 128),
            f"{path}.payload_bytes",
            integer=True,
            nonnegative=True,
        ),
        cost=_cost_from_dict(data.get("cost", {}), f"{path}.cost"),
        nodes=nodes,
        edges=edges,
    )


def _modulation_from_dict(data: Any, path: str) -> ModulationSpec:
    data = _mapping(data, path)
    _check_keys(
        data,
        path,
        (
            "kind",
            "period_s",
            "low_factor",
            "high_factor",
            "steps",
            "on_s",
            "off_s",
            "at_s",
            "ramp_s",
            "hold_s",
            "factor",
        ),
    )
    kind = _enum(data.get("kind", "none"), f"{path}.kind", ModulationKind)
    spec = ModulationSpec(
        kind=kind,
        period_s=_number(
            data.get("period_s", 60.0), f"{path}.period_s", positive=True
        ),
        low_factor=_number(
            data.get("low_factor", 0.2),
            f"{path}.low_factor",
            nonnegative=True,
        ),
        high_factor=_number(
            data.get("high_factor", 1.0),
            f"{path}.high_factor",
            nonnegative=True,
        ),
        steps=_number(
            data.get("steps", 32), f"{path}.steps", integer=True, minimum=2
        ),
        on_s=_number(
            data.get("on_s", 1.0), f"{path}.on_s", positive=True
        ),
        off_s=_number(
            data.get("off_s", 1.0), f"{path}.off_s", nonnegative=True
        ),
        at_s=_number(
            data.get("at_s", 0.0), f"{path}.at_s", nonnegative=True
        ),
        ramp_s=_number(
            data.get("ramp_s", 1.0), f"{path}.ramp_s", positive=True
        ),
        hold_s=_number(
            data.get("hold_s", 1.0), f"{path}.hold_s", nonnegative=True
        ),
        factor=_number(
            data.get("factor", 5.0), f"{path}.factor", positive=True
        ),
    )
    if kind is ModulationKind.DIURNAL and spec.low_factor > spec.high_factor:
        raise ScenarioError(
            f"{path}.low_factor",
            f"low_factor ({spec.low_factor}) must not exceed "
            f"high_factor ({spec.high_factor})",
        )
    return spec


def _arrivals_from_dict(data: Any, path: str) -> ArrivalSpec:
    data = _mapping(data, path)
    _check_keys(data, path, ("kind", "rate", "modulation", "seed"))
    kind = _enum(data.get("kind", "saturated"), f"{path}.kind", ArrivalKind)
    rate = 0.0
    if kind is not ArrivalKind.SATURATED:
        if "rate" not in data:
            raise ScenarioError(
                f"{path}.rate",
                f"open-loop arrivals ({kind.value!r}) require a rate",
            )
        rate = _number(data["rate"], f"{path}.rate", positive=True)
    elif data.get("rate"):  # zero/absent is fine for saturated
        raise ScenarioError(
            f"{path}.rate",
            "saturated arrivals take no rate (remove the field or "
            "pick an open-loop kind)",
        )
    return ArrivalSpec(
        kind=kind,
        rate=rate,
        modulation=_modulation_from_dict(
            data.get("modulation", {}), f"{path}.modulation"
        ),
        seed=(
            _number(data["seed"], f"{path}.seed", integer=True)
            if data.get("seed") is not None
            else None
        ),
    )


def _payload_from_dict(data: Any, path: str) -> PayloadSpec:
    data = _mapping(data, path)
    _check_keys(data, path, ("kind", "payload_bytes", "mix"))
    kind = _enum(data.get("kind", "fixed"), f"{path}.kind", PayloadKind)
    mix: Tuple[PayloadChoice, ...] = ()
    if kind is PayloadKind.MIX:
        raw = data.get("mix")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ScenarioError(
                f"{path}.mix", "payload mix requires a non-empty list"
            )
        entries = []
        for i, entry in enumerate(raw):
            epath = f"{path}.mix[{i}]"
            entry = _mapping(entry, epath)
            _check_keys(entry, epath, ("payload_bytes", "weight"))
            if "payload_bytes" not in entry:
                raise ScenarioError(
                    f"{epath}.payload_bytes", "payload_bytes is required"
                )
            entries.append(
                PayloadChoice(
                    payload_bytes=_number(
                        entry["payload_bytes"],
                        f"{epath}.payload_bytes",
                        integer=True,
                        nonnegative=True,
                    ),
                    weight=_number(
                        entry.get("weight", 1.0),
                        f"{epath}.weight",
                        positive=True,
                    ),
                )
            )
        mix = tuple(entries)
    elif data.get("mix"):
        raise ScenarioError(
            f"{path}.mix", "mix entries are only valid for kind 'mix'"
        )
    return PayloadSpec(
        kind=kind,
        payload_bytes=_number(
            data.get("payload_bytes", 0),
            f"{path}.payload_bytes",
            integer=True,
            nonnegative=True,
        ),
        mix=mix,
    )


def _workload_from_dict(data: Any, path: str) -> WorkloadSpec:
    data = _mapping(data, path)
    _check_keys(data, path, ("arrivals", "payload"))
    return WorkloadSpec(
        arrivals=_arrivals_from_dict(
            data.get("arrivals", {}), f"{path}.arrivals"
        ),
        payload=_payload_from_dict(
            data.get("payload", {}), f"{path}.payload"
        ),
    )


def _channel_from_dict(data: Any, path: str) -> ChannelSpec:
    data = _mapping(data, path)
    _check_keys(
        data,
        path,
        ("batch_size", "flush_timeout_ms", "prefetch", "fastforward"),
    )
    return ChannelSpec(
        batch_size=_number(
            data.get("batch_size", 8),
            f"{path}.batch_size",
            integer=True,
            minimum=1,
        ),
        flush_timeout_ms=(
            _number(
                data["flush_timeout_ms"],
                f"{path}.flush_timeout_ms",
                positive=True,
            )
            if data.get("flush_timeout_ms") is not None
            else None
        ),
        prefetch=_number(
            data.get("prefetch", 0),
            f"{path}.prefetch",
            integer=True,
            nonnegative=True,
        ),
        fastforward=_bool(
            data.get("fastforward", False), f"{path}.fastforward"
        ),
    )


def _machine_from_dict(data: Any, path: str) -> MachineSpec:
    data = _mapping(data, path)
    _check_keys(data, path, ("profile", "cores"))
    return MachineSpec(
        profile=_enum(
            data.get("profile", "laptop"), f"{path}.profile", MachineName
        ),
        cores=(
            _number(
                data["cores"], f"{path}.cores", integer=True, minimum=1
            )
            if data.get("cores") is not None
            else None
        ),
    )


def _run_from_dict(data: Any, path: str) -> RunSpec:
    data = _mapping(data, path)
    _check_keys(
        data,
        path,
        (
            "backend",
            "seed",
            "adaptation_period_s",
            "warmup_s",
            "measure_s",
            "queue_capacity",
            "overflow",
            "max_periods",
            "stop_after_stable_periods",
            "duration_s",
            "profile_from_execution",
            "jobs",
            "warm_start",
        ),
    )
    return RunSpec(
        backend=_enum(data.get("backend", "both"), f"{path}.backend", Backend),
        seed=_number(
            data.get("seed", 0), f"{path}.seed", integer=True
        ),
        adaptation_period_s=(
            _number(
                data["adaptation_period_s"],
                f"{path}.adaptation_period_s",
                positive=True,
            )
            if data.get("adaptation_period_s") is not None
            else None
        ),
        warmup_s=_number(
            data.get("warmup_s", 0.001), f"{path}.warmup_s", nonnegative=True
        ),
        measure_s=_number(
            data.get("measure_s", 0.004), f"{path}.measure_s", positive=True
        ),
        queue_capacity=_number(
            data.get("queue_capacity", 16),
            f"{path}.queue_capacity",
            integer=True,
            minimum=1,
        ),
        overflow=_enum(
            data.get("overflow", "block"), f"{path}.overflow", OverflowPolicy
        ),
        max_periods=_number(
            data.get("max_periods", 60),
            f"{path}.max_periods",
            integer=True,
            minimum=1,
        ),
        stop_after_stable_periods=(
            _number(
                data["stop_after_stable_periods"],
                f"{path}.stop_after_stable_periods",
                integer=True,
                minimum=1,
            )
            if data.get("stop_after_stable_periods") is not None
            else None
        ),
        duration_s=_number(
            data.get("duration_s", 2000.0),
            f"{path}.duration_s",
            positive=True,
        ),
        profile_from_execution=_bool(
            data.get("profile_from_execution", True),
            f"{path}.profile_from_execution",
        ),
        jobs=(
            _number(
                data["jobs"],
                f"{path}.jobs",
                integer=True,
                minimum=1,
            )
            if data.get("jobs") is not None
            else None
        ),
        warm_start=_warm_start_mode(
            data.get("warm_start"), f"{path}.warm_start"
        ),
    )


def _warm_start_mode(value: Any, path: str) -> Optional[str]:
    if value is None:
        return None
    from ..core.warmstart import VALID_MODES

    if not isinstance(value, str) or value not in VALID_MODES:
        raise ScenarioError(
            path,
            f"unknown value {value!r} "
            f"(valid values: {', '.join(VALID_MODES)})",
        )
    return value


def _pe_from_dict(data: Any, path: str) -> PeSpec:
    data = _mapping(data, path)
    _check_keys(
        data,
        path,
        ("name", "operators", "replicas", "elastic", "max_replicas"),
    )
    if "name" not in data:
        raise ScenarioError(f"{path}.name", "PE name is required")
    operators = data.get("operators", [])
    if not isinstance(operators, (list, tuple)) or not operators:
        raise ScenarioError(
            f"{path}.operators",
            f"expected a non-empty list of operator names, got "
            f"{operators!r}",
        )
    spec = PeSpec(
        name=_string(data["name"], f"{path}.name"),
        operators=tuple(
            _string(op, f"{path}.operators[{i}]")
            for i, op in enumerate(operators)
        ),
        replicas=_number(
            data.get("replicas", 1),
            f"{path}.replicas",
            integer=True,
            minimum=1,
        ),
        elastic=_bool(data.get("elastic", False), f"{path}.elastic"),
        max_replicas=_number(
            data.get("max_replicas", 8),
            f"{path}.max_replicas",
            integer=True,
            minimum=1,
        ),
    )
    if spec.replicas > spec.max_replicas:
        raise ScenarioError(
            f"{path}.replicas",
            f"replicas ({spec.replicas}) exceeds max_replicas "
            f"({spec.max_replicas})",
        )
    return spec


def _pes_from_dict(data: Any, path: str) -> Tuple[PeSpec, ...]:
    if not isinstance(data, (list, tuple)):
        raise ScenarioError(
            path, f"expected a list of PE mappings, got {data!r}"
        )
    pes = tuple(
        _pe_from_dict(pe, f"{path}[{i}]") for i, pe in enumerate(data)
    )
    seen_names: set = set()
    seen_ops: Dict[str, str] = {}
    for i, pe in enumerate(pes):
        if pe.name in seen_names:
            raise ScenarioError(
                f"{path}[{i}].name", f"duplicate PE name {pe.name!r}"
            )
        seen_names.add(pe.name)
        for op in pe.operators:
            if op in seen_ops:
                raise ScenarioError(
                    f"{path}[{i}].operators",
                    f"operator {op!r} is assigned to both "
                    f"{seen_ops[op]!r} and {pe.name!r}",
                )
            seen_ops[op] = pe.name
    return pes


def _partition_from_dict(data: Any, path: str) -> PartitionSpec:
    data = _mapping(data, path)
    _check_keys(data, path, ("strategy", "seed", "key_space"))
    return PartitionSpec(
        strategy=_enum(
            data.get("strategy", "forward"),
            f"{path}.strategy",
            PartitionStrategy,
        ),
        seed=(
            _number(data["seed"], f"{path}.seed", integer=True)
            if data.get("seed") is not None
            else None
        ),
        key_space=_number(
            data.get("key_space", 1024),
            f"{path}.key_space",
            integer=True,
            minimum=1,
        ),
    )


def scenario_from_dict(data: Any) -> Scenario:
    """Parse and validate a scenario document.

    Raises :class:`ScenarioError` naming the offending field on any
    schema violation.
    """
    data = _mapping(data, "")
    _check_keys(
        data,
        "",
        (
            "version",
            "name",
            "description",
            "topology",
            "workload",
            "machine",
            "run",
            "channel",
            "pes",
            "partition",
        ),
    )
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ScenarioError(
            "version",
            f"unsupported scenario format version {version!r} "
            f"(expected {FORMAT_VERSION})",
        )
    if "name" not in data:
        raise ScenarioError("name", "scenario name is required")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise ScenarioError(
            "description",
            f"expected a string, got {description!r}",
        )
    return Scenario(
        name=_string(data["name"], "name"),
        description=description,
        topology=_topology_from_dict(data.get("topology", {}), "topology"),
        workload=_workload_from_dict(data.get("workload", {}), "workload"),
        machine=_machine_from_dict(data.get("machine", {}), "machine"),
        run=_run_from_dict(data.get("run", {}), "run"),
        channel=_channel_from_dict(data.get("channel", {}), "channel"),
        pes=_pes_from_dict(data.get("pes", []), "pes"),
        partition=_partition_from_dict(data.get("partition", {}), "partition"),
    )


# ----------------------------------------------------------------------
# to_dict (canonical, round-trips through scenario_from_dict)
# ----------------------------------------------------------------------
def _plain(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if hasattr(value, "__dataclass_fields__"):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in fields(value)
        }
    return value


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Serialize a scenario to a canonical JSON/YAML-ready dict.

    Every field is emitted explicitly (no default elision), so the
    document doubles as a full record of the effective configuration;
    ``scenario_from_dict(scenario_to_dict(s)) == s`` always holds.
    """
    data = _plain(scenario)
    data["version"] = FORMAT_VERSION
    # Emit edges as [src, dst] pairs (tuples already converted).
    return data
