"""Execute compiled scenarios on the DES and perfmodel backends.

One entry point, :func:`run_scenario`, drives the same compiled
scenario through either substrate:

- **des** — the tuple-level engine via
  :class:`~repro.des.adaptation.DesAdaptationRunner`, with open-loop
  arrival streams, bounded queues and the configured overflow policy;
- **perfmodel** — the analytical model via
  :class:`~repro.runtime.pe.ProcessingElement` +
  :class:`~repro.runtime.executor.AdaptationExecutor`, where the
  compiler's source ``max_rate`` cap makes offered load the binding
  constraint when the workload is lighter than the machine.

Scenarios with a ``pes:`` block are dispatched to the multi-PE job
executor (:class:`~repro.job.executor.JobAdaptationRunner`, DES
only), and :func:`make_backend` hands any compiled scenario back as
an :class:`~repro.runtime.backend.AdaptationBackend` without running
it.

Both paths publish decisions through the same
:class:`~repro.obs.ObservabilityHub`, so a scenario's R1–R5 decision
sequence is comparable across backends and across sessions — the
property the regression zoo exists to pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..obs.hub import Obs, ObservabilityHub
from .compile import CompiledScenario
from .schema import Backend


@dataclass(frozen=True)
class ScenarioRunResult:
    """Outcome of one scenario run on one backend.

    ``decisions`` is the coordinator's per-period
    ``(rule, set_threads, set_n_queues)`` sequence — the regression
    signature.  ``offered_utilization`` is the fraction of the offered
    open-loop load the PE admitted in the last measured period (1.0
    for saturated scenarios); ``dropped_tuples`` counts arrivals shed
    at full ingress queues under the ``drop`` policy across the run.
    """

    scenario: str
    backend: str
    periods: int
    converged_throughput: float
    final_threads: int
    final_n_queues: int
    decisions: Tuple[Tuple[str, Optional[int], Optional[int]], ...]
    offered_utilization: float = 1.0
    dropped_tuples: float = 0.0
    open_loop: bool = False
    mean_arrival_rate: Optional[float] = None
    # Multi-PE jobs only: final replica count per PE name.
    pe_replicas: Tuple[Tuple[str, int], ...] = ()


def _decisions(hub: ObservabilityHub):
    return tuple(
        (d.rule, d.set_threads, d.set_n_queues) for d in hub.decisions()
    )


def _counter_value(hub: ObservabilityHub, name: str) -> float:
    metric = hub.registry.get(name)
    return float(metric.value) if metric is not None else 0.0


def _warm_spec(compiled: CompiledScenario, explicit: Optional[str]):
    """Resolve the effective warm-start policy into a
    :class:`~repro.core.warmstart.WarmStartSpec`, or None when it
    resolves to ``off`` (the default — byte-identical cold start).

    Precedence mirrors ``--jobs``: explicit argument (the CLI flag)
    beats the scenario's ``run.warm_start``, which beats the
    ``REPRO_WARM_START`` environment variable.  The envelope's
    ``rate_at`` becomes the phase oracle for open-loop scenarios so
    the posterior keys on workload phase, not just topology.
    """
    from ..core.warmstart import WarmStartSpec, resolve_warm_start

    mode = resolve_warm_start(explicit, compiled.scenario.run.warm_start)
    if mode == "off":
        return None
    phase_rate = None
    if compiled.arrival_process is not None:
        phase_rate = compiled.arrival_process.rate_at
    return WarmStartSpec(mode=mode, phase_rate=phase_rate)


def run_on_des(
    compiled: CompiledScenario,
    obs: Optional[Obs] = None,
    jobs: Optional[int] = None,
    warm_start: Optional[str] = None,
) -> ScenarioRunResult:
    """Run the scenario's adaptation loop on the tuple-level DES.

    Multi-PE scenarios (a ``pes:`` block) are dispatched to the job
    executor — the single-PE runner cannot route inter-PE channels —
    with ``jobs`` (the worker-pool width) forwarded; single-PE
    scenarios have nothing to parallelize and ignore it.
    ``warm_start`` overrides the scenario's ``run.warm_start``.
    """
    from ..des.adaptation import DesAdaptationRunner

    if compiled.multi_pe:
        return run_on_job(
            compiled, obs=obs, jobs=jobs, warm_start=warm_start
        )
    run = compiled.scenario.run
    hub = obs if obs is not None else ObservabilityHub()
    spec = _warm_spec(compiled, warm_start)
    runner = DesAdaptationRunner(
        compiled.graph,
        compiled.machine,
        compiled.config,
        warmup_s=run.warmup_s,
        measure_s=run.measure_s,
        queue_capacity=run.queue_capacity,
        profile_from_execution=run.profile_from_execution,
        sampled_profiling=True,
        obs=hub,
        arrivals_factory=compiled.arrivals_factory(),
        arrivals_key=compiled.arrivals_key(),
        overflow=compiled.overflow,
        channel=compiled.channel,
    )
    if spec is not None:
        runner.set_warm_start(spec)
    result = runner.run(
        max_periods=run.max_periods,
        stop_after_stable_periods=run.stop_after_stable_periods,
    )
    return ScenarioRunResult(
        scenario=compiled.scenario.name,
        backend="des",
        periods=len(result.trace.observations),
        converged_throughput=result.converged_throughput,
        final_threads=result.final_threads,
        final_n_queues=result.final_placement.n_queues,
        decisions=_decisions(hub),
        offered_utilization=runner.last_offered_utilization,
        dropped_tuples=_counter_value(hub, "des.dropped_tuples"),
        open_loop=compiled.open_loop,
        mean_arrival_rate=compiled.mean_arrival_rate,
    )


def run_on_job(
    compiled: CompiledScenario,
    obs: Optional[Obs] = None,
    jobs: Optional[int] = None,
    warm_start: Optional[str] = None,
) -> ScenarioRunResult:
    """Run a multi-PE scenario through the job executor.

    ``decisions`` carries the *job-level* decision stream (scope
    ``"job"``); per-PE R1–R5 streams stay in the hub under their
    ``pe.<name>`` scopes for callers that keep the hub.  ``jobs``
    overrides the worker-pool width (explicit argument beats the
    scenario's ``run.jobs``, which beats ``REPRO_JOB_WORKERS``).
    """
    from ..job.executor import JobAdaptationRunner

    if compiled.job is None:
        raise ValueError(
            f"scenario {compiled.scenario.name!r} declares no 'pes' "
            "block; use run_on_des"
        )
    run = compiled.scenario.run
    hub = obs if obs is not None else ObservabilityHub()
    spec = _warm_spec(compiled, warm_start)
    runner = JobAdaptationRunner(
        compiled.job,
        compiled.machine,
        compiled.config,
        warmup_s=run.warmup_s,
        measure_s=run.measure_s,
        queue_capacity=run.queue_capacity,
        profile_from_execution=run.profile_from_execution,
        sampled_profiling=True,
        obs=hub,
        arrivals_factory=compiled.arrivals_factory(),
        arrivals_key=compiled.arrivals_key(),
        overflow=compiled.overflow,
        channel=compiled.channel,
        jobs=jobs if jobs is not None else run.jobs,
    )
    if spec is not None:
        runner.set_warm_start(spec)
    result = runner.run(
        max_periods=run.max_periods,
        stop_after_stable_periods=run.stop_after_stable_periods,
    )
    job_decisions = tuple(
        (d.rule, d.set_threads, d.set_n_queues)
        for d in hub.decisions()
        if d.scope == "job"
    )
    offered = min(
        (r.last_offered_utilization for r in runner.runners.values()),
        default=1.0,
    )
    return ScenarioRunResult(
        scenario=compiled.scenario.name,
        backend="des",
        periods=len(result.trace.observations),
        converged_throughput=result.converged_throughput,
        final_threads=result.final_threads,
        final_n_queues=result.final_n_queues,
        decisions=job_decisions,
        offered_utilization=offered,
        dropped_tuples=_counter_value(hub, "des.dropped_tuples"),
        open_loop=compiled.open_loop,
        mean_arrival_rate=compiled.mean_arrival_rate,
        pe_replicas=tuple(sorted(result.final_replicas.items())),
    )


def make_backend(
    compiled: CompiledScenario,
    obs: Optional[Obs] = None,
    jobs: Optional[int] = None,
    warm_start: Optional[str] = None,
):
    """Construct the :class:`~repro.runtime.backend.AdaptationBackend`
    a compiled scenario runs on, without running it.

    Returns a DES runner for single-PE DES scenarios, a job runner
    for multi-PE ones, and a perfmodel adapter otherwise — all
    satisfying the same ``run(max_periods, stop_after_stable_periods)``
    protocol.
    """
    run = compiled.scenario.run
    spec = _warm_spec(compiled, warm_start)
    if compiled.multi_pe:
        from ..job.executor import JobAdaptationRunner

        return JobAdaptationRunner(
            compiled.job,
            compiled.machine,
            compiled.config,
            warmup_s=run.warmup_s,
            measure_s=run.measure_s,
            queue_capacity=run.queue_capacity,
            profile_from_execution=run.profile_from_execution,
            obs=obs,
            arrivals_factory=compiled.arrivals_factory(),
            arrivals_key=compiled.arrivals_key(),
            overflow=compiled.overflow,
            channel=compiled.channel,
            jobs=jobs if jobs is not None else run.jobs,
            warm_start=spec,
        )
    if compiled.scenario.run.backend is Backend.PERFMODEL:
        from ..runtime.backend import PerfModelAdaptationRunner

        return PerfModelAdaptationRunner(
            compiled.graph,
            compiled.machine,
            compiled.config,
            duration_s=run.duration_s,
            obs=obs,
            warm_start=spec,
        )
    from ..des.adaptation import DesAdaptationRunner

    return DesAdaptationRunner(
        compiled.graph,
        compiled.machine,
        compiled.config,
        warmup_s=run.warmup_s,
        measure_s=run.measure_s,
        queue_capacity=run.queue_capacity,
        profile_from_execution=run.profile_from_execution,
        obs=obs,
        arrivals_factory=compiled.arrivals_factory(),
        arrivals_key=compiled.arrivals_key(),
        overflow=compiled.overflow,
        channel=compiled.channel,
        warm_start=spec,
    )


def run_on_perfmodel(
    compiled: CompiledScenario,
    obs: Optional[Obs] = None,
    warm_start: Optional[str] = None,
) -> ScenarioRunResult:
    """Run the scenario's adaptation loop on the analytical model."""
    from ..runtime.executor import AdaptationExecutor
    from ..runtime.pe import ProcessingElement

    run = compiled.scenario.run
    hub = obs if obs is not None else ObservabilityHub()
    pe = ProcessingElement(
        compiled.graph, compiled.machine, compiled.config
    )
    executor = AdaptationExecutor(pe, obs=hub)
    spec = _warm_spec(compiled, warm_start)
    if spec is not None:
        from ..core.warmstart import make_runner_session

        executor.coordinator.set_warm_start(
            make_runner_session(
                spec,
                graph_fn=lambda: pe.graph,
                machine=pe.machine,
                config=compiled.config,
                phase_token=lambda: "steady",
                obs=hub,
            )
        )
    result = executor.run(
        duration_s=run.duration_s,
        stop_after_stable_periods=run.stop_after_stable_periods,
    )
    # The analytical model has no transient queue state to overflow;
    # offered-load utilization is achieved/offered at the cap.
    offered_util = 1.0
    if compiled.open_loop and compiled.mean_arrival_rate:
        sources = len(compiled.graph.sources)
        offered = compiled.mean_arrival_rate * sources
        sink_gain = compiled.sink_gain()
        if offered > 0 and sink_gain > 0:
            achieved = result.converged_throughput / sink_gain
            offered_util = min(1.0, achieved / offered)
    return ScenarioRunResult(
        scenario=compiled.scenario.name,
        backend="perfmodel",
        periods=len(result.trace.observations),
        converged_throughput=result.converged_throughput,
        final_threads=result.final_threads,
        final_n_queues=result.final_n_queues,
        decisions=_decisions(hub),
        offered_utilization=offered_util,
        open_loop=compiled.open_loop,
        mean_arrival_rate=compiled.mean_arrival_rate,
    )


def run_scenario(
    compiled: CompiledScenario,
    backend: Optional[str] = None,
    obs: Optional[Obs] = None,
    jobs: Optional[int] = None,
    warm_start: Optional[str] = None,
) -> Tuple[ScenarioRunResult, ...]:
    """Run a compiled scenario on the requested backend(s).

    ``backend`` is ``"des"``, ``"perfmodel"`` or ``"both"``; ``None``
    defers to the scenario's own ``run.backend`` declaration.  Returns
    one result per backend actually run.  ``jobs`` sets the multi-PE
    worker-pool width (the ``--jobs`` CLI flag); ``warm_start`` the
    coordinator seeding policy (the ``--warm-start`` flag — explicit
    beats ``run.warm_start`` beats ``REPRO_WARM_START``).
    """
    choice = Backend(backend) if backend else compiled.scenario.run.backend
    results = []
    if choice in (Backend.DES, Backend.BOTH):
        results.append(
            run_on_des(compiled, obs=obs, jobs=jobs, warm_start=warm_start)
        )
    if choice in (Backend.PERFMODEL, Backend.BOTH):
        results.append(
            run_on_perfmodel(compiled, obs=obs, warm_start=warm_start)
        )
    return tuple(results)
