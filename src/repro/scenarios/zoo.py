"""The scenario zoo: discovery and loading of the named config corpus.

The repository ships a ``scenarios/`` directory of named YAML/JSON
configs — the regression corpus that ``repro bench --scenario X`` and
CI validate and run.  This module locates that directory and resolves
scenario names to files:

- ``REPRO_SCENARIO_DIR`` (environment) overrides everything;
- otherwise the ``scenarios/`` directory at the repository root
  (resolved relative to this package, so editable installs work);
- otherwise ``./scenarios`` under the current working directory.

Names are file stems: ``scenarios/onoff-burst-overflow.yaml`` is the
scenario ``onoff-burst-overflow``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from .compile import load_scenario
from .schema import Scenario, ScenarioError

_EXTENSIONS = (".yaml", ".yml", ".json")


def scenario_dir(override: Optional[Union[str, Path]] = None) -> Path:
    """Resolve the zoo directory (see module docstring for the order)."""
    if override is not None:
        return Path(override)
    env = os.environ.get("REPRO_SCENARIO_DIR")
    if env:
        return Path(env)
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "scenarios"
    if candidate.is_dir():
        return candidate
    return Path.cwd() / "scenarios"


def scenario_files(
    directory: Optional[Union[str, Path]] = None,
) -> List[Path]:
    """All scenario config files in the zoo, sorted by name."""
    root = scenario_dir(directory)
    if not root.is_dir():
        return []
    return sorted(
        (
            p
            for p in root.iterdir()
            if p.is_file() and p.suffix.lower() in _EXTENSIONS
        ),
        key=lambda p: p.stem,
    )


def find_scenario(
    name: str, directory: Optional[Union[str, Path]] = None
) -> Path:
    """Resolve a scenario name (file stem) or path to a config file."""
    direct = Path(name)
    if direct.is_file() and direct.suffix.lower() in _EXTENSIONS:
        return direct
    matches = [p for p in scenario_files(directory) if p.stem == name]
    if not matches:
        known = ", ".join(p.stem for p in scenario_files(directory))
        raise ScenarioError(
            "",
            f"unknown scenario {name!r} "
            f"(known: {known or '<empty zoo>'}; "
            f"zoo dir: {scenario_dir(directory)})",
        )
    return matches[0]


def load_named(
    name: str, directory: Optional[Union[str, Path]] = None
) -> Scenario:
    """Load a zoo scenario by name."""
    return load_scenario(find_scenario(name, directory))


def load_all(
    directory: Optional[Union[str, Path]] = None,
) -> Dict[str, Scenario]:
    """Load and validate every config in the zoo, keyed by file stem."""
    return {
        p.stem: load_scenario(p) for p in scenario_files(directory)
    }
