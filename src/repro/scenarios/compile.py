"""Compile validated scenarios into runnable graph/machine/config objects.

This is the bridge between the declarative zoo and the two execution
substrates: a :class:`CompiledScenario` carries the concrete
:class:`~repro.graph.model.StreamGraph`, the
:class:`~repro.perfmodel.machine.MachineProfile` and the
:class:`~repro.runtime.config.RuntimeConfig`, plus the open-loop
arrival process (if any) in both of the forms the backends consume:

- the DES engine takes per-source **arrival streams** (infinite
  iterators of absolute timestamps, seeded, restartable from any t0);
- the analytical perfmodel takes a **source rate cap**
  (``Operator.max_rate``), which the compiler sets to the envelope's
  long-run mean rate so ``predict_throughput`` reports
  ``limiting_factor == "source_rate"`` when the workload, not the
  machine, is the bottleneck.

Structural problems that only surface at graph-build time (a custom
edge list with a cycle, a sink with outgoing edges, ...) are re-raised
as :class:`~.schema.ScenarioError` under the ``topology`` path so
``repro scenarios validate`` reports them uniformly.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from ..job.graph import JobGraph

import numpy as np

from ..graph.builder import GraphBuilder
from ..graph.cost import balanced, skewed, assign_costs
from ..graph.model import (
    FanoutPolicy,
    GraphValidationError,
    StreamGraph,
    TupleSpec,
)
from ..des.channels import ChannelConfig
from ..graph.topologies import bushy, data_parallel, mixed, pipeline
from ..perfmodel.machine import MachineProfile, laptop, power8_184, xeon_176
from ..runtime.config import ElasticityConfig, RuntimeConfig
from .arrivals import ArrivalProcess
from .schema import (
    ArrivalKind,
    Backend,
    CostKind,
    MachineName,
    NodeSpec,
    OverflowPolicy,
    PayloadKind,
    Scenario,
    ScenarioError,
    TopologyShape,
    TopologySpec,
    scenario_from_dict,
)


@dataclass(frozen=True)
class CompiledScenario:
    """Everything needed to run a scenario on either backend."""

    scenario: Scenario
    graph: StreamGraph
    machine: MachineProfile
    config: RuntimeConfig
    arrival_process: Optional[ArrivalProcess]
    channel: ChannelConfig = ChannelConfig()
    # Present when the scenario declares a ``pes:`` block: the
    # topology partitioned into PE subgraphs + inter-PE channels.
    job: Optional["JobGraph"] = None

    @property
    def open_loop(self) -> bool:
        return self.arrival_process is not None

    @property
    def multi_pe(self) -> bool:
        return self.job is not None

    @property
    def overflow(self) -> str:
        return self.scenario.run.overflow.value

    @property
    def mean_arrival_rate(self) -> Optional[float]:
        """Long-run tuples/s per source, or None when saturated."""
        if self.arrival_process is None:
            return None
        return self.arrival_process.mean_rate()

    @property
    def peak_arrival_rate(self) -> Optional[float]:
        if self.arrival_process is None:
            return None
        return self.arrival_process.peak_rate()

    def arrival_streams(self, t0: float = 0.0) -> Dict[int, Iterator[float]]:
        """Fresh per-source arrival iterators starting at ``t0``.

        The rate envelope is evaluated at *absolute* scenario time (so
        period k of an adaptation run samples the right phase of a
        diurnal or burst pattern), but each DES measurement window
        restarts its simulation clock at zero — the yielded due times
        are therefore window-relative (``t - t0``).  Every source
        shares the same process spec but gets an independent iterator
        (offset seeds keep multi-source scenarios decorrelated).

        The iterators are :class:`~.arrivals.ArrivalStream` instances,
        so steady (unmodulated) schedules expose ``skip_to`` and the
        DES analytic fast-forwarder stays eligible under open loop.
        """
        if self.arrival_process is None:
            return {}
        streams: Dict[int, Iterator[float]] = {}
        for i, op in enumerate(self.graph.sources):
            proc = self.arrival_process
            if i > 0:
                proc = dataclasses.replace(proc, seed=proc.seed + i)
            streams[op.index] = proc.arrival_stream(t0)
        return streams

    def arrivals_factory(self):
        """``t0 -> {source_index: iterator}`` callable for the DES
        adaptation runner, or None when saturated."""
        if self.arrival_process is None:
            return None
        return self.arrival_streams

    def arrivals_key(self) -> Optional[Tuple]:
        """Hashable arrival-process identity for measurement caching."""
        if self.arrival_process is None:
            return None
        return self.arrival_process.key()

    def sink_gain(self) -> float:
        """Sink tuples produced per unit source tuple (selectivity
        product summed over sinks), for converting sink throughput back
        into admitted source rate."""
        rates = self.graph.arrival_rates()
        return sum(rates[op.index] for op in self.graph.sinks)


# ----------------------------------------------------------------------
# topology compilation
# ----------------------------------------------------------------------
_NODE_KIND_ADDERS = {
    "source": "add_source",
    "functional": "add_operator",
    "sink": "add_sink",
}


def _build_diamond(spec: TopologySpec) -> StreamGraph:
    """src -> head -> (width parallel branches) -> merge -> snk.

    The head broadcasts, so every branch sees every tuple — the shape
    of PacketAnalysis' ingest feeding all analysis branches.
    """
    b = GraphBuilder(
        f"diamond-{spec.width}", payload_bytes=spec.payload_bytes
    )
    src = b.add_source("src")
    head = b.add_operator("head", cost_flops=spec.cost.flops)
    branches = [
        b.add_operator(f"branch{i}", cost_flops=spec.cost.flops)
        for i in range(spec.width)
    ]
    merge = b.add_operator("merge", cost_flops=spec.cost.flops)
    snk = b.add_sink("snk")
    b.connect(src, head)
    b.fan_out(head, branches)
    b.fan_in(branches, merge)
    b.connect(merge, snk)
    return b.build()


def _build_custom(spec: TopologySpec) -> StreamGraph:
    b = GraphBuilder("custom", payload_bytes=spec.payload_bytes)
    for node in spec.nodes:
        _add_custom_node(b, node)
    for src, dst in spec.edges:
        b.connect(src, dst)
    return b.build()


def _add_custom_node(b: GraphBuilder, node: NodeSpec) -> None:
    fanout = FanoutPolicy(node.fanout)
    if node.kind == "source":
        b.add_source(
            node.name,
            cost_flops=node.cost_flops,
            selectivity=node.selectivity,
            fanout=fanout,
            max_rate=node.max_rate,
        )
    elif node.kind == "sink":
        b.add_sink(
            node.name,
            cost_flops=node.cost_flops,
            uses_lock=node.uses_lock,
        )
    else:
        b.add_operator(
            node.name,
            cost_flops=node.cost_flops,
            selectivity=node.selectivity,
            uses_lock=node.uses_lock,
            fanout=fanout,
        )


def compile_topology(spec: TopologySpec, seed: int = 0) -> StreamGraph:
    """Materialize a topology spec into a stream graph."""
    try:
        if spec.shape is TopologyShape.PIPELINE:
            graph = pipeline(
                spec.operators,
                cost_flops=spec.cost.flops,
                payload_bytes=spec.payload_bytes,
            )
        elif spec.shape is TopologyShape.DATA_PARALLEL:
            graph = data_parallel(
                spec.width,
                cost_flops=spec.cost.flops,
                payload_bytes=spec.payload_bytes,
            )
        elif spec.shape is TopologyShape.MIXED:
            graph = mixed(
                spec.width,
                spec.depth,
                cost_flops=spec.cost.flops,
                payload_bytes=spec.payload_bytes,
            )
        elif spec.shape is TopologyShape.TREE:
            graph = bushy(
                spec.levels,
                cost_flops=spec.cost.flops,
                payload_bytes=spec.payload_bytes,
            )
        elif spec.shape is TopologyShape.DIAMOND:
            graph = _build_diamond(spec)
        elif spec.shape is TopologyShape.CUSTOM:
            graph = _build_custom(spec)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unhandled shape {spec.shape}")
    except GraphValidationError as exc:
        raise ScenarioError("topology", str(exc)) from exc

    if spec.cost.kind is CostKind.SKEWED:
        dist = skewed(
            heavy_fraction=spec.cost.heavy_fraction,
            medium_fraction=spec.cost.medium_fraction,
            heavy_flops=spec.cost.heavy_flops,
            medium_flops=spec.cost.medium_flops,
            light_flops=spec.cost.light_flops,
        )
        cost_seed = spec.cost.seed if spec.cost.seed is not None else seed
        graph = assign_costs(
            graph, dist, rng=np.random.default_rng(cost_seed)
        )
    elif spec.shape is TopologyShape.CUSTOM and spec.cost.kind is CostKind.BALANCED:
        pass  # custom nodes carry their own explicit costs
    return graph


def _effective_payload(scenario: Scenario) -> Optional[int]:
    payload = scenario.workload.payload
    if payload.kind is PayloadKind.MIX:
        total_w = sum(c.weight for c in payload.mix)
        mean = sum(c.payload_bytes * c.weight for c in payload.mix) / total_w
        return int(round(mean))
    if payload.payload_bytes > 0:
        return payload.payload_bytes
    return None  # inherit topology.payload_bytes


def compile_machine(scenario: Scenario) -> MachineProfile:
    spec = scenario.machine
    if spec.profile is MachineName.LAPTOP:
        return laptop(spec.cores if spec.cores is not None else 8)
    profile = (
        xeon_176() if spec.profile is MachineName.XEON else power8_184()
    )
    if spec.cores is not None:
        profile = profile.with_cores(spec.cores)
    return profile


def compile_config(scenario: Scenario, machine: MachineProfile) -> RuntimeConfig:
    run = scenario.run
    if run.adaptation_period_s is not None:
        elasticity = ElasticityConfig(
            adaptation_period_s=run.adaptation_period_s
        )
    else:
        elasticity = ElasticityConfig()
    return RuntimeConfig(
        cores=machine.logical_cores, elasticity=elasticity, seed=run.seed
    )


def _cap_source_rates(graph: StreamGraph, rate: float) -> StreamGraph:
    """Set every source's ``max_rate`` so the perfmodel backend caps
    throughput at the offered load (``limiting_factor == "source_rate"``)."""
    ops = [
        dataclasses.replace(op, max_rate=rate) if op.is_source else op
        for op in graph.operators
    ]
    return StreamGraph(
        ops, graph.edges, tuple_spec=graph.tuple_spec, name=graph.name
    )


def compile_scenario(scenario: Scenario) -> CompiledScenario:
    """Compile a validated scenario into runnable objects.

    Raises :class:`ScenarioError` if the topology fails structural
    validation (cycles, dangling operators, ...).
    """
    graph = compile_topology(scenario.topology, seed=scenario.run.seed)
    payload = _effective_payload(scenario)
    if payload is not None and payload != graph.tuple_spec.payload_bytes:
        graph = graph.with_tuple_spec(TupleSpec(payload_bytes=payload))

    machine = compile_machine(scenario)
    config = compile_config(scenario, machine)

    arrivals = scenario.workload.arrivals
    process: Optional[ArrivalProcess] = None
    if arrivals.kind is not ArrivalKind.SATURATED:
        seed = arrivals.seed if arrivals.seed is not None else scenario.run.seed
        process = ArrivalProcess(spec=arrivals, seed=seed)
        graph = _cap_source_rates(graph, process.mean_rate())

    ch = scenario.channel
    channel = ChannelConfig(
        batch_size=ch.batch_size,
        flush_timeout_s=(
            ch.flush_timeout_ms / 1000.0
            if ch.flush_timeout_ms is not None
            else None
        ),
        prefetch=ch.prefetch,
        fastforward=ch.fastforward,
    )

    job = None
    if scenario.pes:
        # Multi-PE jobs execute on the tuple-level DES only: the
        # perfmodel has no inter-PE channel model to route over.
        if scenario.run.backend is not Backend.DES:
            raise ScenarioError(
                "run.backend",
                "scenarios with a 'pes' block must set run.backend "
                f"to 'des', got {scenario.run.backend.value!r}",
            )
        from ..job.graph import JobGraphError, build_job_graph

        try:
            job = build_job_graph(
                graph, scenario.pes, scenario.partition
            )
        except JobGraphError as exc:
            raise ScenarioError("pes", str(exc)) from exc

    return CompiledScenario(
        scenario=scenario,
        graph=graph,
        machine=machine,
        config=config,
        arrival_process=process,
        channel=channel,
        job=job,
    )


# ----------------------------------------------------------------------
# file loading
# ----------------------------------------------------------------------
def _parse_text(text: str, suffix: str, source: str) -> object:
    if suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - pyyaml is vendored
            raise ScenarioError(
                "",
                f"cannot load {source}: PyYAML is not installed "
                "(use JSON scenarios instead)",
            ) from exc
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(
                "", f"cannot parse {source}: {exc}"
            ) from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError("", f"cannot parse {source}: {exc}") from None


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load and validate a scenario document from a YAML/JSON file."""
    path = Path(path)
    if not path.is_file():
        raise ScenarioError("", f"no such scenario file: {path}")
    data = _parse_text(path.read_text(), path.suffix.lower(), str(path))
    return scenario_from_dict(data)


def load_compiled(path: Union[str, Path]) -> CompiledScenario:
    """Load, validate and compile in one step."""
    return compile_scenario(load_scenario(path))
