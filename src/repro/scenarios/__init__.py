"""Declarative scenario DSL and open-loop traffic generation.

This package turns the repository's evaluation corpus from hand-built
Python into *data*: a scenario file declares a graph shape, a cost
profile, a machine and a time-varying open-loop workload; the compiler
lowers it onto both execution substrates (tuple-level DES and the
analytical perfmodel); and the ``scenarios/`` directory at the repo
root is the regression zoo that CI validates and runs.

Public surface:

- :mod:`~repro.scenarios.schema` — the validated vocabulary
  (:class:`Scenario` and friends, :class:`ScenarioError` with dotted
  field paths, ``scenario_from_dict``/``scenario_to_dict``);
- :mod:`~repro.scenarios.arrivals` — seeded deterministic/Poisson
  arrival processes with diurnal/ON-OFF/flash-crowd/ramp envelopes;
- :mod:`~repro.scenarios.compile` — scenario → graph/machine/config
  (:func:`compile_scenario`, :func:`load_scenario`);
- :mod:`~repro.scenarios.zoo` — named-config discovery;
- :mod:`~repro.scenarios.run` — one-call execution on either backend.
"""

from .arrivals import ArrivalProcess
from .compile import (
    CompiledScenario,
    compile_scenario,
    load_compiled,
    load_scenario,
)
from .run import ScenarioRunResult, run_scenario
from .schema import (
    ArrivalKind,
    ArrivalSpec,
    Backend,
    CostKind,
    MachineName,
    ModulationKind,
    ModulationSpec,
    OverflowPolicy,
    PayloadKind,
    Scenario,
    ScenarioError,
    TopologyShape,
    scenario_from_dict,
    scenario_to_dict,
)
from .zoo import find_scenario, load_all, load_named, scenario_dir

__all__ = [
    "ArrivalKind",
    "ArrivalProcess",
    "ArrivalSpec",
    "Backend",
    "CompiledScenario",
    "CostKind",
    "MachineName",
    "ModulationKind",
    "ModulationSpec",
    "OverflowPolicy",
    "PayloadKind",
    "Scenario",
    "ScenarioError",
    "ScenarioRunResult",
    "TopologyShape",
    "compile_scenario",
    "find_scenario",
    "load_all",
    "load_compiled",
    "load_named",
    "load_scenario",
    "run_scenario",
    "scenario_dir",
    "scenario_from_dict",
    "scenario_to_dict",
]
