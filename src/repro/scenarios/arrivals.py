"""Seeded open-loop arrival processes with time-varying rate envelopes.

An :class:`ArrivalProcess` turns an :class:`~.schema.ArrivalSpec` into
concrete arrival timestamps.  Everything is stdlib-only and driven by
``random.Random(seed)``, so a (spec, seed, t0) triple always produces
the same stream — the property the regression zoo depends on.

Rate envelopes are *piecewise constant*: :meth:`ArrivalProcess.rate_at`
and :meth:`ArrivalProcess.segments` discretize the modulation into the
same constant-rate slots, so the generators and the test oracles agree
exactly on the envelope (no sampling-vs-integral drift).

Generation:

- ``deterministic``: evenly spaced arrivals within each constant-rate
  segment, integrating rate into a fractional tuple "credit" that is
  carried across segment boundaries, so long-run counts match the
  integral of the envelope exactly.
- ``poisson``: inhomogeneous Poisson via thinning (Lewis & Shedler):
  candidate gaps at the envelope's peak rate, each kept with
  probability ``rate(t)/peak``.  Exact for piecewise-constant
  envelopes and trivially seeded.

Streams are **infinite** iterators.  The DES deadlock detector latches
when the event heap drains while tasks are still alive, so a finite
arrival schedule inside a measurement window would be indistinguishable
from deadlock; an unbounded stream keeps the semantics honest and lets
the engine cut the run off at the horizon.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .schema import ArrivalKind, ArrivalSpec, ModulationKind, ModulationSpec

# Flash crowds / ramps are one-shot: after the transition the envelope
# is flat forever, which we represent with a single long tail segment.
_TAIL_S = 1e9


def _diurnal_factors(mod: ModulationSpec) -> List[float]:
    """Per-slot factors of one discretized diurnal period.

    A raised cosine between ``low_factor`` and ``high_factor``, sampled
    at slot midpoints: slot 0 starts at the trough so every scenario
    begins in the quiet phase.
    """
    mid = 0.5 * (mod.low_factor + mod.high_factor)
    amp = 0.5 * (mod.high_factor - mod.low_factor)
    out = []
    for k in range(mod.steps):
        phase = 2.0 * math.pi * (k + 0.5) / mod.steps
        out.append(mid - amp * math.cos(phase))
    return out


@dataclass(frozen=True)
class ArrivalProcess:
    """A concrete arrival process: spec + resolved seed."""

    spec: ArrivalSpec
    seed: int = 0

    def __post_init__(self) -> None:
        if self.spec.kind is ArrivalKind.SATURATED:
            raise ValueError(
                "saturated arrivals have no schedule; "
                "ArrivalProcess is for open-loop kinds only"
            )

    # ------------------------------------------------------------------
    # envelope
    # ------------------------------------------------------------------
    def segments(self, t0: float, horizon_s: float) -> List[Tuple[float, float, float]]:
        """Constant-rate ``(start, end, rate)`` segments covering
        ``[t0, t0 + horizon_s)``."""
        out: List[Tuple[float, float, float]] = []
        base = self.spec.rate
        mod = self.spec.modulation
        end = t0 + horizon_s
        t = t0
        if mod.kind is ModulationKind.NONE:
            return [(t0, end, base)]
        if mod.kind is ModulationKind.DIURNAL:
            factors = _diurnal_factors(mod)
            slot_s = mod.period_s / mod.steps
            k = math.floor(t / slot_s)
            while t < end:
                seg_end = min((k + 1) * slot_s, end)
                if seg_end > t:
                    out.append((t, seg_end, base * factors[k % mod.steps]))
                t = seg_end
                k += 1
            return out
        if mod.kind is ModulationKind.ONOFF:
            # Cycle-indexed (not accumulated) so float error cannot
            # stall progress near phase boundaries.
            cycle = mod.on_s + mod.off_s
            k = math.floor(t0 / cycle)
            while True:
                cycle_start = k * cycle
                on_end = cycle_start + mod.on_s
                off_end = (k + 1) * cycle
                s, e = max(cycle_start, t0), min(on_end, end)
                if e > s:
                    out.append((s, e, base))
                s, e = max(on_end, t0), min(off_end, end)
                if e > s:
                    out.append((s, e, 0.0))
                if off_end >= end:
                    return out
                k += 1
        if mod.kind is ModulationKind.FLASH_CROWD:
            # base | ramp up | hold at factor*base | ramp down | base.
            bounds = [
                (0.0, mod.at_s),
                (mod.at_s, mod.at_s + mod.ramp_s),
                (mod.at_s + mod.ramp_s, mod.at_s + mod.ramp_s + mod.hold_s),
                (
                    mod.at_s + mod.ramp_s + mod.hold_s,
                    mod.at_s + 2.0 * mod.ramp_s + mod.hold_s,
                ),
                (mod.at_s + 2.0 * mod.ramp_s + mod.hold_s, _TAIL_S),
            ]
            return self._piecewise(bounds, t0, end, self._flash_factor)
        if mod.kind is ModulationKind.RAMP:
            bounds = [
                (0.0, mod.at_s),
                (mod.at_s, mod.at_s + mod.ramp_s),
                (mod.at_s + mod.ramp_s, _TAIL_S),
            ]
            return self._piecewise(bounds, t0, end, self._ramp_factor)
        raise AssertionError(f"unhandled modulation {mod.kind}")

    def _piecewise(self, bounds, t0, end, factor_fn):
        """Discretize linear-ramp phases into ``steps`` constant slots."""
        mod = self.spec.modulation
        base = self.spec.rate
        out: List[Tuple[float, float, float]] = []
        for lo, hi in bounds:
            if hi <= t0 or lo >= end:
                continue
            is_ramp = hi - lo <= mod.ramp_s * 1.0000001 and factor_fn(
                lo
            ) != factor_fn(max(lo, hi - 1e-12))
            n = mod.steps if is_ramp else 1
            slot = (hi - lo) / n
            for k in range(n):
                s, e = lo + k * slot, lo + (k + 1) * slot
                s2, e2 = max(s, t0), min(e, end)
                if e2 > s2:
                    out.append((s2, e2, base * factor_fn(0.5 * (s + e))))
        return out

    def _flash_factor(self, t: float) -> float:
        mod = self.spec.modulation
        up0, up1 = mod.at_s, mod.at_s + mod.ramp_s
        dn0 = up1 + mod.hold_s
        dn1 = dn0 + mod.ramp_s
        if t < up0 or t >= dn1:
            return 1.0
        if t < up1:
            return 1.0 + (mod.factor - 1.0) * (t - up0) / mod.ramp_s
        if t < dn0:
            return mod.factor
        return mod.factor - (mod.factor - 1.0) * (t - dn0) / mod.ramp_s

    def _ramp_factor(self, t: float) -> float:
        mod = self.spec.modulation
        if t < mod.at_s:
            return mod.low_factor
        if t >= mod.at_s + mod.ramp_s:
            return mod.high_factor
        frac = (t - mod.at_s) / mod.ramp_s
        return mod.low_factor + (mod.high_factor - mod.low_factor) * frac

    def rate_at(self, t: float) -> float:
        """Envelope rate at absolute time ``t`` (piecewise-constant,
        consistent with :meth:`segments`)."""
        segs = self.segments(t, 1e-9)
        return segs[0][2] if segs else 0.0

    def peak_rate(self) -> float:
        """Supremum of the envelope over all time."""
        base = self.spec.rate
        mod = self.spec.modulation
        if mod.kind is ModulationKind.NONE:
            return base
        if mod.kind is ModulationKind.DIURNAL:
            return base * max(_diurnal_factors(mod))
        if mod.kind is ModulationKind.ONOFF:
            return base
        if mod.kind is ModulationKind.FLASH_CROWD:
            # midpoint sampling keeps slot factors strictly below the
            # nominal peak; the nominal peak is still the sup.
            return base * mod.factor
        if mod.kind is ModulationKind.RAMP:
            return base * max(mod.low_factor, mod.high_factor)
        raise AssertionError(f"unhandled modulation {mod.kind}")

    def mean_rate(self) -> float:
        """Long-run average rate (used to cap the perfmodel backend)."""
        base = self.spec.rate
        mod = self.spec.modulation
        if mod.kind is ModulationKind.NONE:
            return base
        if mod.kind is ModulationKind.DIURNAL:
            factors = _diurnal_factors(mod)
            return base * sum(factors) / len(factors)
        if mod.kind is ModulationKind.ONOFF:
            return base * mod.on_s / (mod.on_s + mod.off_s)
        if mod.kind is ModulationKind.FLASH_CROWD:
            return base  # transient burst; long-run rate is the base
        if mod.kind is ModulationKind.RAMP:
            return base * mod.high_factor  # eventually holds high
        raise AssertionError(f"unhandled modulation {mod.kind}")

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def stream(self, t0: float = 0.0) -> Iterator[float]:
        """Infinite iterator of absolute arrival times, ascending,
        starting at or after ``t0``.  Deterministic in (spec, seed, t0).
        """
        if self.spec.kind is ArrivalKind.DETERMINISTIC:
            return self._deterministic_stream(t0)
        return self._poisson_stream(t0)

    def _deterministic_stream(self, t0: float) -> Iterator[float]:
        credit = 0.0
        for start, end, rate in self._segments_forever(t0):
            if rate <= 0.0:
                continue
            interval = 1.0 / rate
            # first arrival in this segment honours leftover credit
            t = start + (1.0 - credit) * interval
            while t <= end:
                yield t
                t += interval
            credit = (end - (t - interval)) * rate

    def _poisson_stream(self, t0: float) -> Iterator[float]:
        rng = random.Random(self.seed)
        peak = self.peak_rate()
        if peak <= 0.0:
            return
        for start, end, rate in self._segments_forever(t0):
            if rate <= 0.0:
                continue
            accept = rate / peak
            t = start
            while True:
                t += rng.expovariate(peak)
                if t > end:
                    break
                if accept >= 1.0 or rng.random() < accept:
                    yield t

    def _segments_forever(
        self, t0: float, chunk_s: float = 64.0
    ) -> Iterator[Tuple[float, float, float]]:
        for i in itertools.count():
            yield from self.segments(t0 + i * chunk_s, chunk_s)

    def times(self, t0: float, horizon_s: float) -> List[float]:
        """Finite list of arrivals in ``[t0, t0 + horizon_s)``."""
        out = []
        limit = t0 + horizon_s
        for t in self.stream(t0):
            if t >= limit:
                break
            out.append(t)
        return out

    def arrival_stream(self, t0: float = 0.0) -> "ArrivalStream":
        """The :class:`ArrivalStream` wrapper the DES engine consumes:
        window-relative due times plus :meth:`ArrivalStream.skip_to`."""
        return ArrivalStream(self, t0)

    def key(self) -> Tuple:
        """Hashable identity for measurement-cache keys."""
        mod = self.spec.modulation
        return (
            self.spec.kind.value,
            self.spec.rate,
            self.seed,
            mod.kind.value,
            mod.period_s,
            mod.low_factor,
            mod.high_factor,
            mod.steps,
            mod.on_s,
            mod.off_s,
            mod.at_s,
            mod.ramp_s,
            mod.hold_s,
            mod.factor,
        )


class ArrivalStream:
    """Window-relative arrival iterator with analytic skip-ahead.

    The DES engine consumes arrival schedules as iterators of due
    times on the *measurement window's* clock (the window restarts its
    simulation clock at zero, while the envelope is evaluated at
    absolute scenario time — see
    :meth:`~repro.scenarios.compile.CompiledScenario.arrival_streams`).
    This wrapper adds the one capability a bare generator cannot
    offer: :meth:`skip_to`, which the analytic fast-forwarder calls
    after a clock jump so the schedule resumes at the jump target
    instead of replaying the skipped stretch arrival by arrival.

    ``steady`` is True when the envelope is flat (no modulation) —
    the precondition for fast-forward eligibility, since only a
    constant-rate schedule can be rate-extrapolated.  For the steady
    deterministic kind the skip is O(1): arrivals lie on the grid
    ``t0 + k/rate``, so the iterator re-anchors at the first grid
    point at or past the target.  Every other kind drains the
    underlying stream (no simulator events, and the RNG consumes the
    same draws it would have), preserving determinism.
    """

    __slots__ = (
        "process",
        "t0",
        "steady",
        "_iter",
        "_pushback",
        "_interval",
        "_last_t",
    )

    def __init__(self, process: ArrivalProcess, t0: float = 0.0) -> None:
        self.process = process
        self.t0 = t0
        self._iter = process.stream(t0)
        self._pushback: Optional[float] = None
        self._last_t = -math.inf
        self.steady = process.spec.modulation.kind is ModulationKind.NONE
        self._interval = (
            1.0 / process.spec.rate
            if (
                self.steady
                and process.spec.kind is ArrivalKind.DETERMINISTIC
                and process.spec.rate > 0.0
            )
            else None
        )

    def __iter__(self) -> "ArrivalStream":
        return self

    def __next__(self) -> float:
        if self._pushback is not None:
            t, self._pushback = self._pushback, None
        else:
            t = next(self._iter)
        self._last_t = t
        return t - self.t0

    def skip_to(self, rel_t: float) -> None:
        """Drop every arrival due before window-relative ``rel_t``.

        The next ``next()`` returns the first arrival at or after the
        target.  Skipped arrivals are *not* replayed — the caller
        (the fast-forwarder) has already accounted for them in its
        counter extrapolation.
        """
        t_abs = self.t0 + rel_t
        if self._pushback is not None:
            if self._pushback >= t_abs:
                return
            self._pushback = None
        if self._interval is not None:
            # Re-anchor on the exact grid (t0 + k/rate).  The epsilon
            # guard keeps credit-carry float drift in the target from
            # skipping one extra slot past a near-boundary arrival.
            k = math.ceil((t_abs - self.t0) / self._interval - 1e-9)
            if self._last_t > -math.inf:
                # Never rewind: a target behind the last drawn arrival
                # resumes right after it (round soaks up the source
                # generator's credit-carry float drift).
                k_min = (
                    round((self._last_t - self.t0) / self._interval) + 1
                )
                k = max(k, k_min)
            self._iter = self._grid(max(1, k))
            return
        for t in self._iter:
            if t >= t_abs:
                self._pushback = t
                return

    def _grid(self, k0: int) -> Iterator[float]:
        interval = self._interval
        for k in itertools.count(k0):
            yield self.t0 + k * interval
