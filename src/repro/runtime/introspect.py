"""Introspection: human-readable reports of a PE's execution state.

The real product ships ``streamtool`` views of how operators map to
threads; this module provides the equivalent for the simulated PE — a
region table with per-region work, the binding throughput constraint
and a utilization estimate — for debugging elasticity decisions and for
the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..perfmodel.throughput import ThroughputEstimate
from .pe import ProcessingElement


@dataclass(frozen=True)
class RegionReport:
    """One region's execution summary."""

    entry_name: str
    kind: str
    n_operators: int
    work_us_per_tuple: float
    share_of_bottleneck: float


@dataclass(frozen=True)
class PeReport:
    """Full configuration report for a PE."""

    graph_name: str
    machine_name: str
    scheduler_threads: int
    n_queues: int
    dynamic_ratio: float
    throughput: float
    limiting_factor: str
    regions: Tuple[RegionReport, ...]
    utilization: float

    def render(self, max_regions: int = 12) -> str:
        lines = [
            f"PE report: {self.graph_name} on {self.machine_name}",
            (
                f"  config     : {self.scheduler_threads} scheduler "
                f"threads, {self.n_queues} queues "
                f"({self.dynamic_ratio:.0%} dynamic)"
            ),
            (
                f"  throughput : {self.throughput:,.0f} tuples/s "
                f"(limited by {self.limiting_factor})"
            ),
            f"  utilization: {self.utilization:.0%} of busy capacity",
            (
                f"  regions ({len(self.regions)}, heaviest first, "
                f"top {min(max_regions, len(self.regions))}):"
            ),
        ]
        for r in self.regions[:max_regions]:
            bar = "#" * int(round(20 * r.share_of_bottleneck))
            lines.append(
                f"    {r.entry_name:<24s} {r.kind:<7s} "
                f"{r.n_operators:>4d} ops "
                f"{r.work_us_per_tuple:>9.2f} us/t |{bar:<20s}|"
            )
        if len(self.regions) > max_regions:
            lines.append(
                f"    ... {len(self.regions) - max_regions} more regions"
            )
        return "\n".join(lines)


def inspect(pe: ProcessingElement) -> PeReport:
    """Build a :class:`PeReport` for the PE's current configuration."""
    estimate: ThroughputEstimate = pe.estimate()
    graph = pe.graph
    works = sorted(estimate.region_work, key=lambda ew: -ew[1])
    max_work = works[0][1] if works and works[0][1] > 0 else 1.0
    decomp = pe.model.decomposition(pe.placement)
    source_entries = {r.entry for r in decomp.source_regions}
    members = decomp.operators_per_region()

    regions: List[RegionReport] = []
    for entry, work in works:
        regions.append(
            RegionReport(
                entry_name=graph.operator(entry).name,
                kind="source" if entry in source_entries else "dynamic",
                n_operators=len(members.get(entry, [])),
                work_us_per_tuple=work * 1e6,
                share_of_bottleneck=work / max_work,
            )
        )

    # Utilization: fraction of the active threads' capacity the current
    # throughput actually consumes.
    total_work = sum(w for _e, w in estimate.region_work)
    capacity = estimate.active_threads * estimate.thread_speed
    n_sources = max(1, len(graph.sources))
    demand = (estimate.throughput / n_sources) * total_work
    utilization = demand / capacity if capacity > 0 else 0.0

    return PeReport(
        graph_name=graph.name,
        machine_name=pe.machine.name,
        scheduler_threads=pe.scheduler_threads,
        n_queues=pe.n_queues,
        dynamic_ratio=pe.dynamic_ratio(),
        throughput=pe.true_throughput(),
        limiting_factor=estimate.limiting_factor,
        regions=tuple(regions),
        utilization=min(1.0, utilization),
    )
