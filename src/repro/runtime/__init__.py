"""Simulated SPL runtime: PE, queues, regions, adaptation executor.

Submodules are imported lazily (PEP 562): the performance model imports
``repro.runtime.queues``/``regions`` while ``repro.runtime.pe`` imports
the performance model, so an eager package init would be circular.
"""

from typing import TYPE_CHECKING

from .config import ElasticityConfig, RuntimeConfig
from .events import (
    AdaptationTrace,
    Observation,
    PlacementChange,
    ThreadCountChange,
)
from .queues import PlacementError, QueuePlacement
from .regions import Region, RegionDecomposition, decompose
from .snapshot import load_trace, save_trace, trace_from_dict, trace_to_dict

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from .backend import (
        AdaptationBackend,
        BackendResult,
        PerfModelAdaptationRunner,
    )
    from .executor import AdaptationExecutor, ExecutionResult, run_elastic
    from .pe import ProcessingElement

_LAZY = {
    "AdaptationBackend": ("repro.runtime.backend", "AdaptationBackend"),
    "BackendResult": ("repro.runtime.backend", "BackendResult"),
    "PerfModelAdaptationRunner": (
        "repro.runtime.backend",
        "PerfModelAdaptationRunner",
    ),
    "AdaptationExecutor": ("repro.runtime.executor", "AdaptationExecutor"),
    "ExecutionResult": ("repro.runtime.executor", "ExecutionResult"),
    "run_elastic": ("repro.runtime.executor", "run_elastic"),
    "ProcessingElement": ("repro.runtime.pe", "ProcessingElement"),
    "PeReport": ("repro.runtime.introspect", "PeReport"),
    "RegionReport": ("repro.runtime.introspect", "RegionReport"),
    "inspect_pe": ("repro.runtime.introspect", "inspect"),
    "Job": ("repro.runtime.job", "Job"),
    "JobResult": ("repro.runtime.job", "JobResult"),
    "PeStageResult": ("repro.runtime.job", "PeStageResult"),
    "SnapshotProfiler": ("repro.runtime.threads", "SnapshotProfiler"),
    "ThreadRegistry": ("repro.runtime.threads", "ThreadRegistry"),
}

__all__ = [
    "load_trace",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
    "ElasticityConfig",
    "RuntimeConfig",
    "AdaptationTrace",
    "Observation",
    "PlacementChange",
    "ThreadCountChange",
    "AdaptationBackend",
    "BackendResult",
    "PerfModelAdaptationRunner",
    "AdaptationExecutor",
    "ExecutionResult",
    "run_elastic",
    "ProcessingElement",
    "PeReport",
    "RegionReport",
    "inspect_pe",
    "Job",
    "JobResult",
    "PeStageResult",
    "SnapshotProfiler",
    "ThreadRegistry",
    "PlacementError",
    "QueuePlacement",
    "Region",
    "RegionDecomposition",
    "decompose",
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")
