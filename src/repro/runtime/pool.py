"""Process-pool primitives: stateless sweeps and sticky workers.

Two execution shapes share this module:

- :func:`run_cells` fans a sweep of *independent* cells across a
  throwaway :class:`~concurrent.futures.ProcessPoolExecutor`, one task
  per cell (the figure-experiment idiom, formerly
  ``repro.bench.parallel``);
- :class:`WorkerPool` keeps a fixed set of *sticky* workers alive for
  a whole run.  Each worker builds private state once (via the
  ``init_fn``) and every subsequent call runs against that state, so
  expensive simulator state never pickles between steps — only the
  small per-call argument/result records cross the pipe.  The multi-PE
  job executor uses this to keep each PE's
  :class:`~repro.des.adaptation.DesAdaptationRunner` resident in one
  worker for the duration of an adaptation run.

Determinism: a cell's (or worker's) random state is fully determined
by the seeds in its arguments — :func:`derive_seed` produces stable,
decorrelated per-cell seeds with BLAKE2 (unlike ``hash()``, which is
salted), so results are identical whether work runs serially, in a
pool, or in a pool of different width.

Environments without POSIX semaphores or ``fork``/``spawn`` support
(tight sandboxes) cannot host process pools at all; *infrastructure*
failures therefore degrade gracefully — :func:`run_cells` falls back
to an in-process serial loop, and :class:`WorkerPool` raises
:class:`WorkerPoolError` at construction so callers can fall back
likewise.  Genuine worker errors are re-raised with the worker's
traceback, not swallowed.

``REPRO_PARALLEL=0`` forces sweeps serial; ``REPRO_JOB_WORKERS=N``
sets the default sticky-pool width (see :func:`job_workers`).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import struct
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "WorkerPool",
    "WorkerPoolError",
    "derive_seed",
    "job_workers",
    "parallel_enabled",
    "run_cells",
]

# Pool-infrastructure failures that mean "this environment cannot run
# a process pool", as opposed to errors raised by the workload itself.
_POOL_INFRA_ERRORS = (
    BrokenProcessPool,
    OSError,
    PermissionError,
    ImportError,
    pickle.PicklingError,
)

# What a caller with a serial fallback should treat as "parallelism
# unavailable" when *starting* a sticky pool: infrastructure failures
# plus unpicklable arguments (closures/bound methods raise
# AttributeError or TypeError from the pickler, not PicklingError).
POOL_START_ERRORS = _POOL_INFRA_ERRORS + (AttributeError, TypeError)


def derive_seed(base_seed: int, *key: Any) -> int:
    """Stable, decorrelated seed for one sweep cell.

    Hashes ``base_seed`` together with the cell's identifying values
    (``repr``-encoded) into a 63-bit integer.  Unlike ``hash()``, the
    result does not depend on ``PYTHONHASHSEED``, so a cell gets the
    same seed in the parent, in a pool worker, and across runs.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(struct.pack("<q", base_seed))
    for part in key:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") & 0x7FFFFFFFFFFFFFFF


def parallel_enabled(override: Optional[bool] = None) -> bool:
    """Whether sweeps should fan out to a process pool.

    ``override`` wins when given; otherwise ``REPRO_PARALLEL=0`` (or
    ``false``/``no``/``off``) disables, and anything else enables.
    """
    if override is not None:
        return override
    flag = os.environ.get("REPRO_PARALLEL", "1").strip().lower()
    return flag not in ("0", "false", "no", "off")


def job_workers(override: Optional[int] = None) -> int:
    """Worker-pool width for multi-PE job runs.

    Same precedence as :func:`parallel_enabled`: an explicit
    ``override`` (e.g. the ``--jobs`` CLI flag) wins; otherwise the
    ``REPRO_JOB_WORKERS`` environment variable; otherwise 1, i.e. the
    sequential path.  Values below 1 (and unparsable ones) clamp to 1.
    """
    if override is not None:
        return max(1, int(override))
    raw = os.environ.get("REPRO_JOB_WORKERS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            return 1
    return 1


def _invoke(task: Tuple[Callable[..., Any], Tuple[Any, ...]]) -> Any:
    worker, cell = task
    return worker(*cell)


def run_cells(
    worker: Callable[..., Any],
    cells: Iterable[Sequence[Any]],
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Run ``worker(*cell)`` for every cell, results in cell order.

    ``worker`` must be a module-level (picklable) callable and each
    cell a tuple of picklable arguments.  Falls back to an in-process
    serial loop when the pool cannot be created or torn up mid-sweep
    (see module docstring); worker errors propagate unchanged.
    """
    from ..bench import cache

    cell_list = [tuple(cell) for cell in cells]
    if len(cell_list) < 2 or not parallel_enabled(parallel):
        return [worker(*cell) for cell in cell_list]
    workers = max_workers or min(len(cell_list), os.cpu_count() or 1)
    # Seed workers with the parent's memoized measurement cells
    # (repro.bench.cache): a sweep re-running a grid the parent has
    # already (partially) computed skips those cells in every worker.
    seed_cache = cache.snapshot() if cache.memo_enabled() else {}
    pool_kwargs = (
        {"initializer": cache.install, "initargs": (seed_cache,)}
        if seed_cache
        else {}
    )
    try:
        with ProcessPoolExecutor(max_workers=workers, **pool_kwargs) as pool:
            return list(
                pool.map(_invoke, [(worker, c) for c in cell_list])
            )
    except _POOL_INFRA_ERRORS:
        return [worker(*cell) for cell in cell_list]


class WorkerPoolError(RuntimeError):
    """A sticky worker died or raised; the message carries the
    worker-side traceback (or the death diagnosis)."""


def _pool_worker(
    conn,
    worker_id: int,
    init_fn: Callable[..., Any],
    init_args: Tuple[Any, ...],
    seed_cache: Dict[Tuple[Any, ...], Any],
) -> None:
    """Sticky-worker main loop: build state once, serve calls forever.

    Protocol: the parent sends ``(fn, args)`` pairs and ``None`` as
    the shutdown sentinel; every call gets exactly one ``("ok",
    result)`` or ``("err", traceback_text)`` reply, in order.  The
    init phase replies ``("ready", None)`` so construction errors
    surface at pool creation, not at first use.
    """
    from ..bench import cache

    try:
        if seed_cache:
            cache.install(seed_cache)
        state = init_fn(worker_id, *init_args)
        conn.send(("ready", None))
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:
            pass
        return
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        if msg is None:
            return
        fn, args = msg
        try:
            conn.send(("ok", fn(state, *args)))
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except Exception:
                return


class WorkerPool:
    """A fixed-width pool of sticky, stateful worker processes.

    Each worker runs ``state = init_fn(worker_id, *init_args)`` once
    at startup (plus a warm copy of the parent's measurement-memo
    cache) and then serves :meth:`submit` calls as ``fn(state,
    *args)`` in FIFO order.  ``init_fn`` and every submitted ``fn``
    must be module-level (picklable by reference); arguments and
    results must be picklable values.

    Replies are collected per worker with :meth:`recv`, in submission
    order — the caller owns the interleaving, which is what lets the
    job executor dispatch a wave of PEs and gather the results
    deterministically.  A worker that dies (or whose call raises)
    surfaces as :class:`WorkerPoolError` carrying the remote traceback.
    """

    def __init__(
        self,
        n_workers: int,
        init_fn: Callable[..., Any],
        init_args: Tuple[Any, ...] = (),
    ) -> None:
        from ..bench import cache

        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self._conns = []
        self._procs = []
        self._closed = False
        seed_cache = cache.snapshot() if cache.memo_enabled() else {}
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        try:
            for wid in range(n_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_pool_worker,
                    args=(
                        child_conn,
                        wid,
                        init_fn,
                        init_args,
                        seed_cache,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            # Init errors surface here, not at first submit.
            for wid in range(n_workers):
                self._recv_raw(wid)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    def submit(self, worker_id: int, fn: Callable[..., Any], *args: Any) -> None:
        """Queue ``fn(state, *args)`` on a worker; returns immediately.

        Collect the reply later with :meth:`recv` — replies come back
        in submission order per worker.
        """
        if self._closed:
            raise WorkerPoolError("pool is closed")
        try:
            self._conns[worker_id].send((fn, args))
        except (BrokenPipeError, OSError) as exc:
            raise WorkerPoolError(
                f"worker {worker_id} died before accepting work: {exc}"
            ) from exc

    def recv(self, worker_id: int) -> Any:
        """Next reply from a worker (FIFO), unwrapping remote errors."""
        payload = self._recv_raw(worker_id)
        return payload

    def _recv_raw(self, worker_id: int) -> Any:
        try:
            tag, payload = self._conns[worker_id].recv()
        except (EOFError, OSError) as exc:
            # The pipe can report EOF before the child is reaped;
            # join first so exitcode is populated, not None.
            proc = self._procs[worker_id]
            proc.join(timeout=5.0)
            code = proc.exitcode
            raise WorkerPoolError(
                f"worker {worker_id} died unexpectedly "
                f"(exit code {code})"
            ) from exc
        if tag == "err":
            raise WorkerPoolError(
                f"worker {worker_id} raised:\n{payload}"
            )
        return payload

    def call(self, worker_id: int, fn: Callable[..., Any], *args: Any) -> Any:
        """Synchronous convenience: submit then immediately recv."""
        self.submit(worker_id, fn, *args)
        return self.recv(worker_id)

    def close(self) -> None:
        """Shut every worker down; safe to call twice."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
