"""Multi-PE jobs: independent elasticity per PE, coupled by dataflow.

The paper scopes its mechanism to a single PE but notes that "all PEs
in a job independently use the proposed work to maximize their
performance" (§2).  This module models exactly that setting for a chain
of PEs on separate hosts:

- each PE runs its *own* multi-level coordinator on its *own* machine —
  no cross-PE coordination, as in the paper;
- PEs are coupled only through dataflow: downstream PE *i*'s source
  cannot ingest faster than upstream PE *i-1* currently emits, modeled
  by capping the downstream source's ``max_rate`` at the upstream's
  converged throughput (network backpressure);
- the job adapts in *rounds*: every PE runs its adaptation loop to
  stability, then the inter-PE rate caps are refreshed and any PE whose
  input rate changed materially re-adapts (its workload-change detector
  would fire on exactly this signal in a live system).

Job throughput is the sink PE's converged throughput.  The fixed point
exists because throughput caps are monotone (a PE's converged
throughput is non-decreasing in its input cap) and bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..graph.model import StreamGraph
from ..perfmodel.machine import MachineProfile
from .config import RuntimeConfig
from .executor import AdaptationExecutor
from .pe import ProcessingElement


@dataclass(frozen=True)
class PeStageResult:
    """Converged state of one PE in the chain."""

    name: str
    throughput: float
    input_cap: Optional[float]
    threads: int
    n_queues: int


@dataclass(frozen=True)
class JobResult:
    """Outcome of a multi-PE adaptation."""

    stages: Tuple[PeStageResult, ...]
    job_throughput: float
    rounds: int

    @property
    def bottleneck_stage(self) -> str:
        return min(self.stages, key=lambda s: s.throughput).name


def _cap_sources(graph: StreamGraph, cap: Optional[float]) -> StreamGraph:
    """Return a copy of ``graph`` with every source capped at ``cap``.

    A ``None`` cap removes any existing cap.  Uses the operator table
    rebuild path (graphs are immutable).
    """
    from ..graph.model import Operator

    new_ops: List[Operator] = []
    for op in graph:
        if op.is_source:
            new_ops.append(
                Operator(
                    index=op.index,
                    name=op.name,
                    cost_flops=op.cost_flops,
                    kind=op.kind,
                    selectivity=op.selectivity,
                    uses_lock=op.uses_lock,
                    fanout=op.fanout,
                    max_rate=cap,
                )
            )
        else:
            new_ops.append(op)
    return StreamGraph(
        new_ops,
        graph.edges,
        tuple_spec=graph.tuple_spec,
        name=graph.name,
    )


class Job:
    """A chain of PEs, each elastically adapting on its own host."""

    def __init__(
        self,
        stages: Sequence[Tuple[StreamGraph, MachineProfile]],
        config: Optional[RuntimeConfig] = None,
        rate_change_tolerance: float = 0.10,
    ) -> None:
        if not stages:
            raise ValueError("a job needs at least one PE stage")
        self.stages = list(stages)
        self.config = config if config is not None else RuntimeConfig()
        self.rate_change_tolerance = rate_change_tolerance

    # ------------------------------------------------------------------
    def _adapt_stage(
        self,
        graph: StreamGraph,
        machine: MachineProfile,
        input_cap: Optional[float],
        seed_offset: int,
        duration_s: float,
    ) -> Tuple[float, int, int]:
        capped = (
            _cap_sources(graph, input_cap)
            if input_cap is not None
            else graph
        )
        config = RuntimeConfig(
            cores=machine.logical_cores,
            seed=self.config.seed + seed_offset,
            noise_std=self.config.noise_std,
            elasticity=self.config.elasticity,
        )
        pe = ProcessingElement(capped, machine, config)
        executor = AdaptationExecutor(pe)
        result = executor.run(duration_s, stop_after_stable_periods=16)
        return (
            result.converged_throughput,
            result.final_threads,
            result.final_n_queues,
        )

    def run(
        self,
        duration_s_per_stage: float = 20_000.0,
        max_rounds: int = 5,
    ) -> JobResult:
        """Adapt every PE, propagating inter-PE rate caps to a fixed
        point (at most ``max_rounds`` sweeps)."""
        n = len(self.stages)
        caps: List[Optional[float]] = [None] * n
        throughputs: List[float] = [0.0] * n
        threads: List[int] = [0] * n
        queues: List[int] = [0] * n
        rounds = 0
        for round_idx in range(max_rounds):
            rounds = round_idx + 1
            changed = False
            for i, (graph, machine) in enumerate(self.stages):
                # Seed per stage, NOT per round: re-adapting an
                # unchanged stage must reproduce the same result or the
                # fixed-point detection never terminates early.
                t, thr, q = self._adapt_stage(
                    graph,
                    machine,
                    caps[i],
                    seed_offset=17 * i,
                    duration_s=duration_s_per_stage,
                )
                if throughputs[i] == 0.0 or (
                    abs(t - throughputs[i])
                    > self.rate_change_tolerance * max(throughputs[i], 1e-9)
                ):
                    changed = True
                throughputs[i], threads[i], queues[i] = t, thr, q
                # The downstream PE's ingest is bounded by what this
                # stage emits (per downstream source).
                if i + 1 < n:
                    downstream_sources = max(
                        1, len(self.stages[i + 1][0].sources)
                    )
                    caps[i + 1] = t / downstream_sources
            if not changed:
                break
        stage_results = tuple(
            PeStageResult(
                name=graph.name,
                throughput=throughputs[i],
                input_cap=caps[i],
                threads=threads[i],
                n_queues=queues[i],
            )
            for i, (graph, _machine) in enumerate(self.stages)
        )
        return JobResult(
            stages=stage_results,
            job_throughput=throughputs[-1],
            rounds=rounds,
        )
