"""Thread bookkeeping: the per-thread state variable of §3.

The paper's operator cost metric works by "registering a runtime level
per-thread state variable for each thread in the system, which is set to
the corresponding operator index when threads enter the processing logic
of that operator"; a profiler thread periodically snapshots all threads
and counts which operators they were caught in.

:class:`ThreadRegistry` is that mechanism: execution substrates (the DES
engine) publish each thread's current operator through it, and
:class:`SnapshotProfiler` turns periodic snapshots into the same
:class:`~repro.core.profiler.CostProfile` the analytical profiler
produces — so the binning/elasticity stack runs unchanged on metrics
gathered from *actual execution* rather than from the cost model.

Sampled accounting
------------------
Fine-grained publication (one :meth:`ThreadRegistry.set_current` per
operator entry) forces the execution substrate to advance time once per
operator, which defeats the DES engine's coalesced fast path.  The
registry therefore also supports **interval publication**: a thread
executing a merged time advance registers the advance's analytic
composition — a repeating cycle of ``(operator, duration)`` segments —
via :meth:`ThreadRegistry.set_interval`.  A snapshot taken at simulated
time ``now`` inside the interval resolves the operator *positionally*
(which segment of the cycle covers ``now``), which is exactly where the
fine-grained execution would have been caught at that instant.  The
profile is therefore statistically equivalent to fine-grained
profiling while the substrate keeps one event per merged advance.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.profiler import CostProfile
from ..obs.hub import Obs, ensure_hub

IDLE: Optional[int] = None

# One repeating cycle of a merged time advance: per-segment cumulative
# end offsets (strictly covering (0, cycle]) and the operator index each
# segment attributes to (None = non-operator work such as push copies).
IntervalCycle = Tuple[Tuple[float, ...], Tuple[Optional[int], ...]]


@dataclass
class ThreadState:
    """One thread's published state."""

    name: str
    current_operator: Optional[int] = IDLE
    snapshots_taken: int = 0
    # Sampled-accounting interval: while the simulated clock lies in
    # [interval_start, interval_end) the thread is executing
    # ``interval_ops`` segments cyclically (cumulative segment ends in
    # ``interval_bounds``, one cycle lasting ``interval_cycle_s``).
    interval_start: float = 0.0
    interval_end: float = 0.0
    interval_cycle_s: float = 0.0
    interval_bounds: Optional[Tuple[float, ...]] = field(
        default=None, repr=False
    )
    interval_ops: Optional[Tuple[Optional[int], ...]] = field(
        default=None, repr=False
    )


class ThreadRegistry:
    """Registry of live threads and their current operator indices."""

    def __init__(self) -> None:
        self._threads: Dict[str, ThreadState] = {}
        # Snapshot attributions resolved through an interval rather
        # than a point publication (profiler.sampled_intervals metric).
        self.interval_attributions = 0

    def register(self, name: str) -> ThreadState:
        if name in self._threads:
            raise ValueError(f"thread {name!r} already registered")
        state = ThreadState(name=name)
        self._threads[name] = state
        return state

    def set_current(self, name: str, operator: Optional[int]) -> None:
        """Publish the operator ``name`` is about to execute (None=idle).

        Mirrors the runtime setting the per-thread state variable on
        entry to an operator's processing logic.  Point publication
        supersedes any expired interval.
        """
        self._threads[name].current_operator = operator

    def set_interval(
        self,
        name: str,
        start: float,
        bounds: Tuple[float, ...],
        ops: Tuple[Optional[int], ...],
        repeats: int = 1,
    ) -> None:
        """Publish a merged time advance as a repeating segment cycle.

        ``bounds`` are cumulative segment end offsets within one cycle
        (``bounds[-1]`` is the cycle length) and ``ops[i]`` is the
        operator segment *i* attributes to.  The interval covers
        ``repeats`` consecutive cycles starting at simulated time
        ``start``.  The thread's point state is cleared (idle), so a
        snapshot falling outside the interval — e.g. exactly at its
        end, after the merged advance completed — reads idle, matching
        the fine-grained path between work items.
        """
        state = self._threads[name]
        cycle_s = bounds[-1]
        state.current_operator = IDLE
        state.interval_start = start
        state.interval_cycle_s = cycle_s
        state.interval_end = start + cycle_s * repeats
        state.interval_bounds = bounds
        state.interval_ops = ops

    def clear_interval(self, name: str) -> None:
        state = self._threads[name]
        state.interval_bounds = None
        state.interval_ops = None

    def snapshot(
        self, now: Optional[float] = None
    ) -> Tuple[Tuple[str, Optional[int]], ...]:
        """One profiler wake-up: every thread's current operator.

        With ``now`` given, threads that published a covering interval
        are resolved positionally within their segment cycle; all other
        threads report their point state.
        """
        out = []
        for state in self._threads.values():
            state.snapshots_taken += 1
            operator = state.current_operator
            bounds = state.interval_bounds
            if (
                now is not None
                and bounds is not None
                and state.interval_start <= now < state.interval_end
            ):
                offset = (now - state.interval_start) % state.interval_cycle_s
                operator = state.interval_ops[bisect_right(bounds, offset)]
                self.interval_attributions += 1
            out.append((state.name, operator))
        return tuple(out)

    @property
    def thread_names(self) -> Tuple[str, ...]:
        return tuple(self._threads)

    def __len__(self) -> int:
        return len(self._threads)


class SnapshotProfiler:
    """Accumulates registry snapshots into an operator cost profile."""

    def __init__(
        self, registry: ThreadRegistry, obs: Optional[Obs] = None
    ) -> None:
        self.registry = registry
        self._counters: Dict[int, int] = {}
        self._samples = 0
        hub = ensure_hub(obs)
        self._m_interval_samples = hub.registry.counter(
            "profiler.sampled_intervals",
            "snapshot attributions resolved via sampled-accounting "
            "intervals (fast-path merged advances)",
        )

    def sample(self, now: Optional[float] = None) -> None:
        """Take one snapshot and update the per-operator counters.

        ``now`` is the substrate's current simulated time; passing it
        lets threads publishing sampled-accounting intervals resolve
        positionally (see :meth:`ThreadRegistry.set_interval`).
        """
        self._samples += 1
        before = self.registry.interval_attributions
        for _thread, operator in self.registry.snapshot(now):
            if operator is not None:
                self._counters[operator] = (
                    self._counters.get(operator, 0) + 1
                )
        resolved = self.registry.interval_attributions - before
        if resolved:
            self._m_interval_samples.inc(resolved)

    @property
    def samples_taken(self) -> int:
        return self._samples

    def profile(self, n_operators: int) -> CostProfile:
        """Render the counters as a :class:`CostProfile`.

        ``n_operators`` fixes the index domain so operators never caught
        by the profiler appear with a zero count (they form the lightest
        profiling group).
        """
        counts = tuple(
            (idx, self._counters.get(idx, 0))
            for idx in range(n_operators)
        )
        return CostProfile(
            counts=counts,
            n_samples=sum(self._counters.values()),
        )

    def reset(self) -> None:
        self._counters.clear()
        self._samples = 0
