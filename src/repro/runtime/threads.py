"""Thread bookkeeping: the per-thread state variable of §3.

The paper's operator cost metric works by "registering a runtime level
per-thread state variable for each thread in the system, which is set to
the corresponding operator index when threads enter the processing logic
of that operator"; a profiler thread periodically snapshots all threads
and counts which operators they were caught in.

:class:`ThreadRegistry` is that mechanism: execution substrates (the DES
engine) publish each thread's current operator through it, and
:class:`SnapshotProfiler` turns periodic snapshots into the same
:class:`~repro.core.profiler.CostProfile` the analytical profiler
produces — so the binning/elasticity stack runs unchanged on metrics
gathered from *actual execution* rather than from the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.profiler import CostProfile

IDLE: Optional[int] = None


@dataclass
class ThreadState:
    """One thread's published state."""

    name: str
    current_operator: Optional[int] = IDLE
    snapshots_taken: int = 0


class ThreadRegistry:
    """Registry of live threads and their current operator indices."""

    def __init__(self) -> None:
        self._threads: Dict[str, ThreadState] = {}

    def register(self, name: str) -> ThreadState:
        if name in self._threads:
            raise ValueError(f"thread {name!r} already registered")
        state = ThreadState(name=name)
        self._threads[name] = state
        return state

    def set_current(self, name: str, operator: Optional[int]) -> None:
        """Publish the operator ``name`` is about to execute (None=idle).

        Mirrors the runtime setting the per-thread state variable on
        entry to an operator's processing logic.
        """
        self._threads[name].current_operator = operator

    def snapshot(self) -> Tuple[Tuple[str, Optional[int]], ...]:
        """One profiler wake-up: every thread's current operator."""
        out = []
        for state in self._threads.values():
            state.snapshots_taken += 1
            out.append((state.name, state.current_operator))
        return tuple(out)

    @property
    def thread_names(self) -> Tuple[str, ...]:
        return tuple(self._threads)

    def __len__(self) -> int:
        return len(self._threads)


class SnapshotProfiler:
    """Accumulates registry snapshots into an operator cost profile."""

    def __init__(self, registry: ThreadRegistry) -> None:
        self.registry = registry
        self._counters: Dict[int, int] = {}
        self._samples = 0

    def sample(self) -> None:
        """Take one snapshot and update the per-operator counters."""
        self._samples += 1
        for _thread, operator in self.registry.snapshot():
            if operator is not None:
                self._counters[operator] = (
                    self._counters.get(operator, 0) + 1
                )

    @property
    def samples_taken(self) -> int:
        return self._samples

    def profile(self, n_operators: int) -> CostProfile:
        """Render the counters as a :class:`CostProfile`.

        ``n_operators`` fixes the index domain so operators never caught
        by the profiler appear with a zero count (they form the lightest
        profiling group).
        """
        counts = tuple(
            (idx, self._counters.get(idx, 0))
            for idx in range(n_operators)
        )
        return CostProfile(
            counts=counts,
            n_samples=sum(self._counters.values()),
        )

    def reset(self) -> None:
        self._counters.clear()
        self._samples = 0
