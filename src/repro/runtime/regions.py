"""Fusion of the stream graph into execution regions.

Given a queue placement, the PE's operators partition into *regions*:

- every **source** operator starts a region, executed by its dedicated
  operator thread;
- every **queued** operator starts a region, executed by whichever
  scheduler thread pops a tuple from its queue;
- a non-queued operator is executed inline (function call) by the thread
  driving its upstream operator, so it belongs to the region(s) of its
  in-region predecessors.

A region is *serial*: at most one thread executes it at a time (the
operator thread for source regions; scheduler queues serialize access to
queued operators, matching the port-protection in the SPL runtime).  The
region decomposition therefore determines both the pipeline-parallelism
available (one unit per region) and the per-unit bottleneck work.

Rates are propagated from the graph so every region knows, per unit of
source emission rate:

- ``entry_rate`` — tuples entering the region head,
- ``op_rates`` — tuples processed at each member operator,
- ``push_rates`` — tuples pushed into each downstream scheduler queue.

Fan-in without a queue means an operator can belong to several regions;
each region accounts only for the tuples *it* delivers to that operator,
so the global rates are conserved (tested property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph.model import StreamGraph
from .queues import QueuePlacement


@dataclass(frozen=True)
class Region:
    """One serial execution unit of the PE."""

    entry: int
    is_source_region: bool
    entry_rate: float
    op_rates: Tuple[Tuple[int, float], ...]
    push_rates: Tuple[Tuple[int, float], ...]

    @property
    def operators(self) -> Tuple[int, ...]:
        return tuple(idx for idx, _ in self.op_rates)

    def op_rate(self, idx: int) -> float:
        for op_idx, rate in self.op_rates:
            if op_idx == idx:
                return rate
        return 0.0


@dataclass(frozen=True)
class RegionDecomposition:
    """All regions of a PE under a particular queue placement."""

    regions: Tuple[Region, ...]
    placement: QueuePlacement

    @property
    def source_regions(self) -> Tuple[Region, ...]:
        return tuple(r for r in self.regions if r.is_source_region)

    @property
    def dynamic_regions(self) -> Tuple[Region, ...]:
        return tuple(r for r in self.regions if not r.is_source_region)

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    def region_of_entry(self, entry: int) -> Region:
        for region in self.regions:
            if region.entry == entry:
                return region
        raise KeyError(f"no region with entry operator {entry}")

    def operators_per_region(self) -> Dict[int, List[int]]:
        """Map region entry -> member operator indices."""
        return {r.entry: list(r.operators) for r in self.regions}

    def threads_reaching(self, op_idx: int) -> int:
        """Number of distinct regions whose execution touches ``op_idx``.

        Used by the contention model: an operator reachable from *k*
        regions can be executed by up to *k* threads concurrently, so a
        lock inside it contends among up to *k* threads.
        """
        return sum(1 for r in self.regions if r.op_rate(op_idx) > 0.0)


def decompose(
    graph: StreamGraph, placement: QueuePlacement
) -> RegionDecomposition:
    """Partition ``graph`` into regions under ``placement``.

    The algorithm walks from each region head (source or queued
    operator) through non-queued successors, propagating tuple rates.
    Complexity is O(V + E) per region head in the worst case but each
    edge is visited exactly once overall, since an edge belongs to
    exactly one region (the region executing its ``src``) — either it
    stays in-region (dst not queued) or becomes a push (dst queued).
    """
    placement.validate(graph)
    global_rates = graph.arrival_rates()

    heads: List[int] = [op.index for op in graph.sources]
    heads.extend(
        idx for idx in sorted(placement.queued)
    )

    regions: List[Region] = []
    topo_position = {idx: pos for pos, idx in enumerate(graph.topological_order())}

    for head in heads:
        is_source = graph.operator(head).is_source
        entry_rate = 1.0 if is_source else global_rates[head]
        # In-region rate propagation.  ``rates`` maps op -> tuples/sec
        # processed by THIS region, per unit source rate.  For a queued
        # head all tuples arriving at the queue are handled here; for a
        # source the region handles its own emissions.
        rates: Dict[int, float] = {head: entry_rate}
        pushes: Dict[int, float] = {}
        # Process members in topological order so fan-in inside the
        # region accumulates fully before the operator's own outputs are
        # propagated.
        frontier = {head}
        members: List[int] = []
        # Collect the member set first (reachable without crossing queues).
        stack = [head]
        member_set = {head}
        while stack:
            node = stack.pop()
            for succ in graph.successors(node):
                if succ in placement:
                    continue
                if succ not in member_set:
                    member_set.add(succ)
                    stack.append(succ)
        members = sorted(member_set, key=lambda i: topo_position[i])
        for node in members:
            node_rate = rates.get(node, 0.0)
            per_succ = node_rate * graph.edge_rate_multiplier(node)
            for succ in graph.successors(node):
                if succ in placement:
                    pushes[succ] = pushes.get(succ, 0.0) + per_succ
                else:
                    rates[succ] = rates.get(succ, 0.0) + per_succ
        del frontier
        op_rates = tuple(
            (idx, rates.get(idx, 0.0)) for idx in members
        )
        push_rates = tuple(sorted(pushes.items()))
        regions.append(
            Region(
                entry=head,
                is_source_region=is_source,
                entry_rate=entry_rate,
                op_rates=op_rates,
                push_rates=push_rates,
            )
        )

    return RegionDecomposition(regions=tuple(regions), placement=placement)
