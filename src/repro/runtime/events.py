"""Trace events recorded by the adaptation executor.

Every adaptation period emits an :class:`Observation`; configuration
changes emit :class:`ThreadCountChange` / :class:`PlacementChange`.
The trace is the raw material for the Fig. 6 / Fig. 13 timelines and
for the SASO property analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Observation:
    """One adaptation period's measurement."""

    time_s: float
    throughput: float
    true_throughput: float
    threads: int
    n_queues: int
    mode: str


@dataclass(frozen=True)
class ThreadCountChange:
    time_s: float
    old_threads: int
    new_threads: int


@dataclass(frozen=True)
class PlacementChange:
    time_s: float
    old_n_queues: int
    new_n_queues: int


@dataclass
class AdaptationTrace:
    """Complete record of one elastic run."""

    observations: List[Observation]
    thread_changes: List[ThreadCountChange]
    placement_changes: List[PlacementChange]

    @staticmethod
    def empty() -> "AdaptationTrace":
        return AdaptationTrace([], [], [])

    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        return self.observations[-1].time_s if self.observations else 0.0

    def final_throughput(self, window: int = 8) -> float:
        """Mean throughput over the last ``window`` observations."""
        if not self.observations:
            return 0.0
        tail = self.observations[-window:]
        return sum(o.true_throughput for o in tail) / len(tail)

    def final_threads(self) -> int:
        return self.observations[-1].threads if self.observations else 0

    def final_n_queues(self) -> int:
        return self.observations[-1].n_queues if self.observations else 0

    def last_change_time(self) -> float:
        """Time of the last configuration change (settling time proxy)."""
        times = [c.time_s for c in self.thread_changes]
        times += [c.time_s for c in self.placement_changes]
        return max(times) if times else 0.0

    def settling_time(self, tolerance: float = 0.05) -> float:
        """Adaptation period length: when throughput last left the
        ``tolerance`` band around the final converged throughput.

        This matches how the paper reads Fig. 6 ("stabilizes after 1000
        seconds"): the trace is converged once throughput stays within
        the band for the remainder of the run.
        """
        final = self.final_throughput()
        if final == 0.0:
            return self.duration_s
        settled_at = 0.0
        for obs in self.observations:
            if abs(obs.true_throughput / final - 1.0) > tolerance:
                settled_at = obs.time_s
        return settled_at

    def throughput_series(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(
            (o.time_s, o.true_throughput) for o in self.observations
        )

    def queue_series(self) -> Tuple[Tuple[float, int], ...]:
        return tuple((o.time_s, o.n_queues) for o in self.observations)

    def thread_series(self) -> Tuple[Tuple[float, int], ...]:
        return tuple((o.time_s, o.threads) for o in self.observations)

    def max_threads_used(self) -> int:
        return max((o.threads for o in self.observations), default=0)
