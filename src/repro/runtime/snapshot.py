"""Serialization of adaptation traces to/from JSON.

Long elastic runs are expensive to regenerate; persisting their traces
lets the SASO analysis, the reporting layer and external plotting tools
work offline.  The format is a plain versioned JSON document — no
pickling, so traces are portable across library versions and safe to
share.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .events import (
    AdaptationTrace,
    Observation,
    PlacementChange,
    ThreadCountChange,
)

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def trace_to_dict(trace: AdaptationTrace) -> dict:
    """Convert a trace to a JSON-serializable dictionary."""
    return {
        "version": FORMAT_VERSION,
        "observations": [
            {
                "time_s": o.time_s,
                "throughput": o.throughput,
                "true_throughput": o.true_throughput,
                "threads": o.threads,
                "n_queues": o.n_queues,
                "mode": o.mode,
            }
            for o in trace.observations
        ],
        "thread_changes": [
            {
                "time_s": c.time_s,
                "old_threads": c.old_threads,
                "new_threads": c.new_threads,
            }
            for c in trace.thread_changes
        ],
        "placement_changes": [
            {
                "time_s": c.time_s,
                "old_n_queues": c.old_n_queues,
                "new_n_queues": c.new_n_queues,
            }
            for c in trace.placement_changes
        ],
    }


def trace_from_dict(data: dict) -> AdaptationTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    trace = AdaptationTrace.empty()
    for o in data["observations"]:
        trace.observations.append(
            Observation(
                time_s=float(o["time_s"]),
                throughput=float(o["throughput"]),
                true_throughput=float(o["true_throughput"]),
                threads=int(o["threads"]),
                n_queues=int(o["n_queues"]),
                mode=str(o["mode"]),
            )
        )
    for c in data["thread_changes"]:
        trace.thread_changes.append(
            ThreadCountChange(
                time_s=float(c["time_s"]),
                old_threads=int(c["old_threads"]),
                new_threads=int(c["new_threads"]),
            )
        )
    for c in data["placement_changes"]:
        trace.placement_changes.append(
            PlacementChange(
                time_s=float(c["time_s"]),
                old_n_queues=int(c["old_n_queues"]),
                new_n_queues=int(c["new_n_queues"]),
            )
        )
    return trace


def save_trace(trace: AdaptationTrace, path: PathLike) -> None:
    """Write a trace to ``path`` as JSON."""
    payload = json.dumps(trace_to_dict(trace), indent=1)
    pathlib.Path(path).write_text(payload)


def load_trace(path: PathLike) -> AdaptationTrace:
    """Read a trace previously written by :func:`save_trace`."""
    data = json.loads(pathlib.Path(path).read_text())
    return trace_from_dict(data)
