"""The adaptation-backend protocol: one loop shape, many substrates.

Three things in this repo can drive the multi-level elastic control
loop to convergence: the tuple-level DES
(:class:`~repro.des.adaptation.DesAdaptationRunner`), the analytical
performance model (:class:`~repro.runtime.executor.AdaptationExecutor`
over a :class:`~repro.runtime.pe.ProcessingElement`), and the multi-PE
job executor (:class:`~repro.job.executor.JobAdaptationRunner`).  They
grew different constructors — each substrate needs different knobs —
but callers that only want "run the loop, give me the converged
configuration" should not care which substrate is underneath.

:class:`AdaptationBackend` pins that shared surface as a structural
protocol: a ``run(max_periods, stop_after_stable_periods)`` method
returning a result with ``trace``, ``final_threads``,
``final_n_queues`` and ``converged_throughput``, plus a
``set_warm_start(spec)`` method accepting the same picklable
:class:`~repro.core.warmstart.WarmStartSpec` on every substrate (a
disabled or ``None`` spec must leave the stock cold-start decision
log byte-identical).  The DES and job runners satisfy it natively;
:class:`PerfModelAdaptationRunner` adapts the executor's
duration-based API (the perfmodel thinks in simulated seconds, the
protocol in periods).

The protocol is runtime-checkable so tests can assert conformance
without importing every substrate, but it is *structural*: nothing
needs to inherit from it.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

from ..obs.hub import Obs
from .config import RuntimeConfig
from .events import AdaptationTrace


@runtime_checkable
class BackendResult(Protocol):
    """What every backend's ``run`` hands back."""

    trace: AdaptationTrace

    @property
    def final_threads(self) -> int: ...

    @property
    def final_n_queues(self) -> int: ...

    @property
    def converged_throughput(self) -> float: ...


@runtime_checkable
class AdaptationBackend(Protocol):
    """A substrate that can drive the elastic loop to convergence.

    ``max_periods=None`` means "the backend's own default horizon" —
    for the perfmodel adapter that is the duration it was constructed
    with, for period-counted backends their default cap.
    """

    def run(
        self,
        max_periods: Optional[int] = None,
        stop_after_stable_periods: Optional[int] = 8,
    ) -> BackendResult: ...

    def set_warm_start(self, spec) -> None: ...


class PerfModelAdaptationRunner:
    """:class:`AdaptationBackend` facade over the analytical model.

    The underlying :class:`~repro.runtime.executor.AdaptationExecutor`
    runs for a *duration*; the protocol speaks in *periods*.  The
    adapter converts: ``max_periods`` periods of the configured
    adaptation period, or the ``duration_s`` given at construction
    when ``max_periods`` is None — preserving scenario semantics,
    where ``run.duration_s`` (not ``run.max_periods``) governs
    perfmodel runs.
    """

    def __init__(
        self,
        graph,
        machine,
        config: Optional[RuntimeConfig] = None,
        duration_s: float = 2000.0,
        workload_events: Optional[List[tuple]] = None,
        obs: Optional[Obs] = None,
        warm_start=None,
    ) -> None:
        from .executor import AdaptationExecutor
        from .pe import ProcessingElement

        self.config = config if config is not None else RuntimeConfig()
        self.duration_s = duration_s
        self.pe = ProcessingElement(graph, machine, self.config)
        self._obs = obs
        self.executor = AdaptationExecutor(
            self.pe, workload_events=workload_events, obs=obs
        )
        self._warm_spec = None
        if warm_start is not None:
            self.set_warm_start(warm_start)

    def set_warm_start(self, spec) -> None:
        """Install (or clear) the warm-start policy on the underlying
        coordinator.  The analytical substrate is steady-state — no
        envelope clock — so its phase token is constant; the graph is
        read lazily because workload events may swap it mid-run.
        """
        from ..core.warmstart import make_runner_session

        self._warm_spec = spec
        self.executor.coordinator.set_warm_start(
            make_runner_session(
                spec,
                graph_fn=lambda: self.pe.graph,
                machine=self.pe.machine,
                config=self.config,
                phase_token=lambda: "steady",
                obs=self._obs,
            )
        )

    def run(
        self,
        max_periods: Optional[int] = None,
        stop_after_stable_periods: Optional[int] = 8,
    ):
        period_s = self.config.elasticity.adaptation_period_s
        duration = (
            self.duration_s
            if max_periods is None
            else max_periods * period_s
        )
        return self.executor.run(
            duration_s=duration,
            stop_after_stable_periods=stop_after_stable_periods,
        )
