"""Runtime configuration for the simulated processing element.

Collects every tunable the paper names, with the paper's defaults:

- adaptation period: 5 s ("we use a period of 5 seconds"),
- sensitivity threshold SENS = 0.05 ("at least a 5 % performance
  difference before establishing a performance trend"),
- satisfaction-factor threshold THRE (§3.3; the paper demonstrates 0.6
  and 0),
- maximum thread count (bounded by the machine's logical cores).

All stochastic behaviour (noise, group sampling) is seeded through
``seed`` so experiments are reproducible run-to-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

DEFAULT_ADAPTATION_PERIOD_S = 5.0
DEFAULT_SENS = 0.05
DEFAULT_SATISFACTION_THRESHOLD = 0.6


@dataclass(frozen=True)
class ElasticityConfig:
    """Knobs of the elastic controllers (paper §3.1.1, §3.3)."""

    adaptation_period_s: float = DEFAULT_ADAPTATION_PERIOD_S
    sens: float = DEFAULT_SENS
    satisfaction_threshold: float = DEFAULT_SATISFACTION_THRESHOLD
    use_history: bool = True
    use_satisfaction_factor: bool = True
    min_threads: int = 1
    max_threads: Optional[int] = None
    initial_threads: int = 1
    profiling_period_s: float = 0.01
    profiling_samples: int = 200

    def __post_init__(self) -> None:
        if self.adaptation_period_s <= 0:
            raise ValueError(
                f"adaptation_period_s must be > 0, got {self.adaptation_period_s}"
            )
        if not 0.0 <= self.sens < 1.0:
            raise ValueError(f"sens must be in [0, 1), got {self.sens}")
        if not 0.0 <= self.satisfaction_threshold <= 1.0:
            raise ValueError(
                "satisfaction_threshold must be in [0, 1], got "
                f"{self.satisfaction_threshold}"
            )
        if self.min_threads < 1:
            raise ValueError(
                f"min_threads must be >= 1, got {self.min_threads}"
            )
        if self.max_threads is not None and self.max_threads < self.min_threads:
            raise ValueError(
                f"max_threads ({self.max_threads}) < min_threads "
                f"({self.min_threads})"
            )
        if self.initial_threads < self.min_threads:
            raise ValueError(
                f"initial_threads ({self.initial_threads}) < min_threads "
                f"({self.min_threads})"
            )

    def without_optimizations(self) -> "ElasticityConfig":
        """Variant with both adaptation-period optimizations disabled.

        Corresponds to Fig. 6(a): no history learning, no satisfaction
        factor.
        """
        return replace(
            self, use_history=False, use_satisfaction_factor=False
        )

    def with_history_only(self) -> "ElasticityConfig":
        """Fig. 6(b): learning from history, no satisfaction factor."""
        return replace(self, use_history=True, use_satisfaction_factor=False)

    def with_satisfaction(self, threshold: float) -> "ElasticityConfig":
        """Fig. 6(c)/(d): history plus a satisfaction factor threshold."""
        return replace(
            self,
            use_history=True,
            use_satisfaction_factor=True,
            satisfaction_threshold=threshold,
        )


@dataclass(frozen=True)
class RuntimeConfig:
    """Full configuration of a simulated PE run."""

    cores: int = 16
    elasticity: ElasticityConfig = field(default_factory=ElasticityConfig)
    seed: int = 0
    noise_std: float = 0.01

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.noise_std < 0:
            raise ValueError(
                f"noise_std must be >= 0, got {self.noise_std}"
            )

    @property
    def effective_max_threads(self) -> int:
        """Ceiling on scheduler threads: explicit cap or the core count."""
        if self.elasticity.max_threads is not None:
            return self.elasticity.max_threads
        return self.cores
