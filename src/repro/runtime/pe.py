"""The simulated processing element (PE).

A PE bundles the static stream graph with the mutable execution
configuration (queue placement + scheduler thread count) and the
performance substrate used to observe throughput.  This mirrors the
paper's setting: "This paper is only concerned with the execution
inside of a single PE".

The PE exposes exactly the observables the elastic controllers are
allowed to see:

- :meth:`observe_throughput` — sink throughput over the last adaptation
  period, with measurement noise;
- :meth:`profile` — a sampling-profiler pass yielding operator cost
  metrics.

It also exposes ground truth (:meth:`true_throughput`) for evaluation
and tests, which the controllers never consume.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.binning import ProfilingGroup, build_groups
from ..core.profiler import CostProfile, SamplingProfiler
from ..graph.model import StreamGraph
from ..perfmodel.machine import MachineProfile
from ..perfmodel.noise import NoiseModel
from ..perfmodel.throughput import PerformanceModel, ThroughputEstimate
from .config import RuntimeConfig
from .queues import QueuePlacement


class ProcessingElement:
    """A single simulated Streams PE."""

    def __init__(
        self,
        graph: StreamGraph,
        machine: MachineProfile,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.config = config if config is not None else RuntimeConfig()
        self.machine = machine
        self.graph = graph
        self.model = PerformanceModel(graph, machine)
        self.placement = QueuePlacement.empty()
        self.scheduler_threads = self.config.elasticity.initial_threads
        self._noise = NoiseModel(
            std=self.config.noise_std, seed=self.config.seed
        )
        self._profiler = SamplingProfiler(
            machine,
            n_samples=self.config.elasticity.profiling_samples,
            seed=self.config.seed + 1,
        )

    # ------------------------------------------------------------------
    # configuration mutation (driven by the elastic controllers)
    # ------------------------------------------------------------------
    def set_placement(self, placement: QueuePlacement) -> None:
        placement.validate(self.graph)
        self.placement = placement

    def set_scheduler_threads(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"scheduler thread count must be >= 0: {n}")
        self.scheduler_threads = n

    def set_graph(self, graph: StreamGraph) -> None:
        """Swap the workload (phase change); placement indices must
        remain valid in the new graph."""
        self.placement.validate(graph)
        self.graph = graph
        self.model.invalidate(graph)

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def estimate(self) -> ThroughputEstimate:
        return self.model.estimate(self.placement, self.scheduler_threads)

    def true_throughput(self) -> float:
        """Noise-free sink throughput (evaluation only)."""
        return self.model.sink_throughput(
            self.placement, self.scheduler_threads
        )

    def observe_throughput(self) -> float:
        """Noisy sink throughput, as the adaptation thread would see."""
        return self._noise.observe(self.true_throughput())

    def profile(self) -> CostProfile:
        return self._profiler.profile(self.graph)

    def profiling_groups(self, base: float = 10.0) -> List[ProfilingGroup]:
        """One full profiling pass binned into groups."""
        return build_groups(self.graph, self.profile(), base=base)

    # ------------------------------------------------------------------
    @property
    def n_queues(self) -> int:
        return self.placement.n_queues

    def dynamic_ratio(self) -> float:
        return self.placement.dynamic_ratio(self.graph)

    def __repr__(self) -> str:
        return (
            f"ProcessingElement(graph={self.graph.name!r}, "
            f"machine={self.machine.name!r}, "
            f"threads={self.scheduler_threads}, queues={self.n_queues})"
        )
