"""Virtual-clock adaptation executor.

Drives the multi-level coordinator against a simulated PE: every
``adaptation_period_s`` of virtual time, the executor observes the PE's
throughput, feeds it to the coordinator and applies the returned
configuration changes — exactly the paper's dedicated *adaptation
thread* loop, but with simulated time so a 1000-second adaptation run
finishes in milliseconds.

Workload schedules (Fig. 13) are supported through ``workload_events``:
a list of ``(time_s, graph)`` pairs; at each event time the PE's graph
is swapped, which the coordinator then detects purely through the
throughput signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.coordinator import CoordinatorAction, MultiLevelCoordinator
from ..graph.model import StreamGraph
from ..obs.hub import Obs, ensure_hub
from .events import AdaptationTrace
from .pe import ProcessingElement


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of an elastic run."""

    trace: AdaptationTrace
    final_threads: int
    final_n_queues: int
    final_dynamic_ratio: float
    converged_throughput: float


class AdaptationExecutor:
    """Runs the elastic adaptation loop over virtual time."""

    def __init__(
        self,
        pe: ProcessingElement,
        coordinator: Optional[MultiLevelCoordinator] = None,
        workload_events: Optional[Sequence[Tuple[float, StreamGraph]]] = None,
        obs: Optional[Obs] = None,
    ) -> None:
        self.pe = pe
        self._obs = ensure_hub(obs)
        config = pe.config
        if coordinator is None:
            coordinator = MultiLevelCoordinator(
                config=config.elasticity,
                max_threads=config.effective_max_threads,
                profile_provider=pe.profiling_groups,
                seed=config.seed,
                obs=self._obs,
            )
        self.coordinator = coordinator
        self._workload_events = sorted(
            workload_events or [], key=lambda ev: ev[0]
        )

    # ------------------------------------------------------------------
    def run(
        self,
        duration_s: float,
        stop_after_stable_periods: Optional[int] = None,
    ) -> ExecutionResult:
        """Run the adaptation loop for ``duration_s`` of virtual time.

        With ``stop_after_stable_periods`` set, the run ends early once
        the coordinator has reported a stable configuration for that
        many consecutive periods — convenient for converged-throughput
        benchmarks where the tail of the run carries no information.
        (Not used for workload-change experiments, which need to keep
        monitoring.)
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {duration_s}")
        period = self.pe.config.elasticity.adaptation_period_s
        trace = AdaptationTrace.empty()
        events = list(self._workload_events)
        time_s = 0.0
        stable_streak = 0
        while time_s < duration_s:
            if stop_after_stable_periods is not None and not events:
                if self.coordinator.is_stable:
                    stable_streak += 1
                    if stable_streak >= stop_after_stable_periods:
                        break
                else:
                    stable_streak = 0
            time_s += period
            while events and events[0][0] <= time_s:
                _, new_graph = events.pop(0)
                self.pe.set_graph(new_graph)
            observed = self.pe.observe_throughput()
            true = self.pe.true_throughput()
            # The hub clock advances first so the period's observation,
            # the coordinator's decision and any resulting changes all
            # land in the same period of the unified log, in causal
            # order (observation < decision < change).
            self._obs.tick(time_s)
            trace.observations.append(
                self._obs.observation(
                    time_s=time_s,
                    throughput=observed,
                    true_throughput=true,
                    threads=self.pe.scheduler_threads,
                    n_queues=self.pe.n_queues,
                    mode=self.coordinator.mode.value,
                )
            )
            action = self.coordinator.step(observed)
            self._apply(action, time_s, trace)
        return ExecutionResult(
            trace=trace,
            final_threads=self.pe.scheduler_threads,
            final_n_queues=self.pe.n_queues,
            final_dynamic_ratio=self.pe.dynamic_ratio(),
            converged_throughput=trace.final_throughput(),
        )

    # ------------------------------------------------------------------
    def _apply(
        self,
        action: CoordinatorAction,
        time_s: float,
        trace: AdaptationTrace,
    ) -> None:
        if action.set_threads is not None:
            old = self.pe.scheduler_threads
            if action.set_threads != old:
                trace.thread_changes.append(
                    self._obs.thread_change(
                        time_s=time_s,
                        old_threads=old,
                        new_threads=action.set_threads,
                    )
                )
                self.pe.set_scheduler_threads(action.set_threads)
        if action.set_placement is not None:
            old_q = self.pe.n_queues
            new_q = action.set_placement.n_queues
            if action.set_placement.queued != self.pe.placement.queued:
                trace.placement_changes.append(
                    self._obs.placement_change(
                        time_s=time_s,
                        old_n_queues=old_q,
                        new_n_queues=new_q,
                    )
                )
                self.pe.set_placement(action.set_placement)


def run_elastic(
    pe: ProcessingElement,
    duration_s: float,
    workload_events: Optional[Sequence[Tuple[float, StreamGraph]]] = None,
    obs: Optional[Obs] = None,
) -> ExecutionResult:
    """Convenience wrapper: build an executor and run it.

    Pass an :class:`~repro.obs.ObservabilityHub` as ``obs`` to record
    metrics and the per-period decision log alongside the trace.
    """
    executor = AdaptationExecutor(
        pe, workload_events=workload_events, obs=obs
    )
    return executor.run(duration_s)
