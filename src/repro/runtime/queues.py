"""Scheduler-queue placement: which operators run under dynamic threading.

A *placement* is the set of operator indices that have a scheduler queue
in front of them.  Operators in the placement use the **dynamic**
threading model; everything else is **manual** (executed by the upstream
thread via function calls).  The placement is the object the threading
model elasticity component mutates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, Iterable, Iterator, Tuple

from ..graph.analysis import queueable_indices
from ..graph.model import StreamGraph


class PlacementError(ValueError):
    """Raised when a queue placement violates runtime invariants."""


@dataclass(frozen=True)
class QueuePlacement:
    """Immutable set of operators executing under the dynamic model.

    Invariants (checked against a graph with :meth:`validate`):

    - sources never carry a scheduler queue (they are driven by their own
      operator threads),
    - all indices refer to operators present in the graph.
    """

    queued: FrozenSet[int] = frozenset()

    @staticmethod
    def empty() -> "QueuePlacement":
        """All-manual placement — the algorithm's starting condition."""
        return QueuePlacement(frozenset())

    @staticmethod
    def full(graph: StreamGraph) -> "QueuePlacement":
        """Every non-source operator queued — pure dynamic threading."""
        return QueuePlacement(frozenset(queueable_indices(graph)))

    @staticmethod
    def of(indices: Iterable[int]) -> "QueuePlacement":
        return QueuePlacement(frozenset(indices))

    def validate(self, graph: StreamGraph) -> None:
        n = len(graph)
        for idx in self.queued:
            if not 0 <= idx < n:
                raise PlacementError(
                    f"placement references unknown operator {idx}"
                )
            if graph.operator(idx).is_source:
                raise PlacementError(
                    f"source operator {graph.operator(idx).name} "
                    "cannot have a scheduler queue"
                )

    # ------------------------------------------------------------------
    # set algebra (all return new placements)
    # ------------------------------------------------------------------
    def add(self, indices: Iterable[int]) -> "QueuePlacement":
        return QueuePlacement(self.queued | frozenset(indices))

    def remove(self, indices: Iterable[int]) -> "QueuePlacement":
        return QueuePlacement(self.queued - frozenset(indices))

    def __contains__(self, idx: int) -> bool:
        return idx in self.queued

    def __len__(self) -> int:
        return len(self.queued)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.queued))

    @property
    def n_queues(self) -> int:
        """Number of scheduler queues in the PE (one per queued operator)."""
        return len(self.queued)

    def dynamic_ratio(self, graph: StreamGraph) -> float:
        """Fraction of queueable operators under the dynamic model.

        This is the shaded-bar quantity in the paper's Figures 9-12
        ("ratio of the operators using dynamic threading model").
        """
        eligible = queueable_indices(graph)
        if not eligible:
            return 0.0
        return len(self.queued & frozenset(eligible)) / len(eligible)

    def intersection(self, indices: AbstractSet[int]) -> Tuple[int, ...]:
        return tuple(sorted(self.queued & frozenset(indices)))

    def __repr__(self) -> str:
        preview = sorted(self.queued)[:8]
        suffix = "..." if len(self.queued) > 8 else ""
        return f"QueuePlacement({len(self.queued)} queues: {preview}{suffix})"
