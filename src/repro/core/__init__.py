"""The paper's contribution: multi-level performance elastic components."""

from .alt_coordinator import AltMode, ThreadingPrimaryCoordinator
from .binning import ProfilingGroup, build_groups, validate_groups
from .coordinator import CoordinatorAction, Mode, MultiLevelCoordinator
from .history import AdjustmentHistory, AdjustmentRecord, Direction
from .metrics import ThroughputSensor, Trend, classify_trend, significantly_better
from .profiler import CostProfile, SamplingProfiler
from .saso import SasoReport, analyze, count_oscillations
from .satisfaction import (
    SatisfactionSample,
    measured_satisfaction,
    should_skip_secondary,
)
from .thread_count import ThreadCountElasticity
from .threading_model import AdjustDecision, Step, ThreadingModelElasticity

__all__ = [
    "AltMode",
    "ThreadingPrimaryCoordinator",
    "ProfilingGroup",
    "build_groups",
    "validate_groups",
    "CoordinatorAction",
    "Mode",
    "MultiLevelCoordinator",
    "AdjustmentHistory",
    "AdjustmentRecord",
    "Direction",
    "ThroughputSensor",
    "Trend",
    "classify_trend",
    "significantly_better",
    "CostProfile",
    "SamplingProfiler",
    "SasoReport",
    "analyze",
    "count_oscillations",
    "SatisfactionSample",
    "measured_satisfaction",
    "should_skip_secondary",
    "ThreadCountElasticity",
    "AdjustDecision",
    "Step",
    "ThreadingModelElasticity",
]
