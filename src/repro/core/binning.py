"""Logarithmic binning of operators into profiling groups (observation O2).

"We perform logarithmic binning by dividing operators into profiling
groups. Rather than testing the threading model choice with each
individual operator, we now set the granularity of adjustment at the
level of this group of operators."

Operators whose cost metrics fall within the same order of magnitude
(configurable ``base``) form one group; groups are ordered by descending
cost so the elasticity algorithm can "start from the group with the
highest relative cost".  Only queueable operators (non-sources) are
binned — sources can never carry a scheduler queue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..graph.analysis import queueable_indices
from ..graph.model import StreamGraph
from .profiler import CostProfile


@dataclass(frozen=True)
class ProfilingGroup:
    """A set of operators with similar cost metric.

    ``representative_metric`` is the mean metric of the members, used
    for ordering and reporting.  Members are stored sorted for
    determinism; the *selection order* (which members get queues first)
    is decided separately by the elasticity component.
    """

    members: Tuple[int, ...]
    representative_metric: float

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, idx: int) -> bool:
        return idx in self.members


def build_groups(
    graph: StreamGraph,
    profile: CostProfile,
    base: float = 10.0,
    boundary_tol: float = 1e-9,
) -> List[ProfilingGroup]:
    """Bin queueable operators into groups by log(cost metric).

    Returns groups ordered by *descending* representative cost.  Zero
    metric operators (never caught by the profiler — the cheapest ones)
    form the final, lightest group.

    Bins are *relative to the largest observed metric*: operators whose
    metric lies within one factor of ``base`` of the maximum form the
    heaviest group, the next factor the second group, and so on.  This
    makes grouping invariant to the number of profiler samples (the
    absolute counter values scale with the profiling period, their
    ratios do not).

    ``boundary_tol`` stabilizes metrics sitting on (or within the
    tolerance of) a bin boundary: when ``log(max/metric, base)`` lands
    within ``boundary_tol`` of an integer it snaps *to* that integer
    before flooring.  ``log()`` of an exact power-of-``base`` ratio can
    come out an ulp above or below the integer depending on how the
    metric was accumulated (analytic weight vs. snapshot counter), and
    without the snap the same operator would flip groups between
    profiling mechanisms.  Callers comparing profiles with sampling
    noise (snapshot counts differing by a few samples) can widen the
    tolerance so near-boundary operators bin identically.
    """
    if base <= 1.0:
        raise ValueError(f"log base must be > 1, got {base}")
    if boundary_tol < 0.0:
        raise ValueError(
            f"boundary_tol must be >= 0, got {boundary_tol}"
        )
    metrics = profile.as_dict()
    eligible = queueable_indices(graph)

    max_metric = max(
        (metrics.get(idx, 0) for idx in eligible), default=0
    )
    bins: Dict[int, List[int]] = {}
    zeros: List[int] = []
    for idx in eligible:
        metric = metrics.get(idx, 0)
        if metric <= 0:
            zeros.append(idx)
            continue
        # bin 0 holds metrics within one factor of `base` of the max,
        # bin 1 the next factor down, etc.  Snap to the nearest integer
        # within the tolerance first, so an exact power-of-base ratio
        # bins identically regardless of fp rounding in log().
        raw = math.log(max_metric / metric, base)
        nearest = round(raw)
        if abs(raw - nearest) <= boundary_tol:
            bin_key = int(nearest)
        else:
            bin_key = int(math.floor(raw))
        bins.setdefault(bin_key, []).append(idx)

    groups: List[ProfilingGroup] = []
    for bin_key in sorted(bins):
        members = tuple(sorted(bins[bin_key]))
        mean_metric = sum(metrics.get(i, 0) for i in members) / len(members)
        groups.append(
            ProfilingGroup(
                members=members, representative_metric=mean_metric
            )
        )
    if zeros:
        groups.append(
            ProfilingGroup(
                members=tuple(sorted(zeros)), representative_metric=0.0
            )
        )
    return groups


def group_sizes(groups: Sequence[ProfilingGroup]) -> List[int]:
    return [len(g) for g in groups]


def validate_groups(
    graph: StreamGraph, groups: Sequence[ProfilingGroup]
) -> None:
    """Check the group list partitions the queueable operators.

    Raises ``ValueError`` on overlap or omission; used in tests and as a
    debug assertion in the coordinator.
    """
    seen: Dict[int, int] = {}
    for gi, group in enumerate(groups):
        for idx in group.members:
            if idx in seen:
                raise ValueError(
                    f"operator {idx} appears in groups {seen[idx]} and {gi}"
                )
            seen[idx] = gi
    expected = set(queueable_indices(graph))
    actual = set(seen)
    if expected != actual:
        missing = sorted(expected - actual)[:5]
        extra = sorted(actual - expected)[:5]
        raise ValueError(
            f"groups do not partition queueable operators; "
            f"missing={missing} extra={extra}"
        )
